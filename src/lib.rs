//! Stochastic database cracking — the facade crate.
//!
//! One dependency that re-exports the whole workspace: the adaptive
//! indexing engines of *Halim, Idreos, Karras, Yap: Stochastic Database
//! Cracking (VLDB 2012)* together with the substrate and extension layers
//! they are built from. Each sub-crate stays usable on its own; this crate
//! exists so examples and downstream users can write
//!
//! ```
//! use stochastic_cracking::prelude::*;
//!
//! let data: Vec<u64> = unique_permutation(10_000, 42);
//! let oracle = Oracle::new(&data);
//! let mut engine = build_engine(EngineKind::Mdd1r, data, CrackConfig::default(), 42);
//! let q = QueryRange::new(100, 200);
//! assert_eq!(engine.select(q).len(), oracle.count(q));
//! ```
//!
//! # Layer map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `scrack_types` | `Element`, `QueryRange`, `Stats`, `CacheProfile` |
//! | [`columnstore`] | `scrack_columnstore` | `Column`, `QueryOutput`, `Table` |
//! | [`index`] | `scrack_index` | cracker index: flat directory (default) + AVL + radix, `IndexPolicy` |
//! | [`partition`] | `scrack_partition` | crack-in-two/three, MDD1R split, introselect |
//! | [`core`] | `scrack_core` | every engine: Crack, DDC/DDR, DD1C/DD1R, MDD1R, DDM/MDD1M, … |
//! | [`query`] | `scrack_query` | multi-column tables, predicates, aggregates |
//! | [`workloads`] | `scrack_workloads` | Fig. 7 workload suite, SkyServer trace, data gens |
//! | [`chooser`] | `scrack_chooser` | bandit algorithm selection (§6), self-driving config switching |
//! | [`external`] | `scrack_external` | paged/disk-resident cracking (§6) |
//! | [`hybrids`] | `scrack_hybrids` | hybrid crack/sort engines |
//! | [`sideways`] | `scrack_sideways` | sideways cracking under storage budgets |
//! | [`updates`] | `scrack_updates` | Ripple merge of pending updates |
//! | [`parallel`] | `scrack_parallel` | sharded / shared / piece-locked / chunked cracking |
//! | [`txn`] | `scrack_txn` | transactional sessions: snapshot isolation, lock manager |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared foundation types ([`scrack_types`]).
pub mod types {
    pub use scrack_types::*;
}

/// Column-store substrate ([`scrack_columnstore`]).
pub mod columnstore {
    pub use scrack_columnstore::*;
}

/// The cracker index: flat, AVL and radix representations
/// ([`scrack_index`]).
pub mod index {
    pub use scrack_index::*;
}

/// Physical reorganization kernel ([`scrack_partition`]).
pub mod partition {
    pub use scrack_partition::*;
}

/// The adaptive indexing engines ([`scrack_core`]).
pub mod core {
    pub use scrack_core::*;
}

/// Multi-column query layer ([`scrack_query`]).
pub mod query {
    pub use scrack_query::*;
}

/// Workload and data generators ([`scrack_workloads`]).
pub mod workloads {
    pub use scrack_workloads::*;
}

/// Bandit-driven algorithm selection ([`scrack_chooser`]).
pub mod chooser {
    pub use scrack_chooser::*;
}

/// Disk-resident cracking behind a buffer pool ([`scrack_external`]).
pub mod external {
    pub use scrack_external::*;
}

/// Hybrid crack/sort engines ([`scrack_hybrids`]).
pub mod hybrids {
    pub use scrack_hybrids::*;
}

/// Sideways cracking with storage budgets ([`scrack_sideways`]).
pub mod sideways {
    pub use scrack_sideways::*;
}

/// Updates under adaptive indexing ([`scrack_updates`]).
pub mod updates {
    pub use scrack_updates::*;
}

/// Parallel cracking ([`scrack_parallel`]).
///
/// Five concurrency shapes, all config-aware (the [`CrackConfig`]
/// kernel policy selects the branchy/branchless reorganization kernels
/// on the concurrent paths too) and all oracle-equal under any
/// interleaving. The threaded paths share one work-stealing executor
/// ([`scrack_parallel::executor`]) that caps live workers at available
/// parallelism.
///
/// [`ShardedCracker`] — one query fans out over independently cracked
/// shards:
///
/// ```
/// use stochastic_cracking::prelude::*;
///
/// let data: Vec<u64> = unique_permutation(2_000, 3);
/// let mut sc = ShardedCracker::new(
///     data.clone(), 4, ParallelStrategy::Stochastic, CrackConfig::default(), 3,
/// );
/// let q = QueryRange::new(250, 750);
/// let oracle = Oracle::new(&data);
/// assert_eq!(sc.select_aggregate(q), (oracle.count(q), oracle.checksum(q)));
/// ```
///
/// [`SharedCracker`] — many threads share one column; writers publish
/// immutable layout snapshots (epochs), and any query resolvable against
/// the published epoch — existing cracks, or bounds outside the key
/// span — answers over frozen data without blocking on in-flight cracks:
///
/// ```
/// use stochastic_cracking::prelude::*;
/// use std::sync::Arc;
///
/// let data: Vec<u64> = unique_permutation(2_000, 3);
/// let oracle = Oracle::new(&data);
/// let sc = Arc::new(SharedCracker::new(
///     data, ParallelStrategy::Stochastic, CrackConfig::default(), 3,
/// ));
/// let handles: Vec<_> = (0..4u64)
///     .map(|t| {
///         let sc = Arc::clone(&sc);
///         std::thread::spawn(move || sc.select_aggregate(QueryRange::new(t * 400, t * 400 + 200)))
///     })
///     .collect();
/// for (t, h) in handles.into_iter().enumerate() {
///     let q = QueryRange::new(t as u64 * 400, t as u64 * 400 + 200);
///     assert_eq!(h.join().unwrap(), (oracle.count(q), oracle.checksum(q)));
/// }
/// ```
///
/// [`PieceLockedCracker`] — §6's fine-grained locking, one lock per
/// piece:
///
/// ```
/// use stochastic_cracking::prelude::*;
///
/// let data: Vec<u64> = unique_permutation(2_000, 3);
/// let oracle = Oracle::new(&data);
/// let plc = PieceLockedCracker::new(
///     data, ParallelStrategy::Crack,
///     CrackConfig::default().with_kernel(KernelPolicy::Branchless), 3,
/// );
/// let q = QueryRange::new(100, 900);
/// assert_eq!(plc.select_aggregate(q), (oracle.count(q), oracle.checksum(q)));
/// ```
///
/// [`BatchScheduler`] — throughput shape: batches run partition-parallel
/// over key-disjoint shards, results in submission order:
///
/// ```
/// use stochastic_cracking::prelude::*;
///
/// let data: Vec<u64> = unique_permutation(2_000, 3);
/// let oracle = Oracle::new(&data);
/// let mut sched = BatchScheduler::new(
///     data, 4, ParallelStrategy::Stochastic, CrackConfig::default(), 3,
/// );
/// let batch: Vec<QueryRange> = (0..16u64).map(|i| QueryRange::new(i * 120, i * 120 + 60)).collect();
/// for (i, got) in sched.execute(&batch).into_iter().enumerate() {
///     assert_eq!(got, (oracle.count(batch[i]), oracle.checksum(batch[i])));
/// }
/// ```
///
/// [`ChunkedCracker`] — parallel-chunked cracking: workers crack
/// private chunks with zero coordination, then partition-merge into
/// key-disjoint shards once query volume accumulates:
///
/// ```
/// use stochastic_cracking::prelude::*;
///
/// let data: Vec<u64> = unique_permutation(2_000, 3);
/// let oracle = Oracle::new(&data);
/// let mut cc = ChunkedCracker::new(
///     data, 4, ParallelStrategy::Stochastic, CrackConfig::default(), 3,
/// )
/// .with_merge_after(8); // partition-merge early for the demo
/// let batch: Vec<QueryRange> = (0..16u64).map(|i| QueryRange::new(i * 120, i * 120 + 60)).collect();
/// for half in batch.chunks(8) {
///     for (q, got) in half.iter().zip(cc.execute(half)) {
///         assert_eq!(got, (oracle.count(*q), oracle.checksum(*q)));
///     }
/// }
/// assert!(cc.has_merged()); // the second batch dispatched post-merge
/// ```
///
/// **Fault-hardened serving** — [`BatchScheduler::execute_resilient`]
/// runs the same batches behind admission control, per-query deadlines,
/// and panic isolation. A worker panic (here injected deterministically
/// via [`FaultPlan`]) quarantines its shard — queries degrade to exact
/// scans over the preserved data, the index is rebuilt, and every
/// admitted answer stays oracle-correct throughout:
///
/// ```
/// use stochastic_cracking::prelude::*;
///
/// let data: Vec<u64> = unique_permutation(2_000, 3);
/// let oracle = Oracle::new(&data);
/// let config = CrackConfig::default()
///     .with_fault(FaultPlan::panic_in_kernel(4).on_target(0));
/// let mut sched = BatchScheduler::new(data, 4, ParallelStrategy::Stochastic, config, 3);
/// let serving = ServingConfig::bounded(8, AdmissionPolicy::Block);
/// let batch: Vec<QueryRange> = (0..32u64).map(|i| QueryRange::new(i * 60, i * 60 + 30)).collect();
/// let report = sched.execute_resilient(&batch, &serving);
/// assert!(report.fully_answered());
/// for (q, outcome) in batch.iter().zip(&report.outcomes) {
///     assert_eq!(outcome.answer().unwrap(), (oracle.count(*q), oracle.checksum(*q)));
/// }
/// assert!(sched.resilience_stats().panics_isolated >= 1);
/// assert!(sched.quarantined_shards().is_empty()); // rebuilt, back to cracking
/// ```
///
/// [`ShardedCracker`]: scrack_parallel::ShardedCracker
/// [`BatchScheduler::execute_resilient`]: scrack_parallel::BatchScheduler::execute_resilient
/// [`FaultPlan`]: scrack_core::FaultPlan
/// [`SharedCracker`]: scrack_parallel::SharedCracker
/// [`PieceLockedCracker`]: scrack_parallel::PieceLockedCracker
/// [`BatchScheduler`]: scrack_parallel::BatchScheduler
/// [`ChunkedCracker`]: scrack_parallel::ChunkedCracker
/// [`CrackConfig`]: scrack_core::CrackConfig
pub mod parallel {
    pub use scrack_parallel::*;
}

/// Transactional sessions ([`scrack_txn`]).
///
/// Snapshot-isolated multi-statement transactions over the same
/// key-disjoint shards the schedulers use. [`TxnManager::begin`] pins a
/// snapshot epoch; reads see exactly the updates committed at or before
/// it plus the session's own writes; per-key exclusive locks come from
/// the shared [`LockManager`] with FIFO queues, wait budgets, and
/// timeout-wound deadlock resolution; commit validates
/// first-committer-wins and publishes at a fresh epoch. Every session
/// ends in exactly one [`TxnOutcome`], faults included — a panic or
/// poison in a shard aborts only the sessions touching it, quarantines
/// and rebuilds the shard, and preserves every pinned snapshot:
///
/// ```
/// use stochastic_cracking::prelude::*;
///
/// let data: Vec<u64> = unique_permutation(4_000, 9);
/// let mgr = TxnManager::new(
///     data, 3, ParallelStrategy::Stochastic, CrackConfig::default(),
///     ServingConfig::default(), 9,
/// );
/// // Writer inserts; a reader that began first must not see it.
/// let mut writer = mgr.begin().unwrap();
/// writer.insert(1_000u64).unwrap();
/// let mut reader = mgr.begin().unwrap();
/// assert!(matches!(writer.commit(), TxnOutcome::Committed { .. }));
/// assert_eq!(reader.read(QueryRange::new(1_000, 1_001)).unwrap().0, 1);
/// reader.commit();
/// // First committer wins: two sessions deleting the same key.
/// let mut a = mgr.begin().unwrap();
/// let mut b = mgr.begin().unwrap();
/// assert!(a.delete(1_000).unwrap());
/// assert!(matches!(a.commit(), TxnOutcome::Committed { .. }));
/// assert!(b.delete(1_000).unwrap()); // b's snapshot still sees the key...
/// assert!(matches!(
///     b.commit(), // ...but a committed first: validation aborts b, retryably
///     TxnOutcome::Aborted { retryable: true }
/// ));
/// assert_eq!(mgr.lock_residue(), 0); // no path leaks a lock
/// ```
///
/// [`TxnManager::begin`]: scrack_txn::TxnManager::begin
/// [`LockManager`]: scrack_txn::LockManager
/// [`TxnOutcome`]: scrack_txn::TxnOutcome
pub mod txn {
    pub use scrack_txn::*;
}

/// The working vocabulary: everything the examples and most users need.
pub mod prelude {
    pub use scrack_chooser::{
        scheduler_space, ChooserEngine, ConfigArm, ConfigSpace, PolicyKind, SelfDrivingEngine,
        SelfDrivingScheduler,
    };
    pub use scrack_columnstore::{Column, QueryOutput, Table};
    pub use scrack_core::{
        build_engine, CrackConfig, CrackEngine, CrackedColumn, Dd1cEngine, Dd1mEngine, Dd1rEngine,
        DdcEngine, DdmEngine, DdrEngine, Engine, EngineKind, FaultKind, FaultPlan, IndexPolicy,
        KernelPolicy, Mdd1mEngine, Mdd1rEngine, Oracle, ProgressiveEngine, ScanEngine,
        SelectiveEngine, SelectivePolicy, SortEngine, UpdatePolicy,
    };
    pub use scrack_hybrids::{HybridEngine, HybridKind};
    pub use scrack_parallel::{
        AdmissionPolicy, BatchOp, BatchReport, BatchScheduler, ChunkedCracker, ParallelStrategy,
        PieceLockedCracker, QueryOutcome, ResilienceStats, ServingConfig, ShardedCracker,
        SharedCracker, ShardHealth,
    };
    pub use scrack_txn::{
        LockError, LockManager, LockMode, LockStats, Session, TxnError, TxnManager, TxnOutcome,
    };
    pub use scrack_sideways::{BudgetedSideways, CrackerMap, MapStrategy, SidewaysCracker};
    pub use scrack_types::{CacheProfile, Element, QueryRange, Stats, Tuple};
    pub use scrack_updates::{build_update_engine, Updatable};
    pub use scrack_workloads::data::unique_permutation;
    pub use scrack_workloads::{
        skyserver_trace, MixedOp, MixedWorkloadSpec, PhasedWorkload, SkyServerConfig,
        UpdateKeyDist, WorkloadKind, WorkloadSpec,
    };
}
