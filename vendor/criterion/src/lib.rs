//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`Throughput`], [`BenchmarkId`], [`black_box`] — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Honors the CLI contract cargo relies on: a positional
//! filter, `--bench` (ignored) and `--test` (run each bench exactly once).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one input per measured call).
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Units-of-work annotation for a group's reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A bench identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The measurement context handed to each bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over this bencher's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` on inputs built (unmeasured) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but passing the input by `&mut`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Clone, Debug)]
struct Settings {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
}

/// The top-level bench driver.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real-criterion flags that consume a value; their value must not
        // be mistaken for the positional filter.
        const VALUE_FLAGS: &[&str] = &[
            "--sample-size",
            "--measurement-time",
            "--warm-up-time",
            "--nresamples",
            "--noise-threshold",
            "--confidence-level",
            "--significance-level",
            "--save-baseline",
            "--baseline",
            "--baseline-lenient",
            "--load-baseline",
            "--profile-time",
            "--color",
            "--colour",
            "--output-format",
            "--format",
        ];
        let mut filter = None;
        let mut test_mode = false;
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                s if VALUE_FLAGS.contains(&s) => skip_value = true,
                s if s.starts_with('-') => {} // ignore unknown flags (incl. --flag=value)
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { settings: Settings { filter, test_mode, sample_size: 10 } }
    }
}

impl Criterion {
    /// Accepted for API compatibility; argument handling happens in
    /// [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the per-bench iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Run a single named bench.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_one(&settings, None, &id.into().id, f);
        self
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
        }
    }
}

/// A named group with shared settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Set the per-bench iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness is not time-budgeted.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benches with units of work per iteration.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one bench within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.settings, Some(&self.name), &id.into().id, f);
        self
    }

    /// Run one bench parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.settings, Some(&self.name), &id.into().id, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(
    settings: &Settings,
    group: Option<&str>,
    id: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &settings.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let iters = if settings.test_mode { 1 } else { settings.sample_size as u64 };
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.checked_div(iters as u32).unwrap_or_default();
    println!("bench: {full:<48} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// Bundle bench functions into a group runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $group;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
