//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produce a clone of one value (`prop_oneof!` leaf).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter for [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among several strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + (self.end - self.start) * unit as $t;
                // Rounding can land exactly on `end`; keep the range half-open.
                if v < self.end { v } else { self.end.next_down().max(self.start) }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
