//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's test suites use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`), range
//! and collection strategies, `prop_oneof!` / `Just` / `prop_map`,
//! `any::<T>()`, and the `prop_assert*` macros. Cases are drawn from a
//! deterministic per-case RNG; there is **no shrinking** — a failing case
//! reports its case index and panics with the original assertion message.
//!
//! The default number of cases is 256, overridable with the
//! `PROPTEST_CASES` environment variable, exactly like real proptest.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// Declare property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     // (in a test module this would carry #[test])
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($parm:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $parm = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
    )*};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a property; failure fails only this case, and the
/// harness reports it with its case number (`proptest case N/M failed`).
///
/// As in real proptest these return early with a `TestCaseError`, so they
/// must appear in the property body itself, not inside a nested closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "");
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                            stringify!($left), stringify!($right), l, r, format!($($fmt)*),
                        ),
                    ));
                }
            }
        }
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_ne!($left, $right, "");
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}\n {}",
                            stringify!($left), stringify!($right), l, format!($($fmt)*),
                        ),
                    ));
                }
            }
        }
    };
}
