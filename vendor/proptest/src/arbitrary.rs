//! `any::<T>()` — the canonical whole-domain strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
