//! Configuration, per-case RNG, and error type for the runner.

use std::fmt;

/// How many cases each property runs, mirroring proptest's config.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A case failure carrying its reason; `?`-compatible from test bodies.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from any displayable reason.
    pub fn fail(reason: impl fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (SplitMix64 stream).
///
/// Seeded from the test's module path + name and the case index, so every
/// run of the suite — locally and in CI — exercises the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}
