use proptest::prelude::*;

proptest! {
    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_case_number(a in 10u64..20) {
        prop_assert!(a < 15, "a was {}", a);
    }

    #[test]
    fn passing_case(a in 0u64..5) {
        prop_assert!(a < 5);
        prop_assert_eq!(a, a, "identity for {}", a);
        prop_assert_ne!(a + 1, a);
    }
}
