//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`,
//! `read()`, and `write()` return guards directly instead of `Result`s.
//! Poisoning is transparently recovered — parking_lot has no poisoning, so
//! callers written against it never expect to see one.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is immediately free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking the current thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking the current thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Shared access only if immediately available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access only if immediately available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
