//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! subset of `rand` 0.8 it actually uses is reimplemented here behind the
//! same paths: [`Rng`] (`gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::SmallRng`] (xoshiro256++, the same
//! algorithm family rand's `small_rng` feature uses on 64-bit targets).
//!
//! Determinism contract: a given seed produces the same stream on every
//! platform and every run. Nothing here reads OS entropy.

#![forbid(unsafe_code)]

pub mod rngs;

mod uniform;

pub use uniform::SampleRange;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            // f32 is the rounding-prone case: unit is computed in f64 and
            // the cast can land exactly on the upper bound without the
            // half-open clamp.
            let g = r.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&g));
            let s = r.gen_range(-8i64..8);
            assert!((-8..8).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
