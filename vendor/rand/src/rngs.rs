//! Named generators; only [`SmallRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator: xoshiro256++.
///
/// Matches the role (not the exact stream) of `rand::rngs::SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut state);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}
