//! Uniform sampling from range expressions.
//!
//! Mirrors rand's shape — a single generic impl of [`SampleRange`] for
//! `Range<T>` / `RangeInclusive<T>` over a [`SampleUniform`] trait — so
//! that integer-literal type inference behaves exactly as with real rand.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can be sampled uniformly — the receiver of
/// [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draw one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over half-open and inclusive ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Multiply-shift bounded draw: maps a full 64-bit word onto `[0, span)`.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range on empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    // Full domain: every 64-bit word is a valid draw.
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo + (hi - lo) * unit as $t;
                // lo + (hi-lo)*unit can round up to hi; keep [lo, hi) half-open.
                if v < hi { v } else { hi.next_down().max(lo) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range on empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);
