//! Beyond the paper: cracking under parallelism (§6's future work).
//!
//! Three concurrency shapes over the same data:
//!
//! 1. a sharded cracker — one query fans out over independently cracked
//!    shards (intra-query parallelism);
//! 2. a shared cracker — eight threads fire their own query streams at
//!    one locked column; repeated ranges take a read-only fast path
//!    because cracking is self-stabilizing;
//! 3. a piece-locked cracker — §6's "proper fine grained locking": one
//!    lock per piece, so threads working different key regions crack
//!    concurrently instead of serializing on a column lock.
//!
//! Run with: `cargo run --release --example parallel_exploration`

use std::sync::Arc;
use std::time::Instant;
use stochastic_cracking::prelude::*;

fn main() {
    let n: u64 = 4_000_000;
    let data: Vec<u64> = unique_permutation(n, 17);

    // --- Intra-query parallelism: sharded cracking -----------------
    println!("Sharded cracking ({} tuples):", n);
    for shards in [1usize, 2, 4, 8] {
        let mut sc = ShardedCracker::new(
            data.clone(),
            shards,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            17,
        );
        let t0 = Instant::now();
        let mut total = 0usize;
        for i in 0..200u64 {
            let a = (i * 19_997) % (n - 4_000);
            let (count, _sum) = sc.select_aggregate(QueryRange::new(a, a + 4_000));
            total += count;
        }
        println!(
            "  {shards} shard(s): 200 queries in {:>8.2?} ({total} tuples matched)",
            t0.elapsed()
        );
    }

    // --- Inter-query parallelism: one shared column ----------------
    println!("\nShared cracker, 8 concurrent query threads:");
    let shared = Arc::new(SharedCracker::new(
        data,
        ParallelStrategy::Stochastic,
        CrackConfig::default(),
        17,
    ));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut matched = 0usize;
            // Each analyst revisits their own hot ranges: after the first
            // touch, those ranges are answered under a read lock only.
            for round in 0..50u64 {
                for slot in 0..8u64 {
                    let a = (t * 450_000 + slot * 50_000 + round) % (n - 1_000);
                    let (c, _) = shared.select_aggregate(QueryRange::new(a, a + 1_000));
                    matched += c;
                }
            }
            matched
        }));
    }
    let matched: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!(
        "  8 threads x 400 queries in {:>8.2?}; {matched} tuples matched, \
         {} cracks in the shared index",
        t0.elapsed(),
        shared.crack_count()
    );

    // --- Fine-grained: one lock per piece ---------------------------
    println!("\nPiece-locked cracker, 8 threads on disjoint key regions:");
    let data: Vec<u64> = unique_permutation(n, 17);
    for threads in [1u64, 2, 4, 8] {
        let plc = Arc::new(PieceLockedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            17,
        ));
        let t0 = Instant::now();
        let mut handles = Vec::new();
        let region = n / threads;
        for t in 0..threads {
            let plc = Arc::clone(&plc);
            handles.push(std::thread::spawn(move || {
                let mut matched = 0usize;
                for i in 0..(3200 / threads) {
                    let a = (t * region + i * 7919) % (n - 1_000);
                    let (c, _) = plc.select_aggregate(QueryRange::new(a, a + 1_000));
                    matched += c;
                }
                matched
            }));
        }
        let matched: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        println!(
            "  {threads} thread(s): 3200 queries in {:>8.2?}; {matched} matched, {} pieces",
            t0.elapsed(),
            plc.piece_count()
        );
    }
    println!(
        "\nShards parallelize one query's reorganization; the shared \
         column serves many query streams,\nwith reorganization naturally \
         fading into read-only access as the index converges; piece \
         locks\nlet disjoint regions reorganize truly concurrently."
    );
}
