//! The paper's headline result as a demo: original cracking is fragile
//! across workload patterns, stochastic cracking is robust.
//!
//! Runs every Fig. 7 workload pattern against Crack and Scrack (MDD1R)
//! and prints the cumulative-time table (the shape of the paper's
//! Fig. 17).
//!
//! Run with: `cargo run --release --example workload_robustness`

use std::time::Instant;
use stochastic_cracking::prelude::*;

fn run_total(kind: EngineKind, data: Vec<u64>, queries: &[QueryRange]) -> std::time::Duration {
    let mut engine = build_engine(kind, data, CrackConfig::default(), 1);
    let t0 = Instant::now();
    let mut acc = 0usize;
    for q in queries {
        acc += engine.select(*q).len();
    }
    std::hint::black_box(acc);
    t0.elapsed()
}

fn main() {
    let n: u64 = 1_000_000;
    let q = 2_000;
    let data: Vec<u64> = unique_permutation(n, 3);

    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "workload", "Crack", "Scrack", "ratio"
    );
    println!("{}", "-".repeat(52));
    let mut worst: (f64, &str) = (0.0, "");
    for kind in WorkloadKind::all_concrete()
        .into_iter()
        .chain([WorkloadKind::Mixed])
    {
        let queries = WorkloadSpec::new(kind, n, q, 5).generate();
        let crack = run_total(EngineKind::Crack, data.clone(), &queries);
        let scrack = run_total(EngineKind::Mdd1r, data.clone(), &queries);
        let ratio = crack.as_secs_f64() / scrack.as_secs_f64().max(1e-9);
        if ratio > worst.0 {
            worst = (ratio, kind.label());
        }
        println!(
            "{:<16} {:>12.2?} {:>12.2?} {:>8.1}x",
            kind.label(),
            crack,
            scrack,
            ratio
        );
    }
    println!(
        "\nOriginal cracking collapses on the focused patterns (worst: \
         {} at {:.0}x), while stochastic\ncracking stays within a small \
         constant of its best case everywhere — the robustness the paper \
         is about.",
        worst.1, worst.0
    );
}
