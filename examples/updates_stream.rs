//! Adaptive indexing under a live update stream.
//!
//! New observations keep arriving while a sequential analysis runs;
//! pending updates are merged into the cracked column on demand with the
//! Ripple algorithm (one element move per piece boundary), so neither the
//! queries nor the updates ever pay for a full re-index.
//!
//! Run with: `cargo run --release --example updates_stream`

use std::time::Instant;
use stochastic_cracking::prelude::*;

fn main() {
    let n: u64 = 1_000_000;
    let data: Vec<u64> = unique_permutation(n, 11);
    let oracle_keys: Vec<u64> = data.clone();

    let mut engine = Updatable::new(Mdd1rEngine::new(data, CrackConfig::default(), 11));
    let queries = WorkloadSpec::new(WorkloadKind::Sequential, n, 5_000, 11).generate();

    // A deterministic "sensor" stream of new readings.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % n
    };

    let t0 = Instant::now();
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    let mut returned = 0u64;
    for (i, q) in queries.iter().enumerate() {
        // High-frequency, low-volume updates: 10 arrivals every 10 queries.
        if i % 10 == 0 {
            for _ in 0..8 {
                engine.insert(next());
                inserted += 1;
            }
            for _ in 0..2 {
                engine.delete(next());
                deleted += 1;
            }
        }
        returned += engine.select(*q).len() as u64;
    }
    let elapsed = t0.elapsed();

    println!(
        "Ran {} queries interleaved with {} inserts / {} delete attempts \
         in {:.2?}.",
        queries.len(),
        inserted,
        deleted,
        elapsed
    );
    println!(
        "Qualifying tuples returned: {returned}; column now holds {} \
         tuples (started with {}).",
        engine.data().len(),
        oracle_keys.len()
    );
    println!(
        "Pending (never queried, never paid for): {} updates still queued.",
        engine.pending_len()
    );
    println!(
        "Engine stats: {} tuples touched, {} swaps, {} cracks.",
        engine.stats().touched,
        engine.stats().swaps,
        engine.stats().cracks
    );
}
