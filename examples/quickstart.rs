//! Quickstart: watch an index build itself as a side effect of queries.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Instant;
use stochastic_cracking::prelude::*;

fn main() {
    let n: u64 = 4_000_000;
    println!("Building a column of {n} unique integers in random order...");
    let data: Vec<u64> = unique_permutation(n, 42);
    let oracle = Oracle::new(&data);

    // Stochastic cracking: no workload knowledge, no idle time, no DBA.
    let mut engine = build_engine(EngineKind::Mdd1r, data, CrackConfig::default(), 42);

    println!("\nquery#   range                result   time        pieces-of-knowledge");
    let mut rng_state = 0xC0FFEEu64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    for i in 1..=20u32 {
        let a = rand() % (n - 1000);
        let q = QueryRange::new(a, a + 1000);
        let t0 = Instant::now();
        let out = engine.select(q);
        let dt = t0.elapsed();
        assert_eq!(out.len(), oracle.count(q), "engine must agree with oracle");
        println!(
            "{i:>5}    [{:>9}, {:>9})  {:>6}   {:>9.2?}   {} cracks so far",
            q.low,
            q.high,
            out.len(),
            dt,
            engine.stats().cracks
        );
    }
    println!(
        "\nEach query both answered and refined the index: response times \
         fall as knowledge accumulates,\nwithout ever paying a full sort \
         up front. Total tuples touched: {}.",
        engine.stats().touched
    );
}
