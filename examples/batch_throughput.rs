//! Beyond the paper: throughput-grade batched cracking (§6 + Alvarez
//! et al., DaMoN 2014).
//!
//! An operational column-store doesn't see one query at a time — it sees
//! a stream of batches from many users. The `BatchScheduler` turns each
//! batch into partition-parallel work: the column is range-partitioned
//! into key-disjoint shards once, every query is routed (grouped by key
//! region) to the shards that can answer it, and shard workers drain
//! their queues concurrently without ever contending. Results come back
//! per query, in submission order, oracle-equal — and bit-identical to a
//! single-threaded replay, so concurrency costs no reproducibility.
//!
//! Run with: `cargo run --release --example batch_throughput`

use std::time::Instant;
use stochastic_cracking::prelude::*;

fn main() {
    let n: u64 = 2_000_000;
    let data: Vec<u64> = unique_permutation(n, 17);
    let oracle = Oracle::new(&data);

    // A mixed stream: analysts hammering hot ranges, a reporting sweep,
    // and point-ish lookups, interleaved.
    let batches: Vec<Vec<QueryRange>> = (0..20u64)
        .map(|round| {
            (0..256u64)
                .map(|i| {
                    let x = (round * 256 + i) * 0x9E37_79B9 % (n - 50_000);
                    match i % 3 {
                        0 => QueryRange::new(x, x + 100),           // point-ish
                        1 => QueryRange::new(x, x + 50_000),        // reporting
                        _ => QueryRange::new(x % 100_000, x % 100_000 + 5_000), // hot region
                    }
                })
                .collect()
        })
        .collect();

    for shards in [1usize, 2, 4, 8] {
        let mut sched = BatchScheduler::new(
            data.clone(),
            shards,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            17,
        );
        let t0 = Instant::now();
        let mut answered = 0usize;
        for batch in &batches {
            let results = sched.execute(batch);
            // Every answer equals the scan oracle, in submission order.
            for (qi, q) in batch.iter().enumerate() {
                assert_eq!(results[qi], (oracle.count(*q), oracle.checksum(*q)));
            }
            answered += results.len();
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{shards} shard worker(s): {answered} queries in {secs:>6.2}s \
             ({:>8.0} queries/sec, verified against the oracle), {} cracks",
            answered as f64 / secs,
            sched.stats().cracks,
        );
    }
    println!(
        "\nEvery batch is grouped by key region, routed to key-disjoint \
         shards, and executed\npartition-parallel; shard queues drain in a \
         fixed order, so the run is deterministic\nunder any thread \
         interleaving (see crates/parallel/tests/threaded_determinism.rs)."
    );
}
