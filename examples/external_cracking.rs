//! §6's disk-processing question, measured: "how much reorganization can
//! we afford per query without increasing I/O costs prohibitively?"
//!
//! Four strategies run the same query sequences over a disk-resident
//! column behind buffer pools of three sizes; the table reports page
//! reads/writes. The shapes to look for:
//!
//! * `Scan` re-reads every page every query and never writes;
//! * `Sort` pays a fixed two-pass-per-merge-level cost up front, then
//!   reads a handful of pages per query;
//! * `Crack` and `MDD1R` write continuously — but the traffic is
//!   front-loaded, and on focused workloads `MDD1R`'s random cracks keep
//!   the re-read piece small while `Crack` founders (the in-memory
//!   robustness pathology is an *I/O* pathology on disk);
//! * a larger pool absorbs re-reads but not the reorganization writes.
//!
//! Run with: `cargo run --release --example external_cracking`

use stochastic_cracking::external::{build_paged_engine, PagedEngineKind, PoolConfig};
use stochastic_cracking::prelude::*;

const N: u64 = 1_000_000;
const QUERIES: usize = 1_000;
const PAGE: usize = 4096;
const SEED: u64 = 20120827;

fn main() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let pages = (N as usize).div_ceil(PAGE);
    println!(
        "Column: {N} keys on {pages} pages of {PAGE}; {QUERIES} queries per cell.\n"
    );
    for workload in [WorkloadKind::Random, WorkloadKind::Sequential] {
        println!("=== {:?} workload ===", workload);
        println!(
            "{:<8} {:>6} | {:>10} {:>10} {:>10} | {:>12}",
            "engine", "pool%", "reads", "writes", "total", "vs Scan"
        );
        let queries = WorkloadSpec::new(workload, N, QUERIES, SEED).generate();
        let mut scan_total = 0u64;
        for kind in PagedEngineKind::all_with_progressive() {
            for pool_pct in [5usize, 10, 25] {
                let config =
                    PoolConfig::with_memory_fraction(N as usize, pool_pct as f64 / 100.0, PAGE);
                let mut engine = build_paged_engine(kind, &data, config, SEED);
                for q in &queries {
                    engine.select(*q);
                }
                let io = engine.io();
                if kind == PagedEngineKind::Scan && pool_pct == 5 {
                    scan_total = io.total_io();
                }
                println!(
                    "{:<8} {:>5}% | {:>10} {:>10} {:>10} | {:>11.4}x",
                    kind.label(),
                    pool_pct,
                    io.reads,
                    io.writes,
                    io.total_io(),
                    io.total_io() as f64 / scan_total as f64
                );
            }
        }
        println!();
    }
    println!(
        "Reading the table: cracking's writes are the price of adaptivity, but\n\
         they are bounded by convergence; on Sequential, original cracking's\n\
         re-reads dwarf everything — stochastic cracking fixes the I/O too.\n\
         The P-x% rows answer §6's budget question from both sides: P10%\n\
         smooths write bursts at near-MDD1R totals, while P1%'s partitions\n\
         never finish, trading capped writes for scan-level re-reads."
    );
}
