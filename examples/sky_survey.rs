//! An exploratory astronomy session: the paper's motivating scenario.
//!
//! A scientist explores a sky-survey table ("scan one part of the sky at a
//! time"), selecting on right ascension and fetching the matching
//! brightness values through rowids — adaptive indexing with tuple
//! reconstruction. Compares original cracking against stochastic cracking
//! on a SkyServer-shaped query trace.
//!
//! Run with: `cargo run --release --example sky_survey`

use std::time::Instant;
use stochastic_cracking::prelude::*;

fn main() {
    // A table of 2M "objects": right ascension (the cracked attribute)
    // and a brightness value reconstructed per result row.
    let n: u64 = 2_000_000;
    let ra: Vec<u64> = unique_permutation(n, 7);
    let brightness: Vec<u64> = ra.iter().map(|r| (r * 2654435761) % 30_000).collect();
    let mut table = Table::new();
    table.add_column("ra", ra);
    table.add_column("brightness", brightness);

    // The exploratory query trace: focused scans drifting across the sky.
    let trace = skyserver_trace(SkyServerConfig::new(n, 20_000, 99));
    println!(
        "Replaying {} exploratory queries over {} objects...\n",
        trace.len(),
        table.rows()
    );

    for kind in [EngineKind::Crack, EngineKind::Mdd1r] {
        // Crack a (key, rowid) copy of the ra column.
        let col = table.cracker_column("ra");
        let mut engine = build_engine(kind, col.into_vec(), CrackConfig::default(), 7);
        let label = if kind == EngineKind::Mdd1r {
            "Scrack"
        } else {
            "Crack"
        };

        let t0 = Instant::now();
        let mut brightest = 0u64;
        let mut results = 0u64;
        for q in &trace {
            let out = engine.select(*q);
            results += out.len() as u64;
            // Tuple reconstruction: rowids -> brightness, as a column-store
            // would fetch the next attribute.
            let rows = out.resolve(engine.data()).map(|t| t.row);
            for b in table.fetch("brightness", rows) {
                brightest = brightest.max(b);
            }
        }
        println!(
            "{label:>7}: {:>8.2?} total, {results} qualifying objects, \
             brightest={brightest}, {} cracks, {} tuples touched",
            t0.elapsed(),
            engine.stats().cracks,
            engine.stats().touched
        );
    }
    println!(
        "\nThe focused trace leaves large unindexed areas that original \
         cracking re-scans over and over;\nstochastic cracking's random \
         cracks dissolve them — same answers, far less data touched."
    );
}
