//! Progressive stochastic cracking: tuning the swap budget.
//!
//! PMDD1R spreads one physical reorganization over several queries: each
//! query may perform at most x% of a piece's size in swaps. Small budgets
//! make the first queries (when a workload shifts to a cold region)
//! almost free, at the price of a few more queries until convergence —
//! the trade-off of the paper's Fig. 9(c)/Fig. 20.
//!
//! Run with: `cargo run --release --example progressive_budget`

use std::time::Instant;
use stochastic_cracking::prelude::*;

fn main() {
    let n: u64 = 4_000_000;
    let data: Vec<u64> = unique_permutation(n, 23);
    // The hostile case: a sequential sweep over a cold column.
    let queries = WorkloadSpec::new(WorkloadKind::Sequential, n, 2_000, 5).generate();

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "budget", "query 1", "first 20", "total", "max swaps/query"
    );
    println!("{}", "-".repeat(64));
    for pct in [1u32, 5, 10, 50, 100] {
        let mut engine = build_engine(
            EngineKind::Progressive { swap_pct: pct },
            data.clone(),
            CrackConfig::default(),
            23,
        );
        let mut per_query = Vec::with_capacity(queries.len());
        let mut max_swaps = 0u64;
        let mut prev_swaps = 0u64;
        let t0 = Instant::now();
        for q in &queries {
            let tq = Instant::now();
            let out = engine.select(*q);
            per_query.push(tq.elapsed());
            std::hint::black_box(out.len());
            let s = engine.stats().swaps;
            max_swaps = max_swaps.max(s - prev_swaps);
            prev_swaps = s;
        }
        let total = t0.elapsed();
        let first20: std::time::Duration = per_query[..20].iter().sum();
        println!(
            "{:<8} {:>12.2?} {:>12.2?} {:>12.2?} {:>14}",
            format!("P{pct}%"),
            per_query[0],
            first20,
            total,
            max_swaps
        );
    }
    println!(
        "\nSmaller budgets cap the swaps any single query performs (never \
         stalling one user),\nwhile the index still converges — the crack \
         is simply finished by later queries."
    );
}
