//! Multi-attribute exploratory analysis over a cracked table.
//!
//! The scenario from the paper's introduction: a scientist explores a
//! dataset with conjunctive range queries whose focus drifts (each answer
//! shapes the next question). No index exists up front; every queried
//! column indexes itself, each with the strategy that fits its access
//! pattern — stochastic cracking on the drifting attribute, original
//! cracking on the uniformly probed one.
//!
//! Run with: `cargo run --release --example multicolumn`

use std::time::Instant;
use stochastic_cracking::prelude::*;
use stochastic_cracking::query::{CrackedTable, Predicate};

const N: u64 = 2_000_000;
const SEED: u64 = 20120827;

fn main() {
    // A synthetic sky-survey-ish table: position (drifting exploratory
    // scans), brightness (uniform probes), epoch (coarse equality).
    let mut s = SEED;
    let mut rand = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let position: Vec<u64> = (0..N).map(|_| rand() % N).collect();
    let brightness: Vec<u64> = (0..N).map(|_| rand() % 100_000).collect();
    let epoch: Vec<u64> = (0..N).map(|_| rand() % 64).collect();

    let mut table = CrackedTable::new();
    table.add_column("position", position, EngineKind::Mdd1r, SEED);
    table.add_column("brightness", brightness, EngineKind::Crack, SEED + 1);
    table.add_column("epoch", epoch, EngineKind::Dd1r, SEED + 2);
    println!(
        "Table: {} rows x {:?}; no a-priori indexes.\n",
        table.n_rows(),
        table.column_names()
    );

    println!("{:<6} {:>26} {:>8} {:>11}", "query", "focus region", "rows", "time");
    let t0 = Instant::now();
    let mut total_rows = 0usize;
    for i in 0..40u64 {
        // The position focus drifts like a telescope scan; brightness and
        // epoch conditions stay exploratory.
        let focus = (i * N / 50) % (N - N / 20);
        let preds = [
            Predicate::range("position", focus, focus + N / 20),
            Predicate::at_least("brightness", 60_000),
            Predicate::range("epoch", i % 48, i % 48 + 16),
        ];
        let tq = Instant::now();
        let rows = table.query(&preds);
        let dt = tq.elapsed();
        total_rows += rows.len();
        if i < 10 || i % 10 == 0 {
            println!(
                "{:<6} [{:>10}, {:>10}) {:>8} {:>10.2?}",
                i + 1,
                focus,
                focus + N / 20,
                rows.len(),
                dt
            );
        }
        // Tuple reconstruction: fetch the brightness of the qualifying
        // rows, as a downstream aggregation would.
        let b = table.project(&rows, "brightness");
        assert_eq!(b.len(), rows.len());
        assert!(b.iter().all(|v| *v >= 60_000));
    }
    println!(
        "\n40 conjunctive queries, {total_rows} result rows, {:.2?} total.",
        t0.elapsed()
    );
    for (name, stats) in table.stats_per_column() {
        println!(
            "  {name:<11} cracks={:<6} touched={:<12} (adaptive investment so far)",
            stats.cracks, stats.touched
        );
    }
    println!(
        "\nEach column pays only for the attention it gets — \"only those\n\
         tables, columns, and key ranges that are queried are being\n\
         optimized\" (§2), now across attributes."
    );
}
