//! A self-tuning analytics session: disjunctive filters, aggregates with
//! select-pushdown, and storage-bounded sideways projections — all
//! indexing themselves as a side effect of the analyst's queries.
//!
//! The scenario composes the query-layer extensions over one dataset (a
//! synthetic sensor fleet): no index is built up front, no tuning knob is
//! touched, and memory for projection maps is capped.
//!
//! Run with: `cargo run --release --example analyst_dashboard`

use std::time::Instant;
use stochastic_cracking::prelude::*;
use stochastic_cracking::query::{CrackedTable, Predicate};

const N: u64 = 1_000_000;
const SEED: u64 = 20120827;

fn main() {
    // Sensor fleet: reading value, station id, hour-of-week.
    let mut s = SEED;
    let mut rand = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let value: Vec<u64> = (0..N).map(|_| rand() % 100_000).collect();
    let station: Vec<u64> = (0..N).map(|_| rand() % 500).collect();
    let hour: Vec<u64> = (0..N).map(|_| rand() % 168).collect();

    let mut table = CrackedTable::new();
    table.add_column("value", value, EngineKind::Mdd1r, SEED);
    table.add_column("station", station, EngineKind::Mdd1r, SEED + 1);
    table.add_column("hour", hour, EngineKind::Crack, SEED + 2);
    println!("{} sensor readings, no a-priori indexes.\n", table.n_rows());

    // --- 1. Aggregate with select-pushdown --------------------------
    let t0 = Instant::now();
    let agg = table.aggregate(&[Predicate::range("value", 90_000, 100_000)], "value");
    println!(
        "top-decile readings: count={} avg={:.0} min={:?} max={:?}  ({:.2?}, pushdown: \
         no rowid set was built)",
        agg.count,
        agg.avg().unwrap_or(0.0),
        agg.min,
        agg.max,
        t0.elapsed()
    );

    // --- 2. Disjunctive alerting query (DNF) ------------------------
    let t0 = Instant::now();
    // (extreme value AND weekend hours) OR (station 13 AND any high value)
    let alerts = table.query_dnf(&[
        vec![
            Predicate::at_least("value", 99_000),
            Predicate::range("hour", 120, 168),
        ],
        vec![Predicate::eq("station", 13), Predicate::at_least("value", 80_000)],
    ]);
    println!(
        "alert rows: {} ({:.2?}; every predicate cracked its column a bit further)",
        alerts.len(),
        t0.elapsed()
    );

    // --- 3. Repeating the dashboard: adaptation pays ----------------
    let t0 = Instant::now();
    for _ in 0..50 {
        table.aggregate(&[Predicate::range("value", 90_000, 100_000)], "value");
    }
    println!(
        "50 dashboard refreshes of the aggregate: {:.2?} total (the range is cracked \
         contiguous now)",
        t0.elapsed()
    );

    // --- 4. Storage-bounded sideways projections --------------------
    // A separate access path: (select attr, project attr) cracker maps
    // under a memory budget of two resident maps.
    let mut raw = Table::new();
    let mut s2 = SEED ^ 0xABCD;
    let mut rand2 = move || {
        s2 ^= s2 << 13;
        s2 ^= s2 >> 7;
        s2 ^= s2 << 17;
        s2
    };
    let m = 500_000u64;
    raw.add_column("value", (0..m).map(|_| rand2() % 100_000).collect());
    raw.add_column("station", (0..m).map(|_| rand2() % 500).collect());
    raw.add_column("hour", (0..m).map(|_| rand2() % 168).collect());
    let mut maps = BudgetedSideways::new(
        raw,
        MapStrategy::Stochastic,
        CrackConfig::default(),
        SEED,
        2 * m as usize, // room for two of the three touched maps
    );
    let t0 = Instant::now();
    for i in 0..60u64 {
        let lo = (i * 1500) % 90_000;
        // A realistic skew: two hot projection pairs, one occasional one.
        match i % 8 {
            0..=3 => maps.select_project("value", QueryRange::new(lo, lo + 5_000), "station"),
            4..=6 => maps.select_project("value", QueryRange::new(lo, lo + 5_000), "hour"),
            _ => maps.select_project("hour", QueryRange::new(i % 160, i % 160 + 8), "value"),
        };
    }
    println!(
        "\nsideways under budget: 60 select-project queries in {:.2?}; {} maps built, \
         {} evicted, {} resident ({} pairs <= budget {})",
        t0.elapsed(),
        maps.maps_created(),
        maps.evictions(),
        maps.resident_maps(),
        maps.resident_pairs(),
        2 * m
    );
    println!(
        "\nEverything above self-organized: \"the more often a key range is \
         queried,\nthe more its representation is optimized\" (§2) — within \
         whatever memory you give it."
    );
}
