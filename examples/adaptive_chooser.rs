//! The §6 "dynamic component": a bandit learns which cracking algorithm to
//! run, per query, from observed costs — with no workload knowledge.
//!
//! The scenario is the hostile one: the workload silently switches from
//! Sequential (pathological for original cracking) to Random (where
//! original cracking is cheapest) and back. A fixed choice is wrong in one
//! phase or the other; the bandit re-learns at each switch.
//!
//! Run with: `cargo run --release --example adaptive_chooser`

use std::time::Instant;
use stochastic_cracking::prelude::*;

const N: u64 = 2_000_000;
const PHASE: usize = 400;
const SEED: u64 = 20120827;

fn phases() -> Vec<(&'static str, Vec<QueryRange>)> {
    vec![
        (
            "Sequential",
            WorkloadSpec::new(WorkloadKind::Sequential, N, PHASE, SEED).generate(),
        ),
        (
            "Random",
            WorkloadSpec::new(WorkloadKind::Random, N, PHASE, SEED + 1).generate(),
        ),
        (
            "ZoomInAlt",
            WorkloadSpec::new(WorkloadKind::ZoomInAlt, N, PHASE, SEED + 2).generate(),
        ),
    ]
}

fn run(label: &str, mut engine: Box<dyn Engine<u64>>, oracle: &Oracle) -> (String, f64, u64) {
    let t0 = Instant::now();
    for (_, queries) in phases() {
        for q in queries {
            let out = engine.select(q);
            debug_assert_eq!(out.len(), oracle.count(q));
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    (label.to_string(), secs, engine.stats().touched)
}

fn main() {
    println!("Column: {N} unique integers; workload: Sequential -> Random -> ZoomInAlt");
    println!("({} queries per phase, phase boundaries NOT announced to any engine)\n", PHASE);
    let data: Vec<u64> = unique_permutation(N, SEED);
    let oracle = Oracle::new(&data);

    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    for kind in [EngineKind::Crack, EngineKind::Mdd1r] {
        let engine = build_engine(kind, data.clone(), CrackConfig::default(), SEED);
        rows.push(run(&kind.label(), engine, &oracle));
    }
    for policy in [PolicyKind::PieceAware, PolicyKind::EpsilonGreedy, PolicyKind::Ucb1] {
        let engine = ChooserEngine::from_kind(data.clone(), CrackConfig::default(), SEED, policy);
        let label = engine.name();
        // Keep a second engine to report arm pulls after the run.
        let mut probe =
            ChooserEngine::from_kind(data.clone(), CrackConfig::default(), SEED, policy);
        rows.push(run(&label, Box::new(engine), &oracle));
        for (_, queries) in phases() {
            for q in queries {
                probe.select(q);
            }
        }
        let menu: Vec<String> = probe.menu().iter().map(|a| a.label()).collect();
        println!(
            "  {label:<22} arm pulls: {:?} over menu {:?}",
            probe.arm_pulls(),
            menu
        );
    }

    println!("\n{:<22} {:>10} {:>16}", "engine", "total", "tuples touched");
    for (label, secs, touched) in &rows {
        println!("{label:<22} {:>9.3}s {touched:>16}", secs);
    }
    println!(
        "\nThe learned policies land near the best fixed choice in every phase\n\
         without being told the workload — the paper's §6 future-work component."
    );
}
