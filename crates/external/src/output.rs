//! Select results over paged storage: position views plus materialized
//! fringes, mirroring the in-memory `QueryOutput` contract.

use crate::column::PagedColumn;
use scrack_types::Element;

/// The result of a paged select: zero or more contiguous position views
/// into the paged column plus a materialized fringe.
///
/// Views are resolved lazily (and charged I/O) only when the caller walks
/// them — exactly like the in-memory engines, where `Crack`/`Sort` return
/// views and only `Scan`/`MDD1R` fringes pay materialization.
#[derive(Debug, Clone)]
pub struct ExternalOutput<E> {
    views: Vec<(usize, usize)>,
    mat: Vec<E>,
}

impl<E: Element> Default for ExternalOutput<E> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<E: Element> ExternalOutput<E> {
    /// A result with no qualifying tuples.
    pub fn empty() -> Self {
        Self {
            views: Vec::new(),
            mat: Vec::new(),
        }
    }

    /// Appends the view `[start, end)` (empty views are dropped).
    pub fn push_view(&mut self, start: usize, end: usize) {
        if start < end {
            self.views.push((start, end));
        }
    }

    /// The materialized fringe, for engines to append into.
    pub fn mat_mut(&mut self) -> &mut Vec<E> {
        &mut self.mat
    }

    /// The position views.
    pub fn views(&self) -> &[(usize, usize)] {
        &self.views
    }

    /// The materialized tuples.
    pub fn mat(&self) -> &[E] {
        &self.mat
    }

    /// Number of qualifying tuples.
    pub fn len(&self) -> usize {
        self.mat.len() + self.views.iter().map(|(s, e)| e - s).sum::<usize>()
    }

    /// Whether no tuples qualify.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wrapping sum of all qualifying keys, reading view pages through the
    /// pool (uncounted in the §3 tuple counters: result consumption is the
    /// caller's work, not reorganization).
    pub fn key_checksum(&self, col: &mut PagedColumn<E>) -> u64 {
        let mut sum: u64 = self.mat.iter().fold(0, |s, e| s.wrapping_add(e.key()));
        for &(start, end) in &self.views {
            for i in start..end {
                sum = sum.wrapping_add(col.peek(i).key());
            }
        }
        sum
    }

    /// All qualifying keys in ascending order (test helper).
    pub fn keys_sorted(&self, col: &mut PagedColumn<E>) -> Vec<u64> {
        let mut keys: Vec<u64> = self.mat.iter().map(Element::key).collect();
        for &(start, end) in &self.views {
            for i in start..end {
                keys.push(col.peek(i).key());
            }
        }
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PoolConfig;

    #[test]
    fn len_counts_views_and_mat() {
        let mut out = ExternalOutput::<u64>::empty();
        assert!(out.is_empty());
        out.push_view(10, 20);
        out.push_view(5, 5); // dropped
        out.mat_mut().extend([1u64, 2, 3]);
        assert_eq!(out.len(), 13);
        assert_eq!(out.views().len(), 1);
    }

    #[test]
    fn checksum_resolves_views_against_column() {
        let data: Vec<u64> = (0..100).collect();
        let mut col = PagedColumn::new(
            &data,
            PoolConfig {
                page_elems: 16,
                frames: 2,
            },
        );
        let mut out = ExternalOutput::empty();
        out.push_view(10, 13); // 10+11+12 = 33
        out.mat_mut().push(7);
        assert_eq!(out.key_checksum(&mut col), 40);
        assert_eq!(out.keys_sorted(&mut col), vec![7, 10, 11, 12]);
    }
}
