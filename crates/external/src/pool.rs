//! The buffer pool: a fixed set of in-memory frames over the disk store,
//! with clock-sweep (second-chance) replacement, pin counts, dirty bits,
//! and full I/O accounting.

use crate::page::{DiskStore, PageId, PoolConfig};
use scrack_types::Element;

/// Page-transfer counters.
///
/// `reads`/`writes` count page movements between pool and disk — the
/// simulated I/O traffic. `hits`/`faults` classify page lookups. One fault
/// causes exactly one read, plus one write if the evicted victim was
/// dirty, so `reads == faults` and `writes <= faults + 1 flush` hold as
/// invariants (tested below).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from disk into the pool.
    pub reads: u64,
    /// Pages written back from the pool to disk.
    pub writes: u64,
    /// Page lookups satisfied from the pool.
    pub hits: u64,
    /// Page lookups that had to fetch from disk.
    pub faults: u64,
}

impl IoStats {
    /// Total page transfers in either direction.
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// The difference `self - earlier`, for per-query deltas.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            hits: self.hits - earlier.hits,
            faults: self.faults - earlier.faults,
        }
    }
}

#[derive(Debug, Clone)]
struct Frame<E> {
    page: Option<PageId>,
    data: Box<[E]>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// A buffer pool of `frames` fixed-size frames over a [`DiskStore`].
///
/// Replacement is clock-sweep with a reference bit (the policy most real
/// buffer managers use): a fault sweeps the clock hand, clearing reference
/// bits, and evicts the first unpinned frame found unreferenced. Pinned
/// frames are never evicted; a fault with every frame pinned panics —
/// callers (the paged column) pin at most two pages at a time and the
/// pool floor is two frames, so this cannot fire from library code.
#[derive(Debug, Clone)]
pub struct BufferPool<E: Element> {
    disk: DiskStore<E>,
    frames: Vec<Frame<E>>,
    /// `page_table[p]` = frame currently caching page `p`.
    page_table: Vec<Option<usize>>,
    hand: usize,
    io: IoStats,
}

impl<E: Element> BufferPool<E> {
    /// Builds a pool of `config.frames` frames over `disk`.
    pub fn new(disk: DiskStore<E>, config: PoolConfig) -> Self {
        assert!(config.frames >= 1, "pool needs at least one frame");
        assert_eq!(
            config.page_elems,
            disk.page_elems(),
            "pool and disk page sizes must agree"
        );
        let page_elems = disk.page_elems();
        let zero: Vec<E> = vec![E::from_key_row(0, 0); page_elems];
        let frames = (0..config.frames)
            .map(|_| Frame {
                page: None,
                data: zero.clone().into_boxed_slice(),
                dirty: false,
                pins: 0,
                referenced: false,
            })
            .collect();
        let page_table = vec![None; disk.page_count()];
        Self {
            disk,
            frames,
            page_table,
            hand: 0,
            io: IoStats::default(),
        }
    }

    /// The I/O counters.
    pub fn io(&self) -> IoStats {
        self.io
    }

    /// Resets the I/O counters (e.g. after a warmup phase).
    pub fn reset_io(&mut self) {
        self.io = IoStats::default();
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The underlying disk store (diagnostics and tests).
    pub fn disk(&self) -> &DiskStore<E> {
        &self.disk
    }

    /// Number of frames currently caching a page.
    pub fn resident_pages(&self) -> usize {
        self.frames.iter().filter(|f| f.page.is_some()).count()
    }

    /// Whether `page` is currently resident (no I/O, no ref-bit update).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.page_table[page].is_some()
    }

    /// Ensures `page` is resident and returns its frame index, updating
    /// hit/fault counters and the reference bit.
    fn fetch(&mut self, page: PageId) -> usize {
        if let Some(frame) = self.page_table[page] {
            self.io.hits += 1;
            self.frames[frame].referenced = true;
            return frame;
        }
        self.io.faults += 1;
        let victim = self.find_victim();
        self.evict(victim);
        self.io.reads += 1;
        let frame = &mut self.frames[victim];
        self.disk.read_page(page, &mut frame.data);
        frame.page = Some(page);
        frame.dirty = false;
        frame.referenced = true;
        self.page_table[page] = Some(victim);
        victim
    }

    /// Clock sweep: find an unpinned frame to evict (empty frames win
    /// immediately).
    fn find_victim(&mut self) -> usize {
        if let Some(empty) = self.frames.iter().position(|f| f.page.is_none()) {
            return empty;
        }
        // Two full sweeps guarantee termination: the first pass may only
        // clear reference bits, the second must find one unpinned frame.
        for _ in 0..2 * self.frames.len() {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[i];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                return i;
            }
        }
        panic!("buffer pool exhausted: every frame is pinned");
    }

    /// Writes the frame back if dirty and disconnects it from its page.
    fn evict(&mut self, frame_idx: usize) {
        let frame = &mut self.frames[frame_idx];
        let Some(page) = frame.page else {
            return;
        };
        debug_assert_eq!(frame.pins, 0, "evicting a pinned frame");
        if frame.dirty {
            self.io.writes += 1;
            self.disk.write_page(page, &frame.data);
            frame.dirty = false;
        }
        frame.page = None;
        self.page_table[page] = None;
    }

    /// Pins `page` into memory and returns its frame index. A pinned page
    /// is immune to eviction until [`unpin`](Self::unpin).
    pub fn pin(&mut self, page: PageId) -> usize {
        let frame = self.fetch(page);
        self.frames[frame].pins += 1;
        frame
    }

    /// Releases one pin on `page`.
    ///
    /// # Panics
    /// If the page is not resident or not pinned.
    pub fn unpin(&mut self, page: PageId) {
        let frame = self.page_table[page].expect("unpin of a non-resident page");
        let pins = &mut self.frames[frame].pins;
        assert!(*pins > 0, "unpin of an unpinned page");
        *pins -= 1;
    }

    /// Read-only access to a resident-or-fetched page's elements.
    pub fn page(&mut self, page: PageId) -> &[E] {
        let frame = self.fetch(page);
        &self.frames[frame].data
    }

    /// Mutable access to a page's elements; marks the page dirty.
    pub fn page_mut(&mut self, page: PageId) -> &mut [E] {
        let frame = self.fetch(page);
        let f = &mut self.frames[frame];
        f.dirty = true;
        &mut f.data
    }

    /// Writes every dirty frame back to disk (counts one write each), e.g.
    /// at the end of a bulk operation.
    pub fn flush_all(&mut self) {
        for i in 0..self.frames.len() {
            if self.frames[i].page.is_some() && self.frames[i].dirty {
                let page = self.frames[i].page.expect("checked above");
                self.io.writes += 1;
                self.disk.write_page(page, &self.frames[i].data);
                self.frames[i].dirty = false;
            }
        }
    }

    /// Accounts page transfers performed outside the pool — sequential
    /// staged I/O such as external sort's run output, which a real system
    /// would also stream past the buffer manager.
    pub fn charge(&mut self, reads: u64, writes: u64) {
        self.io.reads += reads;
        self.io.writes += writes;
    }

    /// Replaces the disk contents wholesale, discarding every cached frame
    /// **without write-back** (the previous contents are obsolete, e.g.
    /// after a merge pass rewrote the column).
    ///
    /// # Panics
    /// If any frame is pinned, or the new disk's geometry differs.
    pub fn replace_disk(&mut self, disk: DiskStore<E>) {
        assert_eq!(
            disk.page_elems(),
            self.disk.page_elems(),
            "replacement disk must keep the page size"
        );
        for frame in &mut self.frames {
            assert_eq!(frame.pins, 0, "replace_disk with a pinned frame");
            frame.page = None;
            frame.dirty = false;
            frame.referenced = false;
        }
        self.page_table = vec![None; disk.page_count()];
        self.disk = disk;
    }

    /// Flushes and drops every frame (cold-cache state for experiments).
    pub fn clear(&mut self) {
        self.flush_all();
        for i in 0..self.frames.len() {
            if let Some(page) = self.frames[i].page.take() {
                debug_assert_eq!(self.frames[i].pins, 0, "clearing a pinned frame");
                self.page_table[page] = None;
            }
            self.frames[i].referenced = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u64, page_elems: usize, frames: usize) -> BufferPool<u64> {
        let data: Vec<u64> = (0..n).collect();
        let disk = DiskStore::new(&data, page_elems);
        BufferPool::new(disk, PoolConfig { page_elems, frames })
    }

    #[test]
    fn hits_and_faults_are_classified() {
        let mut p = pool(1024, 128, 4);
        p.page(0);
        p.page(0);
        p.page(1);
        assert_eq!(p.io().faults, 2);
        assert_eq!(p.io().hits, 1);
        assert_eq!(p.io().reads, 2);
        assert_eq!(p.io().writes, 0);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = pool(8192, 128, 4);
        for page in 0..64 {
            p.page(page);
            assert!(p.resident_pages() <= 4);
        }
        assert_eq!(p.io().faults, 64);
    }

    #[test]
    fn clean_eviction_writes_nothing() {
        let mut p = pool(8192, 128, 2);
        for page in 0..64 {
            p.page(page);
        }
        assert_eq!(p.io().writes, 0, "read-only traffic must not write");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut p = pool(8192, 128, 2);
        p.page_mut(0)[0] = 4242;
        // Force page 0 out by touching two other pages.
        p.page(1);
        p.page(2);
        assert_eq!(p.io().writes, 1);
        // Re-reading page 0 must see the written value (write-back, not
        // write-through-lost).
        assert_eq!(p.page(0)[0], 4242);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut p = pool(8192, 128, 3);
        p.pin(0);
        p.page_mut(0)[5] = 7;
        for page in 1..60 {
            p.page(page);
        }
        assert!(p.is_resident(0), "pinned page evicted");
        assert_eq!(p.page(0)[5], 7);
        p.unpin(0);
        for page in 1..60 {
            p.page(page);
        }
        assert!(!p.is_resident(0), "unpinned page never evicted");
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn all_pinned_faults_panic() {
        let mut p = pool(8192, 128, 2);
        p.pin(0);
        p.pin(1);
        p.page(2);
    }

    #[test]
    #[should_panic(expected = "unpinned")]
    fn unpin_requires_pin() {
        let mut p = pool(1024, 128, 2);
        p.page(0);
        p.unpin(0);
    }

    #[test]
    fn flush_all_persists_and_cleans() {
        let mut p = pool(1024, 128, 4);
        p.page_mut(3)[0] = 11;
        p.flush_all();
        assert_eq!(p.io().writes, 1);
        p.flush_all();
        assert_eq!(p.io().writes, 1, "second flush has nothing to do");
        assert_eq!(p.disk().snapshot()[3 * 128], 11);
    }

    #[test]
    fn clear_returns_to_cold_cache() {
        let mut p = pool(1024, 128, 4);
        p.page_mut(0)[0] = 5;
        p.clear();
        assert_eq!(p.resident_pages(), 0);
        assert_eq!(p.disk().snapshot()[0], 5, "clear must flush");
        let io0 = p.io();
        p.page(0);
        assert_eq!(p.io().since(&io0).faults, 1, "post-clear access faults");
    }

    #[test]
    fn reads_equal_faults_invariant() {
        let mut p = pool(65536, 256, 8);
        // Mixed read/write traffic with heavy eviction.
        for i in 0..1000usize {
            let page = (i * 37) % 256;
            if i % 3 == 0 {
                p.page_mut(page)[i % 256] = i as u64;
            } else {
                p.page(page);
            }
        }
        assert_eq!(p.io().reads, p.io().faults);
        assert_eq!(p.io().hits + p.io().faults, 1000);
    }

    #[test]
    fn clock_prefers_unreferenced_frames() {
        let mut p = pool(8192, 128, 3);
        p.page(0);
        p.page(1);
        p.page(2);
        // All reference bits are set, so this fault sweeps once (clearing
        // every bit) and evicts in hand order: page 0.
        p.page(3);
        assert!(!p.is_resident(0));
        // Pages 1 and 2 are now unreferenced; re-reference page 1 only.
        p.page(1);
        // The next fault must pass over the referenced page 1 and take the
        // unreferenced page 2 — the second-chance property.
        p.page(4);
        assert!(!p.is_resident(2), "unreferenced page should be the victim");
        assert!(p.is_resident(1), "recently referenced page survives");
        assert!(p.is_resident(3) && p.is_resident(4));
    }
}
