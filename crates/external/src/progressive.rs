//! Progressive stochastic cracking over paged storage: §6's question made
//! tunable.
//!
//! §6 asks "how much reorganization we can afford per query without
//! increasing I/O costs prohibitively". In memory, PMDD1R (§4) bounds a
//! query's reorganization by a *swap* budget. On disk that unit is wrong:
//! when a partition's cursors travel far between exchanges, a handful of
//! swaps can dirty a page each, so a swap budget does not bound write
//! I/O. This engine therefore re-expresses the budget in the disk
//! currency — **pages dirtied per query** (`x%` of the piece's pages) —
//! which is a strict write-I/O throttle. The partition job (pivot and
//! cursor pair) is stored in the piece's index metadata and resumed by
//! later queries touching the piece — one random crack, amortized over
//! many queries' I/O allowances.

use crate::column::PagedColumn;
use crate::kernel::split_and_materialize_paged;
use crate::output::ExternalOutput;
use crate::page::PoolConfig;
use crate::pool::IoStats;
use crate::engine::PagedEngine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_index::{CrackerIndex, Piece, PieceMeta};
use scrack_partition::{JobStatus, PartitionJob};
use scrack_types::{Element, QueryRange, Stats};

/// Per-piece metadata of the external progressive engine: the in-flight
/// partition job, if any. Jobs describe one concrete piece and never
/// survive its split.
#[derive(Debug, Clone, Default)]
pub struct ExtPieceState {
    /// The suspended partition of this piece, if one is in flight.
    pub job: Option<PartitionJob>,
}

impl PieceMeta for ExtPieceState {
    fn inherit(&self) -> Self {
        ExtPieceState { job: None }
    }
}

/// Resumes `job` over paged storage, dirtying at most `budget_pages`
/// distinct pages (the first exchange is always allowed, so every call
/// makes progress).
///
/// Every element a cursor passes is filter-checked against `q` and
/// appended to `out` — the paged counterpart of the in-memory
/// `advance_job`. On [`JobStatus::InProgress`] the new middle
/// `[job.l, job.r)` has **not** been filtered by this call; the caller
/// must scan it to finish answering the query.
///
/// Counting distinct dirtied pages is exact and O(1): the left cursor
/// only ascends and the right cursor only descends, so each side's
/// current page changes monotonically.
pub fn advance_job_paged<E: Element>(
    col: &mut PagedColumn<E>,
    job: &mut PartitionJob,
    budget_pages: u64,
    q: QueryRange,
    out: &mut Vec<E>,
) -> JobStatus {
    let page_elems = col.page_elems();
    let mut dirtied = 0u64;
    let mut last_l_page = usize::MAX;
    let mut last_r_page = usize::MAX;
    while job.l < job.r {
        let e = col.get(job.l);
        col.stats_mut().comparisons += 1;
        if e.key() < job.pivot {
            if q.contains(e.key()) {
                out.push(e);
                col.stats_mut().materialized += 1;
            }
            job.l += 1;
            continue;
        }
        let e = col.get(job.r - 1);
        col.stats_mut().comparisons += 1;
        if e.key() >= job.pivot {
            if q.contains(e.key()) {
                out.push(e);
                col.stats_mut().materialized += 1;
            }
            job.r -= 1;
            continue;
        }
        // Both cursors stuck: an exchange is due. Charge the pages it
        // would newly dirty against the budget.
        let lp = job.l / page_elems;
        let rp = (job.r - 1) / page_elems;
        let mut fresh = 0u64;
        if lp != last_l_page && lp != last_r_page {
            fresh += 1;
        }
        if rp != last_r_page && rp != last_l_page && rp != lp {
            fresh += 1;
        }
        if dirtied > 0 && dirtied + fresh > budget_pages {
            return JobStatus::InProgress;
        }
        col.swap(job.l, job.r - 1);
        if lp != last_l_page {
            last_l_page = lp;
        }
        if rp != last_r_page {
            last_r_page = rp;
        }
        dirtied += fresh;
    }
    JobStatus::Done { crack_pos: job.l }
}

/// Progressive stochastic cracking (PMDD1R) over paged storage.
///
/// `budget_pct` bounds each query's reorganization to that percentage of
/// the touched piece's *pages dirtied* (see the module docs for why the
/// budget currency is pages, not swaps); pieces at or below
/// `threshold_elems` take the full-MDD1R path (fast convergence where
/// budgets buy nothing, §4). `budget_pct = 100` behaves like
/// [`ExternalMdd1rEngine`](crate::engine::ExternalMdd1rEngine).
///
/// ```
/// use scrack_external::{ExternalPmdd1rEngine, PagedEngine, PoolConfig};
/// use scrack_types::QueryRange;
///
/// let data: Vec<u64> = (0..50_000).rev().collect();
/// let config = PoolConfig { page_elems: 1024, frames: 8 };
/// // Each query may dirty at most 10% of the touched piece's pages.
/// let mut engine = ExternalPmdd1rEngine::new(&data, config, 7, 10.0);
/// let out = engine.select(QueryRange::new(1_000, 1_100));
/// assert_eq!(out.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct ExternalPmdd1rEngine<E: Element> {
    col: PagedColumn<E>,
    index: CrackerIndex<ExtPieceState>,
    rng: SmallRng,
    budget_pct: f64,
    threshold_elems: usize,
}

impl<E: Element> ExternalPmdd1rEngine<E> {
    /// Lays `data` out on pages; the progressive threshold defaults to 16
    /// pages' worth of elements.
    pub fn new(data: &[E], config: PoolConfig, seed: u64, budget_pct: f64) -> Self {
        assert!(
            budget_pct > 0.0 && budget_pct <= 100.0,
            "dirty-page budget must be a percentage in (0, 100]"
        );
        let len = data.len();
        Self {
            col: PagedColumn::new(data, config),
            index: CrackerIndex::new(len),
            rng: SmallRng::seed_from_u64(seed),
            budget_pct,
            threshold_elems: 16 * config.page_elems,
        }
    }

    /// Overrides the full-MDD1R threshold (elements).
    pub fn with_threshold(mut self, elems: usize) -> Self {
        self.threshold_elems = elems;
        self
    }

    /// The cracker index (tests).
    pub fn index(&self) -> &CrackerIndex<ExtPieceState> {
        &self.index
    }

    /// Whether any piece holds a suspended partition job.
    pub fn has_active_jobs(&self) -> bool {
        self.index
            .iter_pieces()
            .any(|p| self.index.piece_meta(&p).job.is_some())
    }

    /// Filters `[start, end)` into `out` (result work for the current
    /// query over regions the job already settled or has not reached).
    fn filter_range(&mut self, start: usize, end: usize, q: QueryRange, out: &mut Vec<E>) {
        let mut materialized = 0u64;
        let mut collected = std::mem::take(out);
        self.col.for_range(start, end, |e| {
            if q.contains(e.key()) {
                collected.push(e);
                materialized += 1;
            }
        });
        *out = collected;
        self.col.stats_mut().materialized += materialized;
    }

    /// Progressive handling of a partially covered piece.
    fn progressive_fringe(&mut self, piece: &Piece, q: QueryRange, out: &mut ExternalOutput<E>) {
        if piece.is_empty() {
            return;
        }
        let has_job = self.index.piece_meta(piece).job.is_some();
        if piece.len() <= self.threshold_elems && !has_job {
            // Small piece: full MDD1R takes over (§4).
            let pivot = self
                .col
                .peek(piece.start + self.rng.gen_range(0..piece.len()))
                .key();
            let pos = split_and_materialize_paged(
                &mut self.col,
                piece.start,
                piece.end,
                pivot,
                q,
                out.mat_mut(),
            );
            if pos > piece.start && pos < piece.end {
                self.index.add_crack(pivot, pos);
                self.col.stats_mut().cracks += 1;
            }
            return;
        }
        let piece_pages = piece.len().div_ceil(self.col.page_elems());
        let budget = ((piece_pages as f64 * self.budget_pct / 100.0).ceil() as u64).max(1);
        let mut job = match self.index.piece_meta_mut(piece).job.take() {
            Some(job) => job,
            None => {
                let pivot = self
                    .col
                    .peek(piece.start + self.rng.gen_range(0..piece.len()))
                    .key();
                PartitionJob::new(pivot, piece.start, piece.end)
            }
        };
        // Regions settled by earlier queries still need filtering for
        // *this* query's result.
        self.filter_range(piece.start, job.l, q, out.mat_mut());
        self.filter_range(job.r, piece.end, q, out.mat_mut());
        match advance_job_paged(&mut self.col, &mut job, budget, q, out.mat_mut()) {
            JobStatus::Done { crack_pos } => {
                if crack_pos > piece.start && crack_pos < piece.end {
                    self.index.add_crack(job.pivot, crack_pos);
                    self.col.stats_mut().cracks += 1;
                }
            }
            JobStatus::InProgress => {
                // The untouched middle holds unfiltered tuples.
                self.filter_range(job.l, job.r, q, out.mat_mut());
                self.index.piece_meta_mut(piece).job = Some(job);
            }
        }
    }
}

impl<E: Element> PagedEngine<E> for ExternalPmdd1rEngine<E> {
    fn name(&self) -> String {
        format!("P{}%", self.budget_pct)
    }

    fn select(&mut self, q: QueryRange) -> ExternalOutput<E> {
        self.col.stats_mut().queries += 1;
        let mut out = ExternalOutput::empty();
        if q.is_empty() {
            return out;
        }
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        if p1 == p2 {
            if p1.lo_key == Some(q.low) && p1.hi_key == Some(q.high) {
                out.push_view(p1.start, p1.end);
            } else {
                self.progressive_fringe(&p1, q, &mut out);
            }
            return out;
        }
        let view_start = if p1.lo_key == Some(q.low) {
            p1.start
        } else {
            self.progressive_fringe(&p1, q, &mut out);
            p1.end
        };
        let view_end = if p2.lo_key == Some(q.high) {
            p2.start
        } else {
            self.progressive_fringe(&p2, q, &mut out);
            p2.start
        };
        out.push_view(view_start, view_end);
        out
    }

    fn column_mut(&mut self) -> &mut PagedColumn<E> {
        &mut self.col
    }

    fn io(&self) -> IoStats {
        self.col.io()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_counters(&mut self) {
        self.col.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn config() -> PoolConfig {
        PoolConfig {
            page_elems: 64,
            frames: 4,
        }
    }

    #[test]
    fn answers_exactly_while_jobs_run() {
        let n = 16_384u64;
        let data = shuffled(n);
        // Threshold 0 pages would defeat the test; keep the default 16
        // pages = 1024 elements so the first pieces are progressive.
        let mut engine = ExternalPmdd1rEngine::new(&data, config(), 7, 1.0);
        let mut saw_jobs = false;
        for i in 0..128u64 {
            let low = (i * 113) % (n - 64);
            let q = QueryRange::new(low, low + 51);
            let out = engine.select(q);
            let expect = data.iter().filter(|k| q.contains(**k)).count();
            assert_eq!(out.len(), expect, "query {i}");
            saw_jobs |= engine.has_active_jobs();
        }
        assert!(saw_jobs, "a 1% budget must leave jobs in flight");
    }

    #[test]
    fn p100_behaves_like_mdd1r() {
        let n = 8_192u64;
        let data = shuffled(n);
        let mut engine = ExternalPmdd1rEngine::new(&data, config(), 7, 100.0);
        for i in 0..64u64 {
            let low = (i * 127) % (n - 32);
            let q = QueryRange::new(low, low + 20);
            let out = engine.select(q);
            let expect = data.iter().filter(|k| q.contains(**k)).count();
            assert_eq!(out.len(), expect);
        }
        assert!(
            !engine.has_active_jobs(),
            "a 100% budget always completes its partition"
        );
        assert!(engine.index().crack_count() > 0);
    }

    #[test]
    fn budget_caps_per_query_writes() {
        // The §6 knob: P1%'s worst per-query write I/O must be far below
        // MDD1R's (which partitions a whole piece in one query).
        use crate::engine::ExternalMdd1rEngine;
        let n = 65_536u64;
        let data = shuffled(n);
        let cfg = PoolConfig {
            page_elems: 256,
            frames: 8,
        };
        let queries: Vec<QueryRange> = (0..60u64)
            .map(|i| {
                let low = (i * 1_091) % (n - 32);
                QueryRange::new(low, low + 24)
            })
            .collect();

        let mut mdd1r = ExternalMdd1rEngine::new(&data, cfg, 7);
        let mut max_mdd1r = 0u64;
        for q in &queries {
            let before = mdd1r.io().writes;
            mdd1r.select(*q);
            max_mdd1r = max_mdd1r.max(mdd1r.io().writes - before);
        }

        let mut prog = ExternalPmdd1rEngine::new(&data, cfg, 7, 1.0);
        let mut max_prog = 0u64;
        for q in &queries {
            let before = prog.io().writes;
            prog.select(*q);
            max_prog = max_prog.max(prog.io().writes - before);
        }
        assert!(
            max_prog * 4 < max_mdd1r,
            "P1% must cap write bursts: {max_prog} vs MDD1R {max_mdd1r}"
        );
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn zero_budget_rejected() {
        ExternalPmdd1rEngine::new(&shuffled(100), config(), 7, 0.0);
    }

    #[test]
    fn tiny_threshold_forces_full_mdd1r_path() {
        let n = 4_096u64;
        let data = shuffled(n);
        let mut engine = ExternalPmdd1rEngine::new(&data, config(), 7, 1.0).with_threshold(n as usize);
        for i in 0..32u64 {
            let low = (i * 111) % (n - 16);
            let q = QueryRange::new(low, low + 10);
            let out = engine.select(q);
            let expect = data.iter().filter(|k| q.contains(**k)).count();
            assert_eq!(out.len(), expect);
        }
        assert!(!engine.has_active_jobs(), "threshold covers every piece");
    }

    #[test]
    fn multiset_preserved_across_suspended_jobs() {
        let n = 16_384u64;
        let data = shuffled(n);
        let mut engine = ExternalPmdd1rEngine::new(&data, config(), 7, 2.0);
        for i in 0..100u64 {
            let low = (i * 311) % (n - 64);
            engine.select(QueryRange::new(low, low + 40));
        }
        let mut snap = engine.column_mut().snapshot();
        snap.sort_unstable();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(snap, expect);
    }
}
