//! Cracking kernels over paged storage.
//!
//! These are the external-memory counterparts of `scrack-partition`'s
//! in-memory kernels: the same Hoare-style passes, but every element
//! access goes through the buffer pool and is charged page I/O. The
//! two-ended passes touch at most two pages at a time (one per cursor), so
//! they run without thrashing in any pool of at least two frames — the
//! floor [`PoolConfig`](crate::PoolConfig) enforces.

use crate::column::PagedColumn;
use scrack_types::{Element, QueryRange};

/// Partitions `[start, end)` of `col` around `pivot`: afterwards keys
/// `< pivot` occupy `[start, p)` and keys `>= pivot` occupy `[p, end)`.
/// Returns `p`. Exactly the contract of the in-memory `crack_in_two`.
pub fn crack_in_two_paged<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    pivot: u64,
) -> usize {
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    // Invariant: keys in [start, lo) are < pivot, keys in [hi, end) are
    // >= pivot. Each step shrinks the unexamined window [lo, hi), so every
    // element is read exactly once.
    let mut lo = start;
    let mut hi = end;
    'outer: loop {
        // Advance `lo` to the first key >= pivot.
        loop {
            if lo == hi {
                break 'outer;
            }
            col.stats_mut().comparisons += 1;
            if col.get(lo).key() >= pivot {
                break;
            }
            lo += 1;
        }
        // Retreat `hi` to just past the last key < pivot.
        loop {
            col.stats_mut().comparisons += 1;
            if col.get(hi - 1).key() < pivot {
                break;
            }
            hi -= 1;
            if lo == hi {
                break 'outer;
            }
        }
        // col[lo] >= pivot and col[hi-1] < pivot imply lo < hi - 1 here.
        col.swap(lo, hi - 1);
        lo += 1;
        hi -= 1;
    }
    lo
}

/// Three-way partition of `[start, end)` by the query bounds `(a, b)`:
/// afterwards `[start, p) < a`, `[p, q)` holds `a <= key < b`, and
/// `[q, end) >= b`. Returns `(p, q)`. Used when both bounds of a select
/// fall into the same piece, exactly as the in-memory `crack_in_three`.
pub fn crack_in_three_paged<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    a: u64,
    b: u64,
) -> (usize, usize) {
    assert!(a <= b, "bounds must be ordered");
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    // Dutch-national-flag pass.
    let mut lt = start;
    let mut i = start;
    let mut gt = end;
    while i < gt {
        let k = col.get(i).key();
        col.stats_mut().comparisons += 2;
        if k < a {
            col.swap(lt, i);
            lt += 1;
            i += 1;
        } else if k >= b {
            gt -= 1;
            col.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// MDD1R's fused operation (paper Fig. 5) over paged storage: partitions
/// `[start, end)` around `pivot` while appending every element with key in
/// `[q.low, q.high)` to `out`. Returns the partition boundary.
pub fn split_and_materialize_paged<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    pivot: u64,
    q: QueryRange,
    out: &mut Vec<E>,
) -> usize {
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    // Fig. 5 structure: the cursors only pass over an element after its
    // qualification check, and a swap leaves both cursors in place so the
    // swapped-in elements are re-examined (and checked) on the next round.
    let mut lo = start;
    let mut hi = end;
    while lo < hi {
        let e = col.get(lo);
        col.stats_mut().comparisons += 1;
        if e.key() < pivot {
            // Lines 15–17: correct side already; check and pass.
            if q.contains(e.key()) {
                out.push(e);
                col.stats_mut().materialized += 1;
            }
            lo += 1;
            continue;
        }
        let e = col.get(hi - 1);
        col.stats_mut().comparisons += 1;
        if e.key() >= pivot {
            // Lines 18–20: correct side already; check and pass.
            if q.contains(e.key()) {
                out.push(e);
                col.stats_mut().materialized += 1;
            }
            hi -= 1;
            continue;
        }
        // Line 21: both cursors stuck on wrong-side keys.
        col.swap(lo, hi - 1);
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PoolConfig;

    fn shuffled(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn paged(data: &[u64], frames: usize) -> PagedColumn<u64> {
        PagedColumn::new(
            data,
            PoolConfig {
                page_elems: 64,
                frames,
            },
        )
    }

    #[test]
    fn two_way_matches_contract() {
        for pivot in [0u64, 1, 500, 999, 1000, 2000] {
            let data = shuffled(1000);
            let mut col = paged(&data, 2);
            let p = crack_in_two_paged(&mut col, 0, 1000, pivot);
            let snap = col.snapshot();
            assert!(snap[..p].iter().all(|k| *k < pivot), "pivot {pivot}");
            assert!(snap[p..].iter().all(|k| *k >= pivot), "pivot {pivot}");
            let mut sorted = snap;
            sorted.sort_unstable();
            assert_eq!(sorted, (0..1000).collect::<Vec<_>>(), "permutation");
        }
    }

    #[test]
    fn two_way_inner_piece() {
        let data = shuffled(1000);
        let mut col = paged(&data, 2);
        let p = crack_in_two_paged(&mut col, 200, 700, 500);
        let snap = col.snapshot();
        assert_eq!(snap[..200], data[..200], "outside untouched");
        assert_eq!(snap[700..], data[700..], "outside untouched");
        assert!(snap[200..p].iter().all(|k| *k < 500));
        assert!(snap[p..700].iter().all(|k| *k >= 500));
    }

    #[test]
    fn two_way_empty_piece() {
        let data = shuffled(100);
        let mut col = paged(&data, 2);
        assert_eq!(crack_in_two_paged(&mut col, 40, 40, 50), 40);
    }

    #[test]
    fn three_way_matches_contract() {
        let data = shuffled(1000);
        let mut col = paged(&data, 2);
        let (p, q) = crack_in_three_paged(&mut col, 0, 1000, 300, 600);
        let snap = col.snapshot();
        assert!(snap[..p].iter().all(|k| *k < 300));
        assert!(snap[p..q].iter().all(|k| (300..600).contains(k)));
        assert!(snap[q..].iter().all(|k| *k >= 600));
        assert_eq!(q - p, 300);
    }

    #[test]
    fn three_way_degenerate_equal_bounds() {
        let data = shuffled(500);
        let mut col = paged(&data, 2);
        let (p, q) = crack_in_three_paged(&mut col, 0, 500, 250, 250);
        assert_eq!(p, q);
        let snap = col.snapshot();
        assert!(snap[..p].iter().all(|k| *k < 250));
        assert!(snap[p..].iter().all(|k| *k >= 250));
    }

    #[test]
    fn split_and_materialize_collects_qualifiers() {
        let data = shuffled(1000);
        let mut col = paged(&data, 2);
        let q = QueryRange::new(100, 200);
        let mut out = Vec::new();
        let p = split_and_materialize_paged(&mut col, 0, 1000, 437, q, &mut out);
        let snap = col.snapshot();
        assert!(snap[..p].iter().all(|k| *k < 437));
        assert!(snap[p..].iter().all(|k| *k >= 437));
        let mut got: Vec<u64> = out;
        got.sort_unstable();
        assert_eq!(got, (100..200).collect::<Vec<_>>());
        assert_eq!(col.stats().materialized, 100);
    }

    #[test]
    fn split_and_materialize_pivot_outside_range() {
        // Pivot below every key: boundary lands at start, everything still
        // scanned once for materialization.
        let data = shuffled(256);
        let mut col = paged(&data, 2);
        let mut out = Vec::new();
        let p = split_and_materialize_paged(
            &mut col,
            0,
            256,
            0,
            QueryRange::new(0, 10),
            &mut out,
        );
        assert_eq!(p, 0);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn kernels_work_with_two_frames_only() {
        // The worst-case pool: every cursor advance may evict the other
        // cursor's page. Correctness must be unaffected.
        let data = shuffled(4096);
        let mut col = paged(&data, 2);
        let p = crack_in_two_paged(&mut col, 0, 4096, 2048);
        assert_eq!(p, 2048);
        assert!(col.io().faults > 0);
    }
}
