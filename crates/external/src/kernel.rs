//! Cracking kernels over paged storage.
//!
//! These are the external-memory counterparts of `scrack-partition`'s
//! in-memory kernels: the same Hoare-style passes, but every element
//! access goes through the buffer pool and is charged page I/O. The
//! two-ended passes touch at most two pages at a time (one per cursor), so
//! they run without thrashing in any pool of at least two frames — the
//! floor [`PoolConfig`](crate::PoolConfig) enforces.
//!
//! Like the in-memory layer, the partition passes exist in two variants:
//! the classic branchy loops and predicated/blockwise branchless twins
//! ([`crack_in_two_paged_branchless`], [`crack_in_three_paged_branchless`])
//! with bit-identical results and tuple-level [`Stats`] deltas. The
//! *page*-level traffic of the blockwise pass differs (it batches its
//! exchanges), so the branchless path is opt-in for paged engines —
//! worthwhile once the working set is pool-resident and the pass is
//! CPU-bound rather than fault-bound. [`crack_in_two_paged_policy`] and
//! [`crack_in_three_paged_policy`] dispatch per call.
//!
//! [`Stats`]: scrack_types::Stats

use crate::column::PagedColumn;
use scrack_partition::{KernelPolicy, KERNEL_BLOCK};
use scrack_types::{Element, QueryRange};

/// Partitions `[start, end)` of `col` around `pivot`: afterwards keys
/// `< pivot` occupy `[start, p)` and keys `>= pivot` occupy `[p, end)`.
/// Returns `p`. Exactly the contract of the in-memory `crack_in_two`.
pub fn crack_in_two_paged<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    pivot: u64,
) -> usize {
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    // Invariant: keys in [start, lo) are < pivot, keys in [hi, end) are
    // >= pivot. Each step shrinks the unexamined window [lo, hi), so every
    // element is read exactly once.
    let mut lo = start;
    let mut hi = end;
    'outer: loop {
        // Advance `lo` to the first key >= pivot.
        loop {
            if lo == hi {
                break 'outer;
            }
            col.stats_mut().comparisons += 1;
            if col.get(lo).key() >= pivot {
                break;
            }
            lo += 1;
        }
        // Retreat `hi` to just past the last key < pivot.
        loop {
            col.stats_mut().comparisons += 1;
            if col.get(hi - 1).key() < pivot {
                break;
            }
            hi -= 1;
            if lo == hi {
                break 'outer;
            }
        }
        // col[lo] >= pivot and col[hi-1] < pivot imply lo < hi - 1 here.
        col.swap(lo, hi - 1);
        lo += 1;
        hi -= 1;
    }
    lo
}

/// Blockwise predicated two-way partition over paged storage: same
/// contract, result and tuple-level `Stats` delta as
/// [`crack_in_two_paged`], with the per-element pivot branch replaced by
/// offset-collection arithmetic over [`KERNEL_BLOCK`]-wide chunks.
///
/// The exchange pairing replicates the Hoare pass (leftmost misplaced
/// with rightmost misplaced, outside-in), so the resulting physical order
/// and swap count are bit-identical to the branchy kernel; only the page
/// access *order* differs (scan a chunk per side, then batch the
/// exchanges), which is why the paged engines keep this variant opt-in.
pub fn crack_in_two_paged_branchless<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    pivot: u64,
) -> usize {
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    let mut offs_l = [0u8; KERNEL_BLOCK];
    let mut offs_r = [0u8; KERNEL_BLOCK];
    let mut lo = start;
    let mut hi = end;
    let (mut num_l, mut start_l) = (0usize, 0usize);
    let (mut num_r, mut start_r) = (0usize, 0usize);
    while hi - lo > 2 * KERNEL_BLOCK {
        if num_l == 0 {
            start_l = 0;
            for i in 0..KERNEL_BLOCK {
                col.stats_mut().comparisons += 1;
                offs_l[num_l] = i as u8;
                num_l += (col.get(lo + i).key() >= pivot) as usize;
            }
        }
        if num_r == 0 {
            start_r = 0;
            for i in 0..KERNEL_BLOCK {
                col.stats_mut().comparisons += 1;
                offs_r[num_r] = i as u8;
                num_r += (col.get(hi - 1 - i).key() < pivot) as usize;
            }
        }
        let m = num_l.min(num_r);
        for k in 0..m {
            col.swap(
                lo + offs_l[start_l + k] as usize,
                hi - 1 - offs_r[start_r + k] as usize,
            );
        }
        num_l -= m;
        num_r -= m;
        start_l += m;
        start_r += m;
        if num_l == 0 {
            lo += KERNEL_BLOCK;
        }
        if num_r == 0 {
            hi -= KERNEL_BLOCK;
        }
    }
    // Scalar tail over the remaining window (pending offsets lie inside
    // it and are re-derived), completing the identical exchange sequence.
    // At most one side still has a partially consumed chunk; the tail
    // re-inspects its KERNEL_BLOCK elements, so back out that double
    // count to keep the paged layer's dynamic touched/comparisons
    // accounting identical to the branchy kernel's one-inspection-per-
    // element total.
    if num_l > 0 || num_r > 0 {
        col.stats_mut().touched -= KERNEL_BLOCK as u64;
        col.stats_mut().comparisons -= KERNEL_BLOCK as u64;
    }
    crack_in_two_paged(col, lo, hi, pivot)
}

/// Policy dispatch for the paged two-way partition.
#[inline]
pub fn crack_in_two_paged_policy<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    pivot: u64,
    policy: KernelPolicy,
) -> usize {
    if policy.use_branchless(end.saturating_sub(start)) {
        crack_in_two_paged_branchless(col, start, end, pivot)
    } else {
        crack_in_two_paged(col, start, end, pivot)
    }
}

/// Three-way partition of `[start, end)` by the query bounds `(a, b)`:
/// afterwards `[start, p) < a`, `[p, q)` holds `a <= key < b`, and
/// `[q, end) >= b`. Returns `(p, q)`. Used when both bounds of a select
/// fall into the same piece, exactly as the in-memory `crack_in_three`.
pub fn crack_in_three_paged<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    a: u64,
    b: u64,
) -> (usize, usize) {
    assert!(a <= b, "bounds must be ordered");
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    // Dutch-national-flag pass.
    let mut lt = start;
    let mut i = start;
    let mut gt = end;
    while i < gt {
        let k = col.get(i).key();
        col.stats_mut().comparisons += 2;
        if k < a {
            col.swap(lt, i);
            lt += 1;
            i += 1;
        } else if k >= b {
            gt -= 1;
            col.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// Predicated three-way partition over paged storage: same contract,
/// result and tuple-level `Stats` delta as [`crack_in_three_paged`], with
/// the per-element three-way branch replaced by an arithmetically
/// selected swap target (a self-exchange — which [`PagedColumn::swap`]
/// drops without cost — when the element is already placed).
pub fn crack_in_three_paged_branchless<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    a: u64,
    b: u64,
) -> (usize, usize) {
    assert!(a <= b, "bounds must be ordered");
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    let mut lt = start;
    let mut i = start;
    let mut gt = end;
    while i < gt {
        let k = col.get(i).key();
        col.stats_mut().comparisons += 2;
        let is_lt = (k < a) as usize;
        let is_ge = (k >= b) as usize;
        let is_mid = 1 - is_lt - is_ge;
        let new_gt = gt - is_ge;
        let target = is_lt * lt + is_ge * new_gt + is_mid * i;
        col.swap(i, target);
        lt += is_lt;
        gt = new_gt;
        i += is_lt + is_mid; // the >= b case re-examines the swapped-in element
    }
    (lt, gt)
}

/// Policy dispatch for the paged three-way partition.
#[inline]
pub fn crack_in_three_paged_policy<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    a: u64,
    b: u64,
    policy: KernelPolicy,
) -> (usize, usize) {
    if policy.use_branchless_three_way(end.saturating_sub(start)) {
        crack_in_three_paged_branchless(col, start, end, a, b)
    } else {
        crack_in_three_paged(col, start, end, a, b)
    }
}

/// MDD1R's fused operation (paper Fig. 5) over paged storage: partitions
/// `[start, end)` around `pivot` while appending every element with key in
/// `[q.low, q.high)` to `out`. Returns the partition boundary.
pub fn split_and_materialize_paged<E: Element>(
    col: &mut PagedColumn<E>,
    start: usize,
    end: usize,
    pivot: u64,
    q: QueryRange,
    out: &mut Vec<E>,
) -> usize {
    assert!(start <= end && end <= col.len(), "piece out of bounds");
    // Fig. 5 structure: the cursors only pass over an element after its
    // qualification check, and a swap leaves both cursors in place so the
    // swapped-in elements are re-examined (and checked) on the next round.
    let mut lo = start;
    let mut hi = end;
    while lo < hi {
        let e = col.get(lo);
        col.stats_mut().comparisons += 1;
        if e.key() < pivot {
            // Lines 15–17: correct side already; check and pass.
            if q.contains(e.key()) {
                out.push(e);
                col.stats_mut().materialized += 1;
            }
            lo += 1;
            continue;
        }
        let e = col.get(hi - 1);
        col.stats_mut().comparisons += 1;
        if e.key() >= pivot {
            // Lines 18–20: correct side already; check and pass.
            if q.contains(e.key()) {
                out.push(e);
                col.stats_mut().materialized += 1;
            }
            hi -= 1;
            continue;
        }
        // Line 21: both cursors stuck on wrong-side keys.
        col.swap(lo, hi - 1);
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PoolConfig;

    fn shuffled(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn paged(data: &[u64], frames: usize) -> PagedColumn<u64> {
        PagedColumn::new(
            data,
            PoolConfig {
                page_elems: 64,
                frames,
            },
        )
    }

    #[test]
    fn two_way_matches_contract() {
        for pivot in [0u64, 1, 500, 999, 1000, 2000] {
            let data = shuffled(1000);
            let mut col = paged(&data, 2);
            let p = crack_in_two_paged(&mut col, 0, 1000, pivot);
            let snap = col.snapshot();
            assert!(snap[..p].iter().all(|k| *k < pivot), "pivot {pivot}");
            assert!(snap[p..].iter().all(|k| *k >= pivot), "pivot {pivot}");
            let mut sorted = snap;
            sorted.sort_unstable();
            assert_eq!(sorted, (0..1000).collect::<Vec<_>>(), "permutation");
        }
    }

    #[test]
    fn two_way_inner_piece() {
        let data = shuffled(1000);
        let mut col = paged(&data, 2);
        let p = crack_in_two_paged(&mut col, 200, 700, 500);
        let snap = col.snapshot();
        assert_eq!(snap[..200], data[..200], "outside untouched");
        assert_eq!(snap[700..], data[700..], "outside untouched");
        assert!(snap[200..p].iter().all(|k| *k < 500));
        assert!(snap[p..700].iter().all(|k| *k >= 500));
    }

    #[test]
    fn two_way_empty_piece() {
        let data = shuffled(100);
        let mut col = paged(&data, 2);
        assert_eq!(crack_in_two_paged(&mut col, 40, 40, 50), 40);
    }

    #[test]
    fn three_way_matches_contract() {
        let data = shuffled(1000);
        let mut col = paged(&data, 2);
        let (p, q) = crack_in_three_paged(&mut col, 0, 1000, 300, 600);
        let snap = col.snapshot();
        assert!(snap[..p].iter().all(|k| *k < 300));
        assert!(snap[p..q].iter().all(|k| (300..600).contains(k)));
        assert!(snap[q..].iter().all(|k| *k >= 600));
        assert_eq!(q - p, 300);
    }

    #[test]
    fn three_way_degenerate_equal_bounds() {
        let data = shuffled(500);
        let mut col = paged(&data, 2);
        let (p, q) = crack_in_three_paged(&mut col, 0, 500, 250, 250);
        assert_eq!(p, q);
        let snap = col.snapshot();
        assert!(snap[..p].iter().all(|k| *k < 250));
        assert!(snap[p..].iter().all(|k| *k >= 250));
    }

    #[test]
    fn split_and_materialize_collects_qualifiers() {
        let data = shuffled(1000);
        let mut col = paged(&data, 2);
        let q = QueryRange::new(100, 200);
        let mut out = Vec::new();
        let p = split_and_materialize_paged(&mut col, 0, 1000, 437, q, &mut out);
        let snap = col.snapshot();
        assert!(snap[..p].iter().all(|k| *k < 437));
        assert!(snap[p..].iter().all(|k| *k >= 437));
        let mut got: Vec<u64> = out;
        got.sort_unstable();
        assert_eq!(got, (100..200).collect::<Vec<_>>());
        assert_eq!(col.stats().materialized, 100);
    }

    #[test]
    fn split_and_materialize_pivot_outside_range() {
        // Pivot below every key: boundary lands at start, everything still
        // scanned once for materialization.
        let data = shuffled(256);
        let mut col = paged(&data, 2);
        let mut out = Vec::new();
        let p = split_and_materialize_paged(
            &mut col,
            0,
            256,
            0,
            QueryRange::new(0, 10),
            &mut out,
        );
        assert_eq!(p, 0);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn branchless_two_way_is_bit_identical_to_branchy() {
        // Sizes straddling 2 * KERNEL_BLOCK and pivots at the extremes.
        for n in [0usize, 1, 100, 256, 257, 1000, 4096] {
            for pivot in [0u64, 1, n as u64 / 2, n as u64] {
                let data = shuffled(n as u64);
                let mut branchy = paged(&data, 4);
                let mut branchless = paged(&data, 4);
                let pa = crack_in_two_paged(&mut branchy, 0, n, pivot);
                let pb = crack_in_two_paged_branchless(&mut branchless, 0, n, pivot);
                assert_eq!(pa, pb, "boundary n={n} pivot={pivot}");
                assert_eq!(
                    branchy.snapshot(),
                    branchless.snapshot(),
                    "order n={n} pivot={pivot}"
                );
                assert_eq!(
                    branchy.stats(),
                    branchless.stats(),
                    "stats n={n} pivot={pivot}"
                );
            }
        }
    }

    #[test]
    fn branchless_two_way_inner_piece_leaves_outside_untouched() {
        let data = shuffled(2000);
        let mut col = paged(&data, 4);
        let p = crack_in_two_paged_branchless(&mut col, 300, 1700, 1000);
        let snap = col.snapshot();
        assert_eq!(snap[..300], data[..300]);
        assert_eq!(snap[1700..], data[1700..]);
        assert!(snap[300..p].iter().all(|k| *k < 1000));
        assert!(snap[p..1700].iter().all(|k| *k >= 1000));
    }

    #[test]
    fn branchless_three_way_is_bit_identical_to_branchy() {
        for n in [0usize, 1, 100, 1000] {
            let data = shuffled(n as u64);
            let (a, b) = (n as u64 / 4, 3 * n as u64 / 4);
            let mut branchy = paged(&data, 4);
            let mut branchless = paged(&data, 4);
            let ra = crack_in_three_paged(&mut branchy, 0, n, a, b);
            let rb = crack_in_three_paged_branchless(&mut branchless, 0, n, a, b);
            assert_eq!(ra, rb, "boundaries n={n}");
            assert_eq!(branchy.snapshot(), branchless.snapshot(), "order n={n}");
            assert_eq!(branchy.stats(), branchless.stats(), "stats n={n}");
        }
    }

    #[test]
    fn policy_dispatch_matches_reference() {
        use scrack_partition::KernelPolicy;
        let data = shuffled(4096);
        let mut reference = paged(&data, 8);
        let expect = crack_in_two_paged(&mut reference, 0, 4096, 2048);
        for policy in [
            KernelPolicy::Branchy,
            KernelPolicy::Branchless,
            KernelPolicy::Auto,
        ] {
            let mut col = paged(&data, 8);
            let p = crack_in_two_paged_policy(&mut col, 0, 4096, 2048, policy);
            assert_eq!(p, expect, "{policy}");
            assert_eq!(col.snapshot(), reference.snapshot(), "{policy}");
            let mut col3 = paged(&data, 8);
            let (p1, p2) = crack_in_three_paged_policy(&mut col3, 0, 4096, 1000, 3000, policy);
            assert_eq!((p1, p2), (1000, 3000), "{policy}");
        }
    }

    #[test]
    fn kernels_work_with_two_frames_only() {
        // The worst-case pool: every cursor advance may evict the other
        // cursor's page. Correctness must be unaffected.
        let data = shuffled(4096);
        let mut col = paged(&data, 2);
        let p = crack_in_two_paged(&mut col, 0, 4096, 2048);
        assert_eq!(p, 2048);
        assert!(col.io().faults > 0);
    }
}
