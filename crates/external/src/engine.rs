//! Adaptive-indexing engines over paged storage.
//!
//! The same four strategies the paper's Fig. 2/9 compare in memory —
//! `Scan`, `Sort`, `Crack`, and `MDD1R` (stochastic cracking) — rebuilt
//! over the [`PagedColumn`], so their *page traffic* can be compared: §6's
//! open question is precisely whether cracking's continuous reorganization
//! causes prohibitive write I/O once the column lives on disk.

use crate::column::PagedColumn;
use crate::kernel::{
    crack_in_three_paged_policy, crack_in_two_paged_policy, split_and_materialize_paged,
};
use crate::output::ExternalOutput;
use crate::page::PoolConfig;
use crate::pool::IoStats;
use crate::sort::{external_merge_sort, paged_lower_bound};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_index::CrackerIndex;
use scrack_partition::KernelPolicy;
use scrack_types::{Element, QueryRange, Stats};

/// A range-select engine over disk-resident data.
///
/// The counterpart of `scrack_core::Engine` for paged storage; `data()` is
/// replaced by [`column_mut`](PagedEngine::column_mut) (views must be
/// resolved through the pool) and [`io`](PagedEngine::io) exposes the page
/// traffic alongside the §3 tuple counters.
pub trait PagedEngine<E: Element> {
    /// Display name matching the in-memory figure labels.
    fn name(&self) -> String;

    /// Answers `[q.low, q.high)`, reorganizing pages as a side effect.
    fn select(&mut self, q: QueryRange) -> ExternalOutput<E>;

    /// The paged column backing result views.
    fn column_mut(&mut self) -> &mut PagedColumn<E>;

    /// Page-transfer counters.
    fn io(&self) -> IoStats;

    /// Tuple-level cost counters.
    fn stats(&self) -> Stats;

    /// Zeroes both counter sets.
    fn reset_counters(&mut self);
}

/// The strategies of the external comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagedEngineKind {
    /// Full page-wise scan with result materialization.
    Scan,
    /// External merge sort on the first query, paged binary search after.
    Sort,
    /// Original cracking over paged storage.
    Crack,
    /// Stochastic cracking (MDD1R) over paged storage.
    Mdd1r,
    /// Progressive stochastic cracking with the given swap budget in
    /// percent — the §6 write-I/O throttle.
    Progressive(u32),
}

impl PagedEngineKind {
    /// Figure-style label.
    pub fn label(&self) -> String {
        match self {
            PagedEngineKind::Scan => "Scan".into(),
            PagedEngineKind::Sort => "Sort".into(),
            PagedEngineKind::Crack => "Crack".into(),
            PagedEngineKind::Mdd1r => "MDD1R".into(),
            PagedEngineKind::Progressive(pct) => format!("P{pct}%"),
        }
    }

    /// The four basic strategies, in the order the reports print them.
    pub fn all() -> [PagedEngineKind; 4] {
        [
            PagedEngineKind::Scan,
            PagedEngineKind::Sort,
            PagedEngineKind::Crack,
            PagedEngineKind::Mdd1r,
        ]
    }

    /// The basic strategies plus the progressive budgets the extension
    /// experiment sweeps.
    pub fn all_with_progressive() -> Vec<PagedEngineKind> {
        let mut v: Vec<PagedEngineKind> = Self::all().to_vec();
        v.extend([PagedEngineKind::Progressive(1), PagedEngineKind::Progressive(10)]);
        v
    }
}

/// Builds a boxed paged engine of the given kind over `data`.
pub fn build_paged_engine<E: Element>(
    kind: PagedEngineKind,
    data: &[E],
    config: PoolConfig,
    seed: u64,
) -> Box<dyn PagedEngine<E>> {
    build_paged_engine_with_kernel(kind, data, config, seed, KernelPolicy::Branchy)
}

/// [`build_paged_engine`] with an explicit reorganization-kernel policy.
///
/// Tuple-level results and `Stats` are identical under every policy; only
/// the page access order of the partition passes changes, so the
/// branchless kernels are opt-in on the paged path (they pay off once the
/// working set is pool-resident and the pass is CPU-bound). The policy
/// currently drives the partition-only engine (`Crack`); the fused
/// materializing passes of `MDD1R`/progressive remain single-variant,
/// exactly as in memory.
pub fn build_paged_engine_with_kernel<E: Element>(
    kind: PagedEngineKind,
    data: &[E],
    config: PoolConfig,
    seed: u64,
    kernel: KernelPolicy,
) -> Box<dyn PagedEngine<E>> {
    match kind {
        PagedEngineKind::Scan => Box::new(ExternalScanEngine::new(data, config)),
        PagedEngineKind::Sort => Box::new(ExternalSortEngine::new(data, config)),
        PagedEngineKind::Crack => {
            Box::new(ExternalCrackEngine::new(data, config).with_kernel(kernel))
        }
        PagedEngineKind::Mdd1r => Box::new(ExternalMdd1rEngine::new(data, config, seed)),
        PagedEngineKind::Progressive(pct) => Box::new(
            crate::progressive::ExternalPmdd1rEngine::new(data, config, seed, f64::from(pct)),
        ),
    }
}

// ---------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------

/// Full scan: every query reads every page and materializes qualifiers.
/// Never writes — the read-only floor the adaptive engines are judged
/// against.
#[derive(Debug, Clone)]
pub struct ExternalScanEngine<E: Element> {
    col: PagedColumn<E>,
}

impl<E: Element> ExternalScanEngine<E> {
    /// Lays `data` out on pages under `config`.
    pub fn new(data: &[E], config: PoolConfig) -> Self {
        Self {
            col: PagedColumn::new(data, config),
        }
    }
}

impl<E: Element> PagedEngine<E> for ExternalScanEngine<E> {
    fn name(&self) -> String {
        "Scan".into()
    }

    fn select(&mut self, q: QueryRange) -> ExternalOutput<E> {
        self.col.stats_mut().queries += 1;
        let mut out = ExternalOutput::empty();
        if q.is_empty() {
            return out;
        }
        let len = self.col.len();
        let mut mat = std::mem::take(out.mat_mut());
        let mut materialized = 0u64;
        self.col.for_range(0, len, |e| {
            if q.contains(e.key()) {
                mat.push(e);
                materialized += 1;
            }
        });
        self.col.stats_mut().materialized += materialized;
        *out.mat_mut() = mat;
        out
    }

    fn column_mut(&mut self) -> &mut PagedColumn<E> {
        &mut self.col
    }

    fn io(&self) -> IoStats {
        self.col.io()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_counters(&mut self) {
        self.col.reset_counters();
    }
}

// ---------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------

/// Full indexing: the first query pays an external merge sort, every
/// query answers by paged binary search and returns a view.
#[derive(Debug, Clone)]
pub struct ExternalSortEngine<E: Element> {
    col: PagedColumn<E>,
    sorted: bool,
}

impl<E: Element> ExternalSortEngine<E> {
    /// Lays `data` out on pages under `config`; sorting is deferred to the
    /// first query, as in the paper's `Sort` baseline.
    pub fn new(data: &[E], config: PoolConfig) -> Self {
        Self {
            col: PagedColumn::new(data, config),
            sorted: false,
        }
    }
}

impl<E: Element> PagedEngine<E> for ExternalSortEngine<E> {
    fn name(&self) -> String {
        "Sort".into()
    }

    fn select(&mut self, q: QueryRange) -> ExternalOutput<E> {
        self.col.stats_mut().queries += 1;
        if !self.sorted {
            external_merge_sort(&mut self.col);
            self.sorted = true;
        }
        let mut out = ExternalOutput::empty();
        if q.is_empty() {
            return out;
        }
        let lo = paged_lower_bound(&mut self.col, q.low);
        let hi = paged_lower_bound(&mut self.col, q.high);
        out.push_view(lo, hi);
        out
    }

    fn column_mut(&mut self) -> &mut PagedColumn<E> {
        &mut self.col
    }

    fn io(&self) -> IoStats {
        self.col.io()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_counters(&mut self) {
        self.col.reset_counters();
    }
}

// ---------------------------------------------------------------------
// Crack
// ---------------------------------------------------------------------

/// Original database cracking over paged storage: the in-memory cracker
/// index (it is tiny) guides two-way/three-way partition passes over
/// pages. Every crack dirties the pages it reorders — the write traffic
/// §6 worries about.
#[derive(Debug, Clone)]
pub struct ExternalCrackEngine<E: Element> {
    col: PagedColumn<E>,
    index: CrackerIndex<()>,
    kernel: KernelPolicy,
}

impl<E: Element> ExternalCrackEngine<E> {
    /// Lays `data` out on pages under `config`. Partition passes default
    /// to the branchy kernels (the paged engines' page-traffic baseline);
    /// opt into the predicated ones via [`with_kernel`](Self::with_kernel).
    pub fn new(data: &[E], config: PoolConfig) -> Self {
        let len = data.len();
        Self {
            col: PagedColumn::new(data, config),
            index: CrackerIndex::new(len),
            kernel: KernelPolicy::Branchy,
        }
    }

    /// Selects the reorganization-kernel policy (results are identical
    /// under every policy; see `kernel.rs`).
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.kernel = kernel;
        self
    }

    /// The cracker index (tests).
    pub fn index(&self) -> &CrackerIndex<()> {
        &self.index
    }

    /// Cracks on `key` and returns its final position, reusing an existing
    /// boundary when one matches.
    fn crack_on(&mut self, key: u64) -> usize {
        let piece = self.index.piece_containing(key);
        if piece.lo_key == Some(key) {
            return piece.start;
        }
        let pos =
            crack_in_two_paged_policy(&mut self.col, piece.start, piece.end, key, self.kernel);
        self.index.add_crack(key, pos);
        self.col.stats_mut().cracks += 1;
        pos
    }
}

impl<E: Element> PagedEngine<E> for ExternalCrackEngine<E> {
    fn name(&self) -> String {
        "Crack".into()
    }

    fn select(&mut self, q: QueryRange) -> ExternalOutput<E> {
        self.col.stats_mut().queries += 1;
        let mut out = ExternalOutput::empty();
        if q.is_empty() {
            return out;
        }
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        // Both bounds strictly inside one piece: single three-way pass,
        // as the in-memory select does.
        if p1 == p2 && p1.lo_key != Some(q.low) && p1.lo_key != Some(q.high) {
            let (lo, hi) = crack_in_three_paged_policy(
                &mut self.col,
                p1.start,
                p1.end,
                q.low,
                q.high,
                self.kernel,
            );
            self.index.add_crack(q.low, lo);
            self.index.add_crack(q.high, hi);
            self.col.stats_mut().cracks += 2;
            out.push_view(lo, hi);
            return out;
        }
        let lo = self.crack_on(q.low);
        let hi = self.crack_on(q.high);
        out.push_view(lo, hi);
        out
    }

    fn column_mut(&mut self) -> &mut PagedColumn<E> {
        &mut self.col
    }

    fn io(&self) -> IoStats {
        self.col.io()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_counters(&mut self) {
        self.col.reset_counters();
    }
}

// ---------------------------------------------------------------------
// MDD1R (stochastic cracking)
// ---------------------------------------------------------------------

/// Stochastic cracking (MDD1R) over paged storage: one random-pivot
/// partition per end piece, fused with fringe materialization; fully
/// covered middles are returned as views.
#[derive(Debug, Clone)]
pub struct ExternalMdd1rEngine<E: Element> {
    col: PagedColumn<E>,
    index: CrackerIndex<()>,
    rng: SmallRng,
}

impl<E: Element> ExternalMdd1rEngine<E> {
    /// Lays `data` out on pages under `config`; `seed` drives pivot
    /// choice.
    pub fn new(data: &[E], config: PoolConfig, seed: u64) -> Self {
        let len = data.len();
        Self {
            col: PagedColumn::new(data, config),
            index: CrackerIndex::new(len),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The cracker index (tests).
    pub fn index(&self) -> &CrackerIndex<()> {
        &self.index
    }

    /// One random-pivot split-and-materialize over `[start, end)`,
    /// registering the crack. Returns nothing: qualifying fringe tuples
    /// land in `out`.
    fn fringe(&mut self, start: usize, end: usize, q: QueryRange, out: &mut ExternalOutput<E>) {
        if start >= end {
            return;
        }
        let pivot = self
            .col
            .peek(start + self.rng.gen_range(0..end - start))
            .key();
        let pos = split_and_materialize_paged(&mut self.col, start, end, pivot, q, out.mat_mut());
        if pos > start && pos < end {
            self.index.add_crack(pivot, pos);
            self.col.stats_mut().cracks += 1;
        }
    }
}

impl<E: Element> PagedEngine<E> for ExternalMdd1rEngine<E> {
    fn name(&self) -> String {
        "MDD1R".into()
    }

    fn select(&mut self, q: QueryRange) -> ExternalOutput<E> {
        self.col.stats_mut().queries += 1;
        let mut out = ExternalOutput::empty();
        if q.is_empty() {
            return out;
        }
        let p1 = self.index.piece_containing(q.low);
        let p2 = self.index.piece_containing(q.high);
        if p1 == p2 {
            if p1.lo_key == Some(q.low) && p1.hi_key == Some(q.high) {
                // Exact piece match: pure view, no crack ("we avoid
                // materialization altogether when a query exactly matches
                // a piece", §4).
                out.push_view(p1.start, p1.end);
            } else {
                self.fringe(p1.start, p1.end, q, &mut out);
            }
            return out;
        }
        // Left fringe: absorbed into the view if `q.low` is already a
        // boundary.
        let view_start = if p1.lo_key == Some(q.low) {
            p1.start
        } else {
            self.fringe(p1.start, p1.end, q, &mut out);
            p1.end
        };
        // Right fringe: piece starting at `q.high` holds no qualifiers.
        let view_end = if p2.lo_key == Some(q.high) {
            p2.start
        } else {
            self.fringe(p2.start, p2.end, q, &mut out);
            p2.start
        };
        out.push_view(view_start, view_end);
        out
    }

    fn column_mut(&mut self) -> &mut PagedColumn<E> {
        &mut self.col
    }

    fn io(&self) -> IoStats {
        self.col.io()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_counters(&mut self) {
        self.col.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn config() -> PoolConfig {
        PoolConfig {
            page_elems: 64,
            frames: 4,
        }
    }

    #[test]
    fn all_engines_answer_exactly() {
        let n = 4096u64;
        let data = shuffled(n);
        for kind in PagedEngineKind::all() {
            let mut engine = build_paged_engine(kind, &data, config(), 7);
            for i in 0..50u64 {
                let low = (i * 79) % (n - 50);
                let q = QueryRange::new(low, low + 41);
                let out = engine.select(q);
                let expect = data.iter().filter(|k| q.contains(**k)).count();
                assert_eq!(out.len(), expect, "{} query {i}", kind.label());
                let sum: u64 = data
                    .iter()
                    .filter(|k| q.contains(**k))
                    .fold(0u64, |s, k| s.wrapping_add(*k));
                assert_eq!(
                    out.key_checksum(engine.column_mut()),
                    sum,
                    "{} query {i}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn scan_never_writes() {
        let data = shuffled(2048);
        let mut engine = ExternalScanEngine::new(&data, config());
        for i in 0..10u64 {
            engine.select(QueryRange::new(i * 100, i * 100 + 50));
        }
        assert_eq!(engine.io().writes, 0);
        assert_eq!(engine.io().reads, 10 * 2048 / 64, "every page every query");
    }

    #[test]
    fn sort_pays_once_then_reads_loglike() {
        let data = shuffled(4096);
        let mut engine = ExternalSortEngine::new(&data, config());
        engine.select(QueryRange::new(0, 10));
        let after_first = engine.io().total_io();
        for i in 1..20u64 {
            engine.select(QueryRange::new(i * 37, i * 37 + 10));
        }
        let later = engine.io().total_io() - after_first;
        assert!(
            later < after_first / 2,
            "binary searches ({later}) must be far cheaper than the sort ({after_first})"
        );
    }

    #[test]
    fn crack_write_traffic_decays_on_random_workload() {
        let n = 8192u64;
        let data = shuffled(n);
        let mut engine = ExternalCrackEngine::new(&data, config());
        let mut first_half = 0;
        let mut second_half = 0;
        let mut state = 0xABCDu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..200 {
            let before = engine.io().writes;
            let low = rand() % (n - 20);
            engine.select(QueryRange::new(low, low + 10));
            let delta = engine.io().writes - before;
            if i < 100 {
                first_half += delta;
            } else {
                second_half += delta;
            }
        }
        assert!(
            second_half < first_half,
            "cracking write traffic should decay: {first_half} then {second_half}"
        );
    }

    #[test]
    fn mdd1r_registers_cracks_and_converges() {
        let n = 8192u64;
        let data = shuffled(n);
        let mut engine = ExternalMdd1rEngine::new(&data, config(), 3);
        for i in 0..64u64 {
            let low = (i * 127) % (n - 20);
            engine.select(QueryRange::new(low, low + 10));
        }
        assert!(engine.index().crack_count() > 16, "cracks accumulate");
    }

    #[test]
    fn crack_exact_repeat_query_is_pure_view() {
        let data = shuffled(2048);
        let mut engine = ExternalCrackEngine::new(&data, config());
        let q = QueryRange::new(100, 300);
        engine.select(q);
        let io_before = engine.io();
        let out = engine.select(q);
        assert_eq!(out.len(), 200);
        let delta = engine.io().since(&io_before);
        assert_eq!(delta.writes, 0, "repeat query must not reorganize");
    }
}
