//! Element-level access to a column stored across pages.

use crate::page::{DiskStore, PageId, PoolConfig};
use crate::pool::{BufferPool, IoStats};
use scrack_types::{Element, Stats};

/// A dense column whose elements live on disk pages behind a buffer pool.
///
/// This is the external-memory counterpart of the in-memory `Vec<E>`
/// column: the same cracking kernels run over it, but every element access
/// may fault a page in (and evict — possibly write back — another). The
/// [`Stats`] counters keep the paper's §3 tuple-level accounting; the
/// [`IoStats`] counters add the page-level traffic that §6's disk-based
/// processing question is about.
#[derive(Debug, Clone)]
pub struct PagedColumn<E: Element> {
    pool: BufferPool<E>,
    page_elems: usize,
    len: usize,
    stats: Stats,
}

impl<E: Element> PagedColumn<E> {
    /// Lays `data` out on simulated disk pages under `config`.
    pub fn new(data: &[E], config: PoolConfig) -> Self {
        let disk = DiskStore::new(data, config.page_elems);
        let len = disk.len();
        Self {
            pool: BufferPool::new(disk, config),
            page_elems: config.page_elems,
            len,
            stats: Stats::default(),
        }
    }

    /// Logical number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page-level I/O counters.
    pub fn io(&self) -> IoStats {
        self.pool.io()
    }

    /// Tuple-level cost counters (shared convention with the in-memory
    /// engines).
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Mutable access to the tuple-level counters, for engines layering
    /// their own accounting on top.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Resets both counter sets.
    pub fn reset_counters(&mut self) {
        self.stats.reset();
        self.pool.reset_io();
    }

    /// Flushes dirty pages and empties the pool (cold-cache state).
    pub fn drop_cache(&mut self) {
        self.pool.clear();
    }

    /// The buffer pool (diagnostics and tests).
    pub fn pool(&self) -> &BufferPool<E> {
        &self.pool
    }

    /// Mutable pool access for operations that stage I/O outside the
    /// frame set (external sort).
    pub(crate) fn pool_mut(&mut self) -> &mut BufferPool<E> {
        &mut self.pool
    }

    /// Elements per page.
    pub fn page_elems(&self) -> usize {
        self.page_elems
    }

    #[inline]
    fn locate(&self, i: usize) -> (PageId, usize) {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        (i / self.page_elems, i % self.page_elems)
    }

    /// Reads element `i` (counts one touched tuple).
    #[inline]
    pub fn get(&mut self, i: usize) -> E {
        let (page, slot) = self.locate(i);
        self.stats.touched += 1;
        self.pool.page(page)[slot]
    }

    /// Reads element `i` without cost accounting (for result assembly,
    /// which the §3 convention does not count as reorganization work).
    #[inline]
    pub fn peek(&mut self, i: usize) -> E {
        let (page, slot) = self.locate(i);
        self.pool.page(page)[slot]
    }

    /// Overwrites element `i`, dirtying its page.
    #[inline]
    pub fn set(&mut self, i: usize, v: E) {
        let (page, slot) = self.locate(i);
        self.pool.page_mut(page)[slot] = v;
    }

    /// Swaps elements `i` and `j` (counts one swap; both pages dirty).
    pub fn swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        self.stats.swaps += 1;
        let a = self.peek(i);
        let b = self.peek(j);
        self.set(i, b);
        self.set(j, a);
    }

    /// Applies `f` to every element of `[start, end)`, page-wise, e.g.
    /// for scans and result materialization. Counts `end - start` touched
    /// tuples.
    pub fn for_range(&mut self, start: usize, end: usize, mut f: impl FnMut(E)) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        self.stats.touched += (end - start) as u64;
        let mut i = start;
        while i < end {
            let (page, slot) = self.locate(i);
            let upto = ((page + 1) * self.page_elems).min(end);
            let take = upto - i;
            for &e in &self.pool.page(page)[slot..slot + take] {
                f(e);
            }
            i = upto;
        }
    }

    /// Pins the page holding element `i` (cursor stability during
    /// two-ended partition passes).
    pub fn pin_page_of(&mut self, i: usize) -> PageId {
        let (page, _) = self.locate(i);
        self.pool.pin(page);
        page
    }

    /// Releases a pin taken by [`pin_page_of`](Self::pin_page_of).
    pub fn unpin_page(&mut self, page: PageId) {
        self.pool.unpin(page);
    }

    /// Flushes every dirty page to disk.
    pub fn flush(&mut self) {
        self.pool.flush_all();
    }

    /// Reassembles the logical array from disk after a flush
    /// (test/diagnostic helper).
    pub fn snapshot(&mut self) -> Vec<E> {
        self.flush();
        self.pool.disk().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: u64, page_elems: usize, frames: usize) -> PagedColumn<u64> {
        let data: Vec<u64> = (0..n).collect();
        PagedColumn::new(&data, PoolConfig { page_elems, frames })
    }

    #[test]
    fn get_set_swap_roundtrip() {
        let mut c = column(1000, 128, 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(999), 999);
        c.set(500, 42);
        assert_eq!(c.get(500), 42);
        c.swap(0, 999);
        assert_eq!(c.get(0), 999);
        assert_eq!(c.get(999), 0);
        assert_eq!(c.stats().swaps, 1);
    }

    #[test]
    fn for_range_crosses_pages() {
        let mut c = column(1000, 128, 2);
        let mut seen = Vec::new();
        c.for_range(120, 270, |e| seen.push(e));
        assert_eq!(seen, (120..270).collect::<Vec<u64>>());
        assert_eq!(c.stats().touched, 150);
    }

    #[test]
    fn for_range_empty_and_full() {
        let mut c = column(256, 128, 2);
        let mut count = 0;
        c.for_range(10, 10, |_| count += 1);
        assert_eq!(count, 0);
        c.for_range(0, 256, |_| count += 1);
        assert_eq!(count, 256);
    }

    #[test]
    fn snapshot_reflects_mutations_across_evictions() {
        let mut c = column(4096, 128, 2);
        for i in 0..4096 {
            c.set(i, (4095 - i) as u64);
        }
        let snap = c.snapshot();
        assert_eq!(snap, (0..4096).rev().collect::<Vec<u64>>());
    }

    #[test]
    fn tiny_pool_still_correct_under_random_swaps() {
        let mut c = column(2048, 64, 2);
        let mut model: Vec<u64> = (0..2048).collect();
        let mut x = 0x12345678u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let i = (rand() % 2048) as usize;
            let j = (rand() % 2048) as usize;
            c.swap(i, j);
            model.swap(i, j);
        }
        assert_eq!(c.snapshot(), model);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_range_rejected() {
        let mut c = column(100, 64, 2);
        c.for_range(0, 101, |_| {});
    }

    #[test]
    fn drop_cache_forces_cold_faults() {
        let mut c = column(1024, 128, 8);
        c.for_range(0, 1024, |_| {});
        let warm = c.io();
        assert_eq!(warm.faults, 8);
        c.drop_cache();
        c.for_range(0, 1024, |_| {});
        assert_eq!(c.io().faults, 16, "cold rescan faults every page again");
    }
}
