//! External merge sort: the `Sort` baseline's disk-resident counterpart.
//!
//! Phase 1 generates sorted runs of `frames × page_elems` elements in
//! place (each run is read through the pool, sorted in memory, written
//! back). Phase 2 merges up to `frames − 1` runs at a time — one cursor
//! page per run stays hot in the pool — streaming the output past the pool
//! into a fresh disk area, whose writes are charged explicitly. This is
//! the textbook two-phase multiway merge sort, so its I/O totals provide
//! the classic reference point: `2 × pages × (1 + ⌈log_fanin(runs)⌉)`
//! transfers.

use crate::column::PagedColumn;
use crate::page::DiskStore;
use scrack_types::Element;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What the sort did, for reports and I/O sanity checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortReport {
    /// Sorted runs generated in phase 1.
    pub initial_runs: usize,
    /// Merge passes performed in phase 2 (0 when one run sufficed).
    pub merge_passes: usize,
    /// Fan-in used by the merge passes.
    pub fan_in: usize,
}

/// Sorts the column ascending by key.
pub fn external_merge_sort<E: Element>(col: &mut PagedColumn<E>) -> SortReport {
    let n = col.len();
    let page_elems = col.page_elems();
    let budget = col.pool().frame_count() * page_elems;
    let fan_in = col.pool().frame_count().saturating_sub(1).max(2);
    if n <= 1 {
        return SortReport {
            initial_runs: n,
            merge_passes: 0,
            fan_in,
        };
    }

    // Phase 1: in-place run generation.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut buf: Vec<E> = Vec::with_capacity(budget.min(n));
    let mut start = 0;
    while start < n {
        let end = (start + budget).min(n);
        buf.clear();
        col.for_range(start, end, |e| buf.push(e));
        buf.sort_unstable_by_key(Element::key);
        for (i, e) in buf.iter().enumerate() {
            col.set(start + i, *e);
        }
        col.stats_mut().touched += (end - start) as u64; // write-back pass
        runs.push((start, end));
        start = end;
    }
    col.flush();
    let initial_runs = runs.len();

    // Phase 2: repeated fan-in-way merges until a single run remains.
    let mut merge_passes = 0;
    while runs.len() > 1 {
        merge_passes += 1;
        let mut next_runs: Vec<(usize, usize)> = Vec::new();
        let mut out_pages: Vec<Box<[E]>> = Vec::with_capacity(col.pool().disk().page_count());
        let mut staging: Vec<E> = Vec::with_capacity(page_elems);
        for group in runs.chunks(fan_in) {
            let group_start = group[0].0;
            let group_end = group.last().expect("non-empty group").1;
            merge_group(col, group, page_elems, &mut staging, &mut out_pages);
            next_runs.push((group_start, group_end));
        }
        // Pad and seal the final page.
        if !staging.is_empty() {
            let pad = *staging.last().expect("non-empty staging");
            staging.resize(page_elems, pad);
            out_pages.push(staging.clone().into_boxed_slice());
            staging.clear();
            col.pool_mut().charge(0, 1);
        }
        let disk = DiskStore::from_pages(out_pages, page_elems, n);
        col.pool_mut().replace_disk(disk);
        runs = next_runs;
    }

    SortReport {
        initial_runs,
        merge_passes,
        fan_in,
    }
}

/// Merges the adjacent runs of `group`, appending output elements to the
/// staging buffer and sealing full pages into `out_pages` (one charged
/// write each). Reads go through the pool: one hot cursor page per run.
fn merge_group<E: Element>(
    col: &mut PagedColumn<E>,
    group: &[(usize, usize)],
    page_elems: usize,
    staging: &mut Vec<E>,
    out_pages: &mut Vec<Box<[E]>>,
) {
    let mut cursors: Vec<usize> = group.iter().map(|(s, _)| *s).collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(group.len());
    for (run, &(s, e)) in group.iter().enumerate() {
        if s < e {
            heap.push(Reverse((col.peek(s).key(), run)));
        }
    }
    while let Some(Reverse((_, run))) = heap.pop() {
        let pos = cursors[run];
        let e = col.peek(pos);
        col.stats_mut().touched += 1;
        staging.push(e);
        if staging.len() == page_elems {
            out_pages.push(staging.clone().into_boxed_slice());
            staging.clear();
            col.pool_mut().charge(0, 1);
        }
        cursors[run] += 1;
        if cursors[run] < group[run].1 {
            heap.push(Reverse((col.peek(cursors[run]).key(), run)));
        }
    }
}

/// Position of the first element with `key >= target` in a column sorted
/// ascending — the probe the external `Sort` engine answers selects with.
/// Touches `O(log₂ n)` elements (and so at most that many pages).
pub(crate) fn paged_lower_bound<E: Element>(col: &mut PagedColumn<E>, target: u64) -> usize {
    let mut lo = 0;
    let mut hi = col.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        col.stats_mut().touched += 1;
        col.stats_mut().comparisons += 1;
        if col.peek(mid).key() < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PoolConfig;

    fn shuffled(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn paged(data: &[u64], page_elems: usize, frames: usize) -> PagedColumn<u64> {
        PagedColumn::new(data, PoolConfig { page_elems, frames })
    }

    #[test]
    fn sorts_with_single_run() {
        // Pool big enough for one run: degenerate to in-memory sort.
        let data = shuffled(1000);
        let mut col = paged(&data, 128, 16);
        let report = external_merge_sort(&mut col);
        assert_eq!(report.initial_runs, 1);
        assert_eq!(report.merge_passes, 0);
        assert_eq!(col.snapshot(), (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_with_one_merge_pass() {
        // 64 pages of data, 8 frames → 8 runs, fan-in 7 → 2 passes.
        let data = shuffled(4096);
        let mut col = paged(&data, 64, 8);
        let report = external_merge_sort(&mut col);
        assert_eq!(report.initial_runs, 8);
        assert!(report.merge_passes >= 1);
        assert_eq!(col.snapshot(), (0..4096).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_with_minimum_pool() {
        // Two frames: runs of 2 pages, fan-in 2 → many passes; still exact.
        let data = shuffled(2048);
        let mut col = paged(&data, 64, 2);
        let report = external_merge_sort(&mut col);
        assert_eq!(report.initial_runs, 16);
        assert_eq!(report.fan_in, 2);
        assert_eq!(report.merge_passes, 4, "⌈log₂ 16⌉ passes");
        assert_eq!(col.snapshot(), (0..2048).collect::<Vec<_>>());
    }

    #[test]
    fn sort_is_stable_under_duplicates() {
        let data: Vec<u64> = (0..1024).map(|i| i % 7).collect();
        let mut col = paged(&data, 64, 4);
        external_merge_sort(&mut col);
        let snap = col.snapshot();
        assert!(snap.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(snap, expect);
    }

    #[test]
    fn merge_pass_io_is_linear_in_pages() {
        // One full merge pass should read every page once and write every
        // page once (plus run-generation traffic).
        let n = 4096usize;
        let page = 64usize;
        let pages = n / page;
        let data = shuffled(n as u64);
        let mut col = paged(&data, page, 8);
        let report = external_merge_sort(&mut col);
        let io = col.io();
        // Run generation: read all + write all = 2 × pages. Each merge
        // pass: read all + write all = 2 × pages. Small slack for cursor
        // page re-faults under clock pressure.
        let passes = 1 + report.merge_passes as u64;
        let expect = 2 * pages as u64 * passes;
        assert!(
            io.total_io() >= expect && io.total_io() <= expect + expect / 4,
            "io {io:?} vs expected ~{expect}"
        );
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        let data: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let mut col = paged(&data, 128, 4);
        for target in [0u64, 1, 2, 999, 1000, 1998, 1999, 5000] {
            let expect = data.partition_point(|k| *k < target);
            assert_eq!(paged_lower_bound(&mut col, target), expect, "{target}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut col = paged(&[], 64, 2);
        let r = external_merge_sort(&mut col);
        assert_eq!(r.initial_runs, 0);
        let mut col1 = paged(&[5], 64, 2);
        let r1 = external_merge_sort(&mut col1);
        assert_eq!(r1.initial_runs, 1);
        assert_eq!(col1.snapshot(), vec![5]);
    }
}
