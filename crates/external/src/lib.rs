//! Disk-based cracking simulation — the paper's §6 disk-processing
//! future work, built as a real storage substrate.
//!
//! §6 poses the question: "Disk-based processing poses a challenge because
//! the continuous reorganization may cause continuous writes to disk; we
//! need to examine how much reorganization we can afford per query without
//! increasing I/O costs prohibitively." Answering it requires measuring
//! page traffic, so this crate provides:
//!
//! * [`DiskStore`] — the simulated disk: the authoritative page array;
//! * [`BufferPool`] — a fixed set of frames with clock-sweep replacement,
//!   pin counts, dirty bits and exact [`IoStats`] accounting;
//! * [`PagedColumn`] — element-level column access through the pool;
//! * [`kernel`] — the cracking kernels (`crack_in_two`, `crack_in_three`,
//!   `split_and_materialize`) re-expressed over paged storage;
//! * [`external_merge_sort`] — run generation + k-way merge, the external
//!   counterpart of the paper's `Sort` baseline;
//! * [`engine`] — `Scan` / `Sort` / `Crack` / `MDD1R` engines over paged
//!   storage, reporting both the §3 tuple counters and page I/O.
//!
//! What we model is disk *traffic*, not disk latency: all "I/O" is memory
//! copies, but every page transfer is counted, which is the quantity §6's
//! question is about. The experiment in `examples/external_cracking.rs`
//! reports reads/writes per strategy and buffer-pool size.
//!
//! # Example
//!
//! ```
//! use scrack_external::{build_paged_engine, PagedEngineKind, PoolConfig};
//! use scrack_types::QueryRange;
//!
//! let data: Vec<u64> = (0..100_000).rev().collect();
//! // A pool holding 10% of the column's pages.
//! let config = PoolConfig::with_memory_fraction(data.len(), 0.10, 4096);
//! let mut engine = build_paged_engine(PagedEngineKind::Mdd1r, &data, config, 7);
//! let out = engine.select(QueryRange::new(500, 600));
//! assert_eq!(out.len(), 100);
//! // Page traffic is fully accounted.
//! let io = engine.io();
//! assert!(io.reads > 0 && io.writes <= io.reads);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod column;
pub mod engine;
pub mod kernel;
mod output;
mod page;
mod pool;
pub mod progressive;
mod sort;

pub use column::PagedColumn;
pub use engine::{
    build_paged_engine, build_paged_engine_with_kernel, PagedEngine, PagedEngineKind,
};
pub use output::ExternalOutput;
pub use page::{DiskStore, PageId, PoolConfig};
pub use pool::{BufferPool, IoStats};
pub use progressive::{ExtPieceState, ExternalPmdd1rEngine};
// The kernel-policy knob, shared verbatim with the in-memory layer.
pub use scrack_partition::KernelPolicy;
pub use sort::{external_merge_sort, SortReport};
