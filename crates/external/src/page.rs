//! Page geometry and the simulated disk.

use scrack_types::Element;

/// Identifier of a disk page: dense indices `0..page_count`.
pub type PageId = usize;

/// Geometry and capacity of the paged storage layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Elements per page. The default (4096 × 8-byte keys = 32 KiB)
    /// matches a common database page multiple.
    pub page_elems: usize,
    /// Number of in-memory frames the buffer pool may hold.
    pub frames: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            page_elems: 4096,
            frames: 64,
        }
    }
}

impl PoolConfig {
    /// A config sized so the pool holds `fraction` of `n` elements
    /// (at least two frames — the minimum any two-cursor partition pass
    /// needs to make progress without thrashing on every element).
    pub fn with_memory_fraction(n: usize, fraction: f64, page_elems: usize) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
        assert!(page_elems > 0, "pages must hold at least one element");
        let total_pages = n.div_ceil(page_elems).max(1);
        let frames = ((total_pages as f64 * fraction).ceil() as usize).clamp(2, total_pages.max(2));
        Self { page_elems, frames }
    }
}

/// The simulated disk: the authoritative copy of every page.
///
/// Reads and writes are plain memory copies — what we model is not disk
/// *latency* but disk *traffic*: the [`IoStats`](crate::IoStats) counters
/// record every page transfer, which is the quantity §6's disk-processing
/// question is about ("how much reorganization we can afford per query
/// without increasing I/O costs prohibitively").
#[derive(Debug, Clone)]
pub struct DiskStore<E: Element> {
    pages: Vec<Box<[E]>>,
    page_elems: usize,
    len: usize,
}

impl<E: Element> DiskStore<E> {
    /// Lays `data` out into pages of `page_elems` elements. The final page
    /// may be partially filled; its tail is padded with copies of the last
    /// element and never addressed (all element indices are bounds-checked
    /// against the logical length).
    pub fn new(data: &[E], page_elems: usize) -> Self {
        assert!(page_elems > 0, "pages must hold at least one element");
        let len = data.len();
        let mut pages = Vec::with_capacity(len.div_ceil(page_elems));
        for chunk in data.chunks(page_elems) {
            let mut page = Vec::with_capacity(page_elems);
            page.extend_from_slice(chunk);
            // Pad the last page so every frame swap is size-uniform.
            if let Some(&last) = chunk.last() {
                page.resize(page_elems, last);
            }
            pages.push(page.into_boxed_slice());
        }
        if pages.is_empty() {
            pages.push(vec![].into_boxed_slice());
        }
        Self {
            pages,
            page_elems,
            len,
        }
    }

    /// Logical number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per page.
    pub fn page_elems(&self) -> usize {
        self.page_elems
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Copies a page's contents into `buf` (a disk read).
    pub fn read_page(&self, id: PageId, buf: &mut [E]) {
        buf.copy_from_slice(&self.pages[id]);
    }

    /// Overwrites a page from `buf` (a disk write).
    pub fn write_page(&mut self, id: PageId, buf: &[E]) {
        self.pages[id].copy_from_slice(buf);
    }

    /// Builds a store directly from staged pages (external sort's merge
    /// output). The caller guarantees each page holds `page_elems`
    /// elements and that the first `len` logical slots are meaningful.
    pub(crate) fn from_pages(pages: Vec<Box<[E]>>, page_elems: usize, len: usize) -> Self {
        debug_assert!(pages.iter().all(|p| p.len() == page_elems));
        debug_assert!(pages.len() * page_elems >= len);
        Self {
            pages,
            page_elems,
            len,
        }
    }

    /// Reassembles the full logical array (test/diagnostic helper; not an
    /// engine path — engines must go through the buffer pool).
    pub fn snapshot(&self) -> Vec<E> {
        let mut out = Vec::with_capacity(self.len);
        for page in &self.pages {
            let take = (self.len - out.len()).min(page.len());
            out.extend_from_slice(&page[..take]);
            if out.len() == self.len {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_roundtrip() {
        let data: Vec<u64> = (0..1000).collect();
        let disk = DiskStore::new(&data, 128);
        assert_eq!(disk.page_count(), 8);
        assert_eq!(disk.len(), 1000);
        assert_eq!(disk.snapshot(), data);
    }

    #[test]
    fn exact_page_multiple() {
        let data: Vec<u64> = (0..512).collect();
        let disk = DiskStore::new(&data, 128);
        assert_eq!(disk.page_count(), 4);
        assert_eq!(disk.snapshot(), data);
    }

    #[test]
    fn empty_store() {
        let disk = DiskStore::<u64>::new(&[], 128);
        assert_eq!(disk.len(), 0);
        assert!(disk.is_empty());
        assert!(disk.snapshot().is_empty());
    }

    #[test]
    fn read_write_page() {
        let data: Vec<u64> = (0..256).collect();
        let mut disk = DiskStore::new(&data, 128);
        let mut buf = vec![0u64; 128];
        disk.read_page(1, &mut buf);
        assert_eq!(buf[0], 128);
        buf[0] = 999;
        disk.write_page(1, &buf);
        let mut buf2 = vec![0u64; 128];
        disk.read_page(1, &mut buf2);
        assert_eq!(buf2[0], 999);
    }

    #[test]
    fn memory_fraction_config() {
        let c = PoolConfig::with_memory_fraction(1_000_000, 0.1, 4096);
        // 245 pages total → 25 frames.
        assert_eq!(c.frames, 25);
        let tiny = PoolConfig::with_memory_fraction(100, 0.01, 4096);
        assert_eq!(tiny.frames, 2, "floor of two frames");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn memory_fraction_rejects_zero() {
        PoolConfig::with_memory_fraction(100, 0.0, 4096);
    }
}
