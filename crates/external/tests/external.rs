//! Integration tests: paged engines against the oracle on real workloads,
//! paged kernels against the in-memory kernels, and the §6 I/O claims.

use scrack_core::Oracle;
use scrack_external::{
    build_paged_engine, external_merge_sort, PagedColumn, PagedEngineKind, PoolConfig,
};
use scrack_types::QueryRange;
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{WorkloadKind, WorkloadSpec};

const N: u64 = 65_536;
const QUERIES: usize = 200;
const SEED: u64 = 20120827;

fn tight_pool() -> PoolConfig {
    // 256 pages of data, 16 frames: constant eviction pressure.
    PoolConfig {
        page_elems: 256,
        frames: 16,
    }
}

#[test]
fn oracle_equivalence_all_engines_all_workloads() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let oracle = Oracle::new(&data);
    for kind in PagedEngineKind::all_with_progressive() {
        for workload in [
            WorkloadKind::Random,
            WorkloadKind::Sequential,
            WorkloadKind::ZoomIn,
        ] {
            let mut engine = build_paged_engine(kind, &data, tight_pool(), SEED);
            for (i, q) in WorkloadSpec::new(workload, N, QUERIES, SEED)
                .generate()
                .into_iter()
                .enumerate()
            {
                let out = engine.select(q);
                assert_eq!(
                    out.len(),
                    oracle.count(q),
                    "{} on {workload:?} query {i}",
                    kind.label()
                );
                assert_eq!(
                    out.key_checksum(engine.column_mut()),
                    oracle.checksum(q),
                    "{} on {workload:?} query {i}",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn paged_engines_preserve_the_multiset() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let mut expect = data.clone();
    expect.sort_unstable();
    for kind in [PagedEngineKind::Crack, PagedEngineKind::Mdd1r] {
        let mut engine = build_paged_engine(kind, &data, tight_pool(), SEED);
        for q in WorkloadSpec::new(WorkloadKind::Random, N, QUERIES, SEED).generate() {
            engine.select(q);
        }
        let mut snap = engine.column_mut().snapshot();
        snap.sort_unstable();
        assert_eq!(snap, expect, "{} lost or duplicated keys", kind.label());
    }
}

/// The §6 question, answered at this scale: cracking's write traffic is
/// front-loaded and decays as pieces shrink below page size, while its
/// read traffic converges to a handful of pages per query — so adaptive
/// indexing remains viable on disk, with Sort's up-front 2-pass cost as
/// the alternative.
#[test]
fn io_shape_random_workload() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let pages = (N as usize).div_ceil(tight_pool().page_elems) as u64;
    let queries = WorkloadSpec::new(WorkloadKind::Random, N, QUERIES, SEED).generate();

    let mut scan = build_paged_engine(PagedEngineKind::Scan, &data, tight_pool(), SEED);
    let mut crack = build_paged_engine(PagedEngineKind::Crack, &data, tight_pool(), SEED);
    let mut mdd1r = build_paged_engine(PagedEngineKind::Mdd1r, &data, tight_pool(), SEED);
    for q in &queries {
        scan.select(*q);
        crack.select(*q);
        mdd1r.select(*q);
    }
    // Scan: every query reads every page, never writes.
    assert_eq!(scan.io().reads, pages * QUERIES as u64);
    assert_eq!(scan.io().writes, 0);
    // Cracking engines: total I/O far below Scan's (convergence) but with
    // nonzero writes (the reorganization §6 is concerned with).
    for (label, engine) in [("Crack", &crack), ("MDD1R", &mdd1r)] {
        let io = engine.io();
        assert!(
            io.total_io() < scan.io().reads / 4,
            "{label}: adaptive I/O should be far below Scan ({io:?})"
        );
        assert!(io.writes > 0, "{label}: cracking must write");
        // Accounting invariant: every written page was faulted in first.
        assert!(
            io.writes <= io.reads,
            "{label}: wrote pages never read ({io:?})"
        );
        // Write traffic is bounded by the reorganization actually done: a
        // page can only be dirtied while its elements are being examined,
        // so pages written ≤ pages' worth of tuples touched (+ resident
        // set slack).
        let touched = engine.stats().touched;
        let bound = 2 * (touched / tight_pool().page_elems as u64) + 2 * pages;
        assert!(
            io.writes <= bound,
            "{label}: writes {io:?} exceed reorganization bound {bound}"
        );
    }
}

/// On Sequential, external original cracking re-reads the large unindexed
/// piece every query — the in-memory robustness pathology becomes an I/O
/// pathology. External MDD1R's random cracks cut it by an order of
/// magnitude.
#[test]
fn sequential_pathology_is_an_io_pathology() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let queries = WorkloadSpec::new(WorkloadKind::Sequential, N, QUERIES, SEED).generate();
    let mut crack = build_paged_engine(PagedEngineKind::Crack, &data, tight_pool(), SEED);
    let mut mdd1r = build_paged_engine(PagedEngineKind::Mdd1r, &data, tight_pool(), SEED);
    for q in &queries {
        crack.select(*q);
        mdd1r.select(*q);
    }
    let crack_io = crack.io().total_io();
    let mdd1r_io = mdd1r.io().total_io();
    assert!(
        crack_io > mdd1r_io * 5,
        "stochastic cracking must win on I/O too: Crack {crack_io} vs MDD1R {mdd1r_io}"
    );
}

/// A larger pool strictly reduces fault traffic for the same query
/// sequence (monotonicity sanity for the buffer manager).
#[test]
fn bigger_pool_never_faults_more() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let queries = WorkloadSpec::new(WorkloadKind::Random, N, 100, SEED).generate();
    let mut faults = Vec::new();
    for frames in [4usize, 16, 64, 256] {
        let config = PoolConfig {
            page_elems: 256,
            frames,
        };
        let mut engine = build_paged_engine(PagedEngineKind::Crack, &data, config, SEED);
        for q in &queries {
            engine.select(*q);
        }
        faults.push(engine.io().faults);
    }
    for w in faults.windows(2) {
        assert!(
            w[1] <= w[0],
            "faults must not grow with pool size: {faults:?}"
        );
    }
    // With the whole column resident, faults equal the cold-load floor.
    assert_eq!(*faults.last().expect("non-empty"), 256);
}

/// External sort I/O matches the textbook formula at three pool sizes.
#[test]
fn external_sort_io_matches_formula() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    for frames in [2usize, 8, 32] {
        let config = PoolConfig {
            page_elems: 256,
            frames,
        };
        let mut col = PagedColumn::new(&data, config);
        let report = external_merge_sort(&mut col);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(col.snapshot(), sorted, "frames={frames}");
        let pages = (N as usize).div_ceil(256) as u64;
        let passes = 1 + report.merge_passes as u64;
        let expect = 2 * pages * passes;
        let total = col.io().total_io();
        assert!(
            total >= expect && total <= expect + expect / 4,
            "frames={frames}: io {total} vs formula {expect} ({report:?})"
        );
    }
}

/// Tuple elements (key + rowid) move through the paged engines intact.
#[test]
fn tuples_keep_their_rowids() {
    use scrack_types::{Element, Tuple};
    let n = 8192u64;
    let data: Vec<Tuple> = unique_permutation(n, SEED);
    let mut engine = build_paged_engine(PagedEngineKind::Mdd1r, &data, tight_pool(), SEED);
    for i in 0..50u64 {
        let low = (i * 151) % (n - 30);
        let q = QueryRange::new(low, low + 25);
        engine.select(q);
    }
    // Every (key, row) pairing from construction must survive.
    let snap = engine.column_mut().snapshot();
    for t in snap {
        let orig = data
            .iter()
            .find(|d| d.row == t.row)
            .expect("rowid survives");
        assert_eq!(orig.key(), t.key(), "rowid {} detached from key", t.row);
    }
}
