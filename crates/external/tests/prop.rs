//! Property tests: the paged substrate agrees with in-memory models under
//! arbitrary operation sequences, data, and pool geometries.

use proptest::prelude::*;
use scrack_external::kernel::{crack_in_three_paged, crack_in_two_paged};
use scrack_external::{external_merge_sort, PagedColumn, PoolConfig};
use scrack_types::QueryRange;

/// Mirror of the in-memory two-way contract checked directly.
fn check_two_way(data: Vec<u64>, pivot: u64, page_elems: usize, frames: usize) {
    let mut col = PagedColumn::new(&data, PoolConfig { page_elems, frames });
    let p = crack_in_two_paged(&mut col, 0, data.len(), pivot);
    let snap = col.snapshot();
    assert!(snap[..p].iter().all(|k| *k < pivot));
    assert!(snap[p..].iter().all(|k| *k >= pivot));
    let mut a = snap;
    let mut b = data;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "permutation preserved");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_way_contract_any_data(
        data in prop::collection::vec(0u64..1000, 0..600),
        pivot in 0u64..1100,
        page_elems in 1usize..96,
        frames in 2usize..8,
    ) {
        check_two_way(data, pivot, page_elems, frames);
    }

    #[test]
    fn three_way_contract_any_data(
        data in prop::collection::vec(0u64..500, 0..400),
        bounds in (0u64..550, 0u64..550),
        page_elems in 1usize..64,
        frames in 2usize..6,
    ) {
        let (x, y) = bounds;
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        let n = data.len();
        let mut col = PagedColumn::new(&data, PoolConfig { page_elems, frames });
        let (p, q) = crack_in_three_paged(&mut col, 0, n, a, b);
        let snap = col.snapshot();
        prop_assert!(snap[..p].iter().all(|k| *k < a));
        prop_assert!(snap[p..q].iter().all(|k| *k >= a && *k < b));
        prop_assert!(snap[q..].iter().all(|k| *k >= b));
        let mut got = snap;
        let mut want = data;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn paged_column_matches_vec_model(
        data in prop::collection::vec(0u64..10_000, 1..500),
        ops in prop::collection::vec((0usize..500, 0usize..500, 0u64..10_000, 0u8..3), 0..200),
        page_elems in 1usize..64,
        frames in 2usize..6,
    ) {
        let mut col = PagedColumn::new(&data, PoolConfig { page_elems, frames });
        let mut model = data;
        let n = model.len();
        for (i, j, v, op) in ops {
            let (i, j) = (i % n, j % n);
            match op {
                0 => prop_assert_eq!(col.get(i), model[i]),
                1 => { col.set(i, v); model[i] = v; }
                _ => { col.swap(i, j); model.swap(i, j); }
            }
        }
        prop_assert_eq!(col.snapshot(), model);
    }

    #[test]
    fn external_sort_equals_std_sort(
        data in prop::collection::vec(0u64..5000, 0..2000),
        page_elems in 1usize..128,
        frames in 2usize..10,
    ) {
        let mut col = PagedColumn::new(&data, PoolConfig { page_elems, frames });
        external_merge_sort(&mut col);
        let mut expect = data;
        expect.sort_unstable();
        prop_assert_eq!(col.snapshot(), expect);
    }

    #[test]
    fn split_and_materialize_exact_result(
        data in prop::collection::vec(0u64..2000, 1..500),
        qbounds in (0u64..2100, 0u64..2100),
        pivot_idx in 0usize..500,
        page_elems in 1usize..64,
    ) {
        use scrack_external::kernel::split_and_materialize_paged;
        let (x, y) = qbounds;
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        let q = QueryRange::new(a, b);
        let n = data.len();
        let pivot = data[pivot_idx % n];
        let mut col = PagedColumn::new(&data, PoolConfig { page_elems, frames: 3 });
        let mut out = Vec::new();
        let p = split_and_materialize_paged(&mut col, 0, n, pivot, q, &mut out);
        // Partition contract.
        let snap = col.snapshot();
        prop_assert!(snap[..p].iter().all(|k| *k < pivot));
        prop_assert!(snap[p..].iter().all(|k| *k >= pivot));
        // Materialization contract: exactly the qualifying multiset.
        let mut got = out;
        got.sort_unstable();
        let mut want: Vec<u64> = data.iter().copied().filter(|k| q.contains(*k)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
