//! Integration tests for the workload generators: cross-module
//! determinism, distribution sanity against the documented key regions,
//! and stability of the synthetic SkyServer sampling.
//!
//! The unit tests inside each module pin per-pattern formulas; this
//! suite checks the generator *contracts* other crates rely on — the
//! experiments harness and the `BENCH_*` reporters assume that a spec
//! plus a seed identifies one exact stream forever.

use scrack_types::QueryRange;
use scrack_workloads::{
    data, skyserver_trace, MixedOp, MixedWorkloadSpec, SkyServerConfig, UpdateKeyDist,
    WorkloadKind, WorkloadSpec,
};

const N: u64 = 200_000;
const Q: usize = 4_000;
const SEED: u64 = 0xBE7C;

#[test]
fn every_generator_is_deterministic_under_a_fixed_seed() {
    // One spec + one seed = one exact stream, across every generator
    // the harness consumes.
    for kind in WorkloadKind::all_concrete()
        .into_iter()
        .chain([WorkloadKind::Mixed])
    {
        let spec = WorkloadSpec::new(kind, N, Q, SEED);
        assert_eq!(spec.generate(), spec.generate(), "{kind:?}");
    }
    let sky = SkyServerConfig::new(N, Q, SEED);
    assert_eq!(skyserver_trace(sky), skyserver_trace(sky));
    let mixed = MixedWorkloadSpec::fig15(WorkloadKind::Sequential, N, Q, SEED);
    assert_eq!(mixed.generate(), mixed.generate());
    assert_eq!(
        data::unique_permutation::<u64>(N, SEED),
        data::unique_permutation::<u64>(N, SEED)
    );
    assert_eq!(
        data::uniform_with_duplicates::<u64>(N, 100, SEED),
        data::uniform_with_duplicates::<u64>(N, 100, SEED)
    );
}

#[test]
fn skew_hits_the_documented_key_regions() {
    // Skew's contract (Fig. 7): the first 80% of queries stay in the
    // lower 80% of the domain, the final 20% in the top 20%.
    let qs = WorkloadSpec::new(WorkloadKind::Skew, N, Q, SEED).generate();
    let split = Q * 4 / 5;
    assert!(qs[..split].iter().all(|r| r.low < N * 4 / 5));
    assert!(qs[split..].iter().all(|r| r.low >= N * 4 / 5));
    // And the low phase actually spreads over its region rather than
    // clustering: every decile of [0, 0.8N) gets hit.
    let decile = N * 4 / 5 / 10;
    for d in 0..10u64 {
        let hits = qs[..split]
            .iter()
            .filter(|r| r.low / decile == d)
            .count();
        assert!(hits > split / 100, "decile {d} underpopulated: {hits}");
    }
}

#[test]
fn periodic_sweeps_cover_the_domain_repeatedly() {
    let qs = WorkloadSpec::new(WorkloadKind::Periodic, N, Q, SEED).generate();
    let wraps = qs.windows(2).filter(|w| w[1].low < w[0].low).count();
    assert!(wraps >= 5, "documented as ~10 sweeps, saw {wraps} wraps");
    // Each sweep visits both halves of the domain.
    assert!(qs.iter().any(|r| r.low < N / 10));
    assert!(qs.iter().any(|r| r.low > N * 8 / 10));
}

#[test]
fn sequential_walks_the_domain_once_in_order() {
    let qs = WorkloadSpec::new(WorkloadKind::Sequential, N, Q, SEED).generate();
    assert_eq!(qs[0].low, 0, "starts at the domain bottom");
    assert!(qs.windows(2).all(|w| w[0].low <= w[1].low), "monotone walk");
    assert!(
        qs.last().unwrap().high > N * 9 / 10,
        "reaches the domain end"
    );
}

#[test]
fn skyserver_sampling_is_stable_and_sky_shaped() {
    // The trace's two defining properties hold at any sampled scale and
    // seed: local focus (consecutive queries close) and eventual broad
    // coverage — the robustness pathology the paper replays.
    for seed in [1u64, 7, 42] {
        let t = skyserver_trace(SkyServerConfig::new(N, Q, seed));
        assert_eq!(t.len(), Q);
        assert!(t.iter().all(|q| !q.is_empty() && q.high <= N), "seed {seed}");
        let close = t
            .windows(2)
            .filter(|w| w[0].low.abs_diff(w[1].low) < N / 50)
            .count();
        assert!(
            close > t.len() * 3 / 4,
            "seed {seed}: trace not locally focused ({close}/{} close steps)",
            t.len()
        );
    }
    // Stability across scales: a longer trace with the same seed starts
    // with more phases, not a different shape — the span keeps growing.
    let short = skyserver_trace(SkyServerConfig::new(N, Q, SEED));
    let long = skyserver_trace(SkyServerConfig::new(N, Q * 4, SEED));
    let span = |t: &[QueryRange]| {
        let min = t.iter().map(|q| q.low).min().unwrap();
        let max = t.iter().map(|q| q.high).max().unwrap();
        max - min
    };
    assert!(span(&long) >= span(&short));
}

#[test]
fn mixed_stream_preserves_the_read_pattern() {
    // Filtering the queries back out of a mixed stream must yield
    // exactly the underlying read workload — updates interleave, they
    // do not perturb the read side.
    let spec = MixedWorkloadSpec::fig15(WorkloadKind::SeqRandom, N, Q, SEED)
        .with_update_rate(2.0)
        .with_burst(25)
        .with_insert_fraction(0.6)
        .with_keys(UpdateKeyDist::Uniform);
    let ops = spec.generate();
    let reads: Vec<QueryRange> = ops
        .iter()
        .filter_map(|op| match op {
            MixedOp::Query(q) => Some(*q),
            _ => None,
        })
        .collect();
    assert_eq!(reads, spec.read.generate());
    let updates = ops.len() - reads.len();
    assert_eq!(updates, spec.total_updates());
    assert_eq!(updates, 2 * Q);
}

#[test]
fn mixed_key_distributions_land_where_documented() {
    for (keys, check) in [
        (
            UpdateKeyDist::Uniform,
            Box::new(|k: u64| k < N) as Box<dyn Fn(u64) -> bool>,
        ),
        (
            UpdateKeyDist::Hotspot {
                center: 0.25,
                width: 0.02,
            },
            Box::new(|k: u64| k.abs_diff(N / 4) <= N / 100),
        ),
        (UpdateKeyDist::Append, Box::new(|k: u64| k >= N)),
    ] {
        let ops = MixedWorkloadSpec::fig15(WorkloadKind::Random, N, Q, SEED)
            .with_keys(keys)
            .generate();
        for op in &ops {
            if let MixedOp::Insert(k) = op {
                assert!(check(*k), "{}: insert key {k} out of region", keys.label());
            }
        }
    }
}
