//! Query workloads and data generators for the stochastic cracking
//! evaluation.
//!
//! Figure 7 of Halim et al. (VLDB 2012) defines the synthetic workload
//! suite the robustness evaluation runs on; [`WorkloadKind`] and
//! [`WorkloadSpec`] reproduce every pattern (plus the `Mixed` rotation of
//! §5). [`skyserver_trace`] generates a synthetic stand-in for the
//! SkyServer query log of Fig. 16 (see DESIGN.md for the substitution
//! rationale), and [`data`] provides the column contents: the paper's
//! "N unique integers in range \[0, N)" as a seeded random permutation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! [`MixedWorkloadSpec`] interleaves any read pattern with update bursts
//! (Fig. 15's scenario, generalized to rate/burst/key-distribution
//! sweeps) for the update-grade serving experiments.

pub mod data;
mod mixed;
mod phased;
mod skyserver;
mod synthetic;

pub use mixed::{MixedOp, MixedWorkloadSpec, UpdateKeyDist};
pub use phased::{read_phase, PhasedWorkload};
pub use skyserver::{skyserver_trace, SkyServerConfig};
pub use synthetic::{WorkloadKind, WorkloadSpec};
