//! A synthetic stand-in for the SkyServer query trace of Fig. 16.
//!
//! The paper replays 160K selection predicates on the "right ascension"
//! attribute of SkyServer's `Photoobjall` table. The real trace is not
//! redistributable, but Fig. 16(b) shows the property that matters for
//! adaptive indexing: the workload is *piecewise focused* — "queries focus
//! in a specific area of the sky before moving on to a different area; the
//! pattern combines features of the synthetic workloads". This generator
//! reproduces exactly that shape:
//!
//! * long **focus phases**: many queries with small, slowly drifting
//!   ranges around one sky position (the horizontal bands of Fig. 16b);
//! * **sweep phases**: ranges walking linearly across a section of the sky
//!   (the diagonal strokes);
//! * occasional **revisits** of previously studied positions.
//!
//! Because the robustness pathology depends only on this access shape —
//! focused phases leave large unindexed areas that later phases crash
//! into — who wins (Scrack vs Crack), and by how much, is preserved; see
//! DESIGN.md's substitution table.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_types::QueryRange;

/// Parameters of the synthetic SkyServer trace.
#[derive(Clone, Copy, Debug)]
pub struct SkyServerConfig {
    /// Domain size (the column's key space; the real attribute is right
    /// ascension in `[0°, 360°)` scaled onto the integers).
    pub n: u64,
    /// Number of queries (the paper replays 160 000).
    pub queries: usize,
    /// Typical selectivity in tuples.
    pub selectivity: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SkyServerConfig {
    /// Defaults mirroring the paper at a given scale.
    pub fn new(n: u64, queries: usize, seed: u64) -> Self {
        Self {
            n,
            queries,
            selectivity: (n / 10_000).max(10),
            seed,
        }
    }
}

/// Generates the synthetic SkyServer query sequence.
pub fn skyserver_trace(cfg: SkyServerConfig) -> Vec<QueryRange> {
    assert!(cfg.n >= 100, "domain too small for a sky survey");
    let n = cfg.n;
    let s = cfg.selectivity.clamp(1, n / 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.queries);
    let mut visited: Vec<u64> = Vec::new();
    let mut center = rng.gen_range(0..n);

    while out.len() < cfg.queries {
        let remaining = cfg.queries - out.len();
        let style = rng.gen_range(0..100u32);
        if style < 60 {
            // Focus phase: drift slowly around `center`.
            let len = rng.gen_range(500..4000).min(remaining);
            let jitter = (n / 200).max(1);
            let drift_per_query = rng.gen_range(0..(jitter / 100 + 2)) as i64
                * if rng.gen_bool(0.5) { 1 } else { -1 };
            let mut c = center as i64;
            for _ in 0..len {
                c += drift_per_query;
                let off = rng.gen_range(0..jitter) as i64 - (jitter / 2) as i64;
                let a = (c + off).clamp(0, (n - s) as i64) as u64;
                out.push(QueryRange::new(a, a + s));
            }
            visited.push(center);
            center = rng.gen_range(0..n);
        } else if style < 85 {
            // Sweep phase: walk linearly across a random section.
            let len = rng.gen_range(500..3000).min(remaining).max(1);
            let from = rng.gen_range(0..n - s);
            let to = rng.gen_range(0..n - s);
            for i in 0..len {
                let a = if to >= from {
                    from + (to - from) * i as u64 / len as u64
                } else {
                    from - (from - to) * i as u64 / len as u64
                };
                out.push(QueryRange::new(a, a + s));
            }
            center = to;
        } else {
            // Revisit a previously studied position (or jump if none yet).
            center = visited
                .get(rng.gen_range(0..visited.len().max(1)))
                .copied()
                .unwrap_or_else(|| rng.gen_range(0..n));
            // A short confirmation burst.
            let len = rng.gen_range(50..500).min(remaining).max(1);
            let jitter = (n / 500).max(1);
            for _ in 0..len {
                let off = rng.gen_range(0..jitter);
                let a = (center.saturating_add(off)).min(n - s);
                out.push(QueryRange::new(a, a + s));
            }
        }
    }
    out.truncate(cfg.queries);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length_and_stays_in_domain() {
        let cfg = SkyServerConfig::new(1_000_000, 20_000, 7);
        let t = skyserver_trace(cfg);
        assert_eq!(t.len(), 20_000);
        assert!(t.iter().all(|q| !q.is_empty() && q.high <= 1_000_000));
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = SkyServerConfig::new(100_000, 5_000, 3);
        assert_eq!(skyserver_trace(cfg), skyserver_trace(cfg));
        let other = SkyServerConfig::new(100_000, 5_000, 4);
        assert_ne!(skyserver_trace(cfg), skyserver_trace(other));
    }

    #[test]
    fn trace_is_locally_focused() {
        // The trace's defining property: consecutive queries are close —
        // far closer than random queries would be.
        let n = 1_000_000u64;
        let t = skyserver_trace(SkyServerConfig::new(n, 10_000, 11));
        let close = t
            .windows(2)
            .filter(|w| w[0].low.abs_diff(w[1].low) < n / 50)
            .count();
        assert!(
            close > t.len() * 8 / 10,
            "trace jumps too much to be SkyServer-like: {close}/{} close steps",
            t.len()
        );
    }

    #[test]
    fn trace_eventually_covers_a_broad_domain_span() {
        let n = 1_000_000u64;
        let t = skyserver_trace(SkyServerConfig::new(n, 50_000, 5));
        let min = t.iter().map(|q| q.low).min().unwrap();
        let max = t.iter().map(|q| q.high).max().unwrap();
        assert!(
            min < n / 10 && max > n * 9 / 10,
            "span [{min}, {max}) too narrow"
        );
    }
}
