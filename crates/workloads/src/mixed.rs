//! Mixed read/write workloads: interleaved query/insert/delete streams.
//!
//! Fig. 15 of the paper interleaves its query workload with periodic
//! bursts of random inserts ("10 random inserts every 10 queries") and
//! reports that stochastic cracking's advantage survives any update
//! frequency/volume mix. [`MixedWorkloadSpec`] generalizes that setup
//! into a parameterized generator over any [`WorkloadKind`] read
//! pattern:
//!
//! * **update rate** — updates per query on average (Fig. 15 runs 1.0);
//! * **burst size** — updates arrive in batches: `burst = 1` is the
//!   high-frequency/low-volume corner, a large burst with the same rate
//!   is the low-frequency/high-volume (LFHV) corner of \[17\]'s
//!   taxonomy;
//! * **key distribution** — where update keys land
//!   ([`UpdateKeyDist`]): uniform over the domain, a hotspot stripe, or
//!   append-heavy monotone keys beyond the domain end (the classic
//!   LFHV append workload).
//!
//! Streams are deterministic per seed, so engine comparisons and the
//! `scrack_updates` perf baseline (`BENCH_5.json`) replay identical op
//! sequences.

use crate::synthetic::{WorkloadKind, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_types::QueryRange;

/// One operation of a mixed read/write stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixedOp {
    /// A range select.
    Query(QueryRange),
    /// Insert one element with this key.
    Insert(u64),
    /// Delete one element with this key (absent keys evaporate).
    Delete(u64),
}

/// Where update keys land in the domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpdateKeyDist {
    /// Uniform over `[0, n)` — Fig. 15's "random inserts".
    Uniform,
    /// A narrow hot stripe: keys drawn uniformly from
    /// `[center - width/2, center + width/2)`, where both are fractions
    /// of the domain. Concentrates ripple work on few pieces.
    Hotspot {
        /// Stripe center as a fraction of `n` (e.g. `0.5`).
        center: f64,
        /// Stripe width as a fraction of `n` (e.g. `0.05`).
        width: f64,
    },
    /// Append-heavy: insert keys increase monotonically starting at the
    /// domain end (`n`, `n+1`, …); delete keys target the oldest
    /// appended keys first. Every insert lands past the last crack — the
    /// cheapest case for ripple, the classic log/append workload.
    Append,
}

impl UpdateKeyDist {
    /// Report/CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateKeyDist::Uniform => "uniform",
            UpdateKeyDist::Hotspot { .. } => "hotspot",
            UpdateKeyDist::Append => "append",
        }
    }
}

/// A parameterized mixed read/write stream (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct MixedWorkloadSpec {
    /// The read side: pattern, domain, query count, selectivity, seed.
    pub read: WorkloadSpec,
    /// Average updates per query (`1.0` ≈ Fig. 15's load).
    pub update_rate: f64,
    /// Updates arrive in bursts of this many ops (≥ 1); the stream
    /// interleaves one burst every `burst / update_rate` queries.
    pub burst: usize,
    /// Fraction of updates that are inserts (the rest are deletes);
    /// `1.0` reproduces Fig. 15's insert-only setup.
    pub insert_fraction: f64,
    /// Where update keys land.
    pub keys: UpdateKeyDist,
}

impl MixedWorkloadSpec {
    /// Fig. 15's shape over a given read pattern: one burst of 10
    /// uniform inserts every 10 queries.
    pub fn fig15(kind: WorkloadKind, n: u64, queries: usize, seed: u64) -> Self {
        Self {
            read: WorkloadSpec::new(kind, n, queries, seed),
            update_rate: 1.0,
            burst: 10,
            insert_fraction: 1.0,
            keys: UpdateKeyDist::Uniform,
        }
    }

    /// Overrides the update rate.
    pub fn with_update_rate(mut self, rate: f64) -> Self {
        self.update_rate = rate;
        self
    }

    /// Overrides the burst size.
    pub fn with_burst(mut self, burst: usize) -> Self {
        self.burst = burst;
        self
    }

    /// Overrides the insert fraction.
    pub fn with_insert_fraction(mut self, f: f64) -> Self {
        self.insert_fraction = f;
        self
    }

    /// Overrides the update key distribution.
    pub fn with_keys(mut self, keys: UpdateKeyDist) -> Self {
        self.keys = keys;
        self
    }

    /// Total updates the generated stream carries.
    pub fn total_updates(&self) -> usize {
        (self.read.queries as f64 * self.update_rate).round() as usize
    }

    /// Generates the interleaved op stream: `read.queries` queries from
    /// the read pattern with update bursts spread evenly between them.
    ///
    /// Deterministic per seed; the same spec always yields the same
    /// stream.
    pub fn generate(&self) -> Vec<MixedOp> {
        assert!(self.update_rate >= 0.0, "negative update rate");
        assert!(self.burst >= 1, "burst must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.insert_fraction),
            "insert fraction must be in [0, 1]"
        );
        let queries = self.read.generate();
        let total_updates = self.total_updates();
        let n = self.read.n;
        let mut rng = SmallRng::seed_from_u64(self.read.seed ^ 0x0DD5_EED5);
        let mut appended_next = n; // next append key
        let mut append_oldest = n; // oldest live appended key
        let mut draw_key = |rng: &mut SmallRng, insert: bool| -> u64 {
            match self.keys {
                UpdateKeyDist::Uniform => rng.gen_range(0..n.max(1)),
                UpdateKeyDist::Hotspot { center, width } => {
                    let w = ((n as f64 * width) as u64).max(1);
                    let c = (n as f64 * center) as u64;
                    let lo = c.saturating_sub(w / 2);
                    rng.gen_range(lo..lo + w)
                }
                UpdateKeyDist::Append => {
                    if insert {
                        appended_next += 1;
                        appended_next - 1
                    } else if append_oldest < appended_next {
                        append_oldest += 1;
                        append_oldest - 1
                    } else {
                        // Nothing appended yet to delete; target the
                        // domain end (evaporates if absent).
                        n
                    }
                }
            }
        };
        let mut out = Vec::with_capacity(queries.len() + total_updates);
        let mut emitted = 0usize;
        for (i, q) in queries.iter().enumerate() {
            // Updates owed after i+1 of queries.len() queries, emitted
            // in full bursts (the final partial burst flushes with the
            // last query).
            let owed = if i + 1 == queries.len() {
                total_updates
            } else {
                let exact = total_updates as f64 * (i + 1) as f64 / queries.len() as f64;
                let full = (exact as usize / self.burst) * self.burst;
                full.min(total_updates)
            };
            while emitted < owed {
                let insert = rng.gen_bool(self.insert_fraction);
                let key = draw_key(&mut rng, insert);
                out.push(if insert {
                    MixedOp::Insert(key)
                } else {
                    MixedOp::Delete(key)
                });
                emitted += 1;
            }
            out.push(MixedOp::Query(*q));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000;
    const Q: usize = 1_000;

    fn spec() -> MixedWorkloadSpec {
        MixedWorkloadSpec::fig15(WorkloadKind::Random, N, Q, 42)
    }

    fn count_ops(ops: &[MixedOp]) -> (usize, usize, usize) {
        ops.iter().fold((0, 0, 0), |(q, i, d), op| match op {
            MixedOp::Query(_) => (q + 1, i, d),
            MixedOp::Insert(_) => (q, i + 1, d),
            MixedOp::Delete(_) => (q, i, d + 1),
        })
    }

    #[test]
    fn fig15_shape_counts_and_determinism() {
        let ops = spec().generate();
        let (q, i, d) = count_ops(&ops);
        assert_eq!(q, Q);
        assert_eq!(i, Q, "rate 1.0, insert-only");
        assert_eq!(d, 0);
        assert_eq!(ops, spec().generate(), "same seed, same stream");
        let other = MixedWorkloadSpec::fig15(WorkloadKind::Random, N, Q, 43).generate();
        assert_ne!(ops, other, "seed must matter");
    }

    #[test]
    fn bursts_arrive_in_full_batches() {
        let ops = spec().with_burst(50).generate();
        // Between queries, updates appear in runs of exactly 50.
        let mut run = 0usize;
        let mut runs = Vec::new();
        for op in &ops {
            match op {
                MixedOp::Query(_) => {
                    if run > 0 {
                        runs.push(run);
                    }
                    run = 0;
                }
                _ => run += 1,
            }
        }
        if run > 0 {
            runs.push(run);
        }
        assert_eq!(runs.iter().sum::<usize>(), Q);
        assert!(
            runs.iter().all(|r| r % 50 == 0),
            "bursts must be whole multiples of 50: {runs:?}"
        );
    }

    #[test]
    fn update_rate_scales_volume() {
        let (_, i, d) = count_ops(
            &spec()
                .with_update_rate(0.25)
                .with_insert_fraction(0.5)
                .generate(),
        );
        assert_eq!(i + d, Q / 4);
        assert!(i > 0 && d > 0, "both op kinds at 50/50: {i}/{d}");
    }

    #[test]
    fn hotspot_keys_stay_in_stripe() {
        let ops = spec()
            .with_keys(UpdateKeyDist::Hotspot {
                center: 0.5,
                width: 0.05,
            })
            .with_insert_fraction(0.5)
            .generate();
        let (lo, hi) = (N / 2 - N / 40, N / 2 + N / 40);
        for op in &ops {
            if let MixedOp::Insert(k) | MixedOp::Delete(k) = op {
                assert!((lo..=hi).contains(k), "key {k} outside stripe");
            }
        }
    }

    #[test]
    fn append_keys_are_monotone_and_deletes_trail() {
        let ops = spec()
            .with_keys(UpdateKeyDist::Append)
            .with_insert_fraction(0.7)
            .generate();
        let mut last_insert = None;
        let mut last_delete = None;
        for op in &ops {
            match op {
                MixedOp::Insert(k) => {
                    assert!(*k >= N, "append inserts start at the domain end");
                    assert!(last_insert.is_none_or(|p| *k > p), "inserts monotone");
                    last_insert = Some(*k);
                }
                MixedOp::Delete(k) => {
                    assert!(last_delete.is_none_or(|p| *k >= p), "deletes monotone");
                    assert!(
                        last_insert.is_some_and(|p| *k <= p),
                        "deletes target already-appended keys"
                    );
                    last_delete = Some(*k);
                }
                MixedOp::Query(_) => {}
            }
        }
    }
}
