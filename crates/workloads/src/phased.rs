//! Phase-change composition: adversarial mid-stream workload switches.
//!
//! The paper's robustness argument is about *unannounced change*: an
//! index tuned by one access pattern suddenly serves another (the Fig. 7
//! suite probes single patterns; §5's Mixed rotation probes slow drift).
//! [`PhasedWorkload`] makes the change abrupt and scriptable: it
//! concatenates [`MixedWorkloadSpec`] segments into one op stream, so a
//! generator can flip from random to the sequential pathology at the
//! stream's midpoint, move a hotspot, or switch update bursts on — the
//! adversarial cells of the `scrack_gauntlet` reporter.
//!
//! Three named scenarios cover the gauntlet's phase-change axis:
//!
//! * [`flip`](PhasedWorkload::flip) — uniform random, then the §3
//!   sequential pathology;
//! * [`hotspot_migration`](PhasedWorkload::hotspot_migration) — the
//!   Skew pattern's low-domain focus, then SkewZoomOutAlt's top-end
//!   focus;
//! * [`update_burst`](PhasedWorkload::update_burst) — a read-only first
//!   half, then Fig. 15-style update bursts switching on.
//!
//! Streams are deterministic per seed (each phase is, and concatenation
//! adds no randomness).

use crate::mixed::{MixedOp, MixedWorkloadSpec, UpdateKeyDist};
use crate::synthetic::{WorkloadKind, WorkloadSpec};

/// A workload that switches specification mid-stream (see module docs).
#[derive(Clone, Debug)]
pub struct PhasedWorkload {
    phases: Vec<MixedWorkloadSpec>,
}

impl PhasedWorkload {
    /// A phased workload over explicit segments, replayed in order.
    ///
    /// # Panics
    /// If `phases` is empty.
    pub fn new(phases: Vec<MixedWorkloadSpec>) -> Self {
        assert!(!phases.is_empty(), "a phased workload needs at least one phase");
        Self { phases }
    }

    /// A single steady phase: `kind`, read-only (the degenerate case, so
    /// steady and phase-change cells share one code path).
    pub fn steady(kind: WorkloadKind, n: u64, queries: usize, seed: u64) -> Self {
        Self::new(vec![
            MixedWorkloadSpec::fig15(kind, n, queries, seed).with_update_rate(0.0)
        ])
    }

    /// The random→sequential flip: a uniform first half, then the §3
    /// sequential pathology. Read-only.
    pub fn flip(n: u64, queries: usize, seed: u64) -> Self {
        let half = queries / 2;
        Self::new(vec![
            MixedWorkloadSpec::fig15(WorkloadKind::Random, n, half, seed).with_update_rate(0.0),
            MixedWorkloadSpec::fig15(WorkloadKind::Sequential, n, queries - half, seed ^ 1)
                .with_update_rate(0.0),
        ])
    }

    /// Hotspot migration: the Skew pattern (focused on the low 80% of
    /// the domain), then SkewZoomOutAlt (focused at `9N/10`) — the hot
    /// region jumps to key space the first phase left unindexed.
    /// Read-only.
    pub fn hotspot_migration(n: u64, queries: usize, seed: u64) -> Self {
        let half = queries / 2;
        Self::new(vec![
            MixedWorkloadSpec::fig15(WorkloadKind::Skew, n, half, seed).with_update_rate(0.0),
            MixedWorkloadSpec::fig15(WorkloadKind::SkewZoomOutAlt, n, queries - half, seed ^ 1)
                .with_update_rate(0.0),
        ])
    }

    /// Update-burst onset: `kind` read-only, then the same pattern with
    /// bursts of 16 uniform updates at two updates per query (a heavier
    /// Fig. 15) switching on mid-stream.
    pub fn update_burst(kind: WorkloadKind, n: u64, queries: usize, seed: u64) -> Self {
        let half = queries / 2;
        Self::new(vec![
            MixedWorkloadSpec::fig15(kind, n, half, seed).with_update_rate(0.0),
            MixedWorkloadSpec::fig15(kind, n, queries - half, seed ^ 1)
                .with_update_rate(2.0)
                .with_burst(16)
                .with_insert_fraction(0.7)
                .with_keys(UpdateKeyDist::Uniform),
        ])
    }

    /// The phase segments.
    pub fn phases(&self) -> &[MixedWorkloadSpec] {
        &self.phases
    }

    /// Total queries across all phases.
    pub fn query_count(&self) -> usize {
        self.phases.iter().map(|p| p.read.queries).sum()
    }

    /// Total updates across all phases.
    pub fn update_count(&self) -> usize {
        self.phases.iter().map(|p| p.total_updates()).sum()
    }

    /// Cumulative query counts at which each phase ends — the regret
    /// curves and phase-aware assertions anchor on these.
    pub fn boundaries(&self) -> Vec<usize> {
        self.phases
            .iter()
            .scan(0usize, |acc, p| {
                *acc += p.read.queries;
                Some(*acc)
            })
            .collect()
    }

    /// Generates the concatenated op stream, phase by phase.
    /// Deterministic per phase seeds.
    pub fn generate(&self) -> Vec<MixedOp> {
        self.phases.iter().flat_map(|p| p.generate()).collect()
    }
}

/// Convenience: the read side of a phase (pattern, domain, count, seed).
pub fn read_phase(kind: WorkloadKind, n: u64, queries: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec::new(kind, n, queries, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_types::QueryRange;

    const N: u64 = 100_000;
    const Q: usize = 1_000;

    fn queries_of(ops: &[MixedOp]) -> Vec<QueryRange> {
        ops.iter()
            .filter_map(|op| match op {
                MixedOp::Query(q) => Some(*q),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for w in [
            PhasedWorkload::flip(N, Q, 42),
            PhasedWorkload::hotspot_migration(N, Q, 42),
            PhasedWorkload::update_burst(WorkloadKind::Random, N, Q, 42),
            PhasedWorkload::steady(WorkloadKind::Periodic, N, Q, 42),
        ] {
            assert_eq!(w.generate(), w.generate(), "same spec, same stream");
        }
        let a = PhasedWorkload::flip(N, Q, 1).generate();
        let b = PhasedWorkload::flip(N, Q, 2).generate();
        assert_ne!(a, b, "seed must matter");
    }

    #[test]
    fn flip_counts_and_boundary() {
        let w = PhasedWorkload::flip(N, Q, 7);
        assert_eq!(w.query_count(), Q);
        assert_eq!(w.update_count(), 0);
        assert_eq!(w.boundaries(), vec![Q / 2, Q]);
        let qs = queries_of(&w.generate());
        assert_eq!(qs.len(), Q);
        // Region sanity: the second half is the sequential walk — low
        // bounds non-decreasing, covering the domain.
        let tail = &qs[Q / 2..];
        assert!(
            tail.windows(2).all(|w| w[0].low <= w[1].low),
            "sequential phase must walk forward"
        );
        assert!(tail.last().unwrap().high > N * 9 / 10, "walk reaches the top");
        // The first half is random: not monotone (overwhelmingly likely).
        let head = &qs[..Q / 2];
        assert!(head.windows(2).any(|w| w[0].low > w[1].low));
    }

    #[test]
    fn hotspot_migration_moves_the_hot_region() {
        let w = PhasedWorkload::hotspot_migration(N, Q, 11);
        let qs = queries_of(&w.generate());
        // Phase 1 is Skew: its first 80% of queries sit in the low 80%.
        let phase1_lows = &qs[..Q / 2 * 4 / 5];
        assert!(
            phase1_lows.iter().all(|q| q.low < N * 4 / 5),
            "skew phase focuses low"
        );
        // Phase 2 starts zooming out from 9N/10: its first queries sit
        // in the top fifth of the domain.
        let onset = &qs[Q / 2..Q / 2 + 10];
        assert!(
            onset.iter().all(|q| q.low >= N * 4 / 5),
            "migrated hotspot starts at 9N/10: {onset:?}"
        );
    }

    #[test]
    fn update_burst_onset_is_read_only_then_bursty() {
        let w = PhasedWorkload::update_burst(WorkloadKind::Random, N, Q, 13);
        let ops = w.generate();
        assert_eq!(w.query_count(), Q);
        assert_eq!(w.update_count(), Q); // rate 2.0 over the second half
        // Locate the phase boundary: count queries.
        let mut seen_queries = 0usize;
        let mut first_update_at = None;
        for op in &ops {
            match op {
                MixedOp::Query(_) => seen_queries += 1,
                _ => {
                    if first_update_at.is_none() {
                        first_update_at = Some(seen_queries);
                    }
                }
            }
        }
        let at = first_update_at.expect("phase 2 carries updates");
        assert!(at >= Q / 2, "no updates before the onset (first at {at})");
        // Both inserts and deletes appear at 0.7 insert fraction.
        let inserts = ops.iter().filter(|o| matches!(o, MixedOp::Insert(_))).count();
        let deletes = ops.iter().filter(|o| matches!(o, MixedOp::Delete(_))).count();
        assert!(inserts > 0 && deletes > 0);
        assert_eq!(inserts + deletes, Q);
    }

    #[test]
    fn steady_is_a_single_read_only_phase() {
        let w = PhasedWorkload::steady(WorkloadKind::ZoomIn, N, Q, 5);
        assert_eq!(w.phases().len(), 1);
        assert_eq!(w.boundaries(), vec![Q]);
        let ops = w.generate();
        assert_eq!(ops.len(), Q);
        assert!(ops.iter().all(|o| matches!(o, MixedOp::Query(_))));
        // Identical to the plain generator stream for the same spec.
        let direct = WorkloadSpec::new(WorkloadKind::ZoomIn, N, Q, 5).generate();
        assert_eq!(queries_of(&ops), direct);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        PhasedWorkload::new(vec![]);
    }
}
