//! The synthetic workload suite of Fig. 7.
//!
//! Each pattern describes how a sequence of `Q` range queries walks the
//! attribute value domain `[0, N)`. The formulas follow Fig. 7 verbatim
//! where the paper fixes them, with the jump factors (`J`) and initial
//! widths (`W`) derived from `N` and `Q` so every pattern stays within the
//! domain at any scale (the concrete choices are documented per variant
//! and in DESIGN.md §4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_types::QueryRange;

/// The workload patterns of Fig. 7 (plus the `Mixed` rotation of §5).
///
/// `SeqReverse`, `ZoomOut` and `SeqZoomOut` "are identical to Sequential,
/// ZoomIn, SeqZoomIn run in reverse query sequence" (Fig. 7 notes);
/// `SkewZoomOutAlt` is ZoomOutAlt centered at `9N/10`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Uniformly random range positions.
    Random,
    /// 80% of queries in the lower 80% of the domain, then the upper 20%.
    Skew,
    /// Sequential low bound, random width to the domain end.
    SeqRandom,
    /// Blocks of 1000 queries, each zooming into its own stripe.
    SeqZoomIn,
    /// Sequential with wrap-around (several sweeps).
    Periodic,
    /// Shrinking ranges converging on the domain center.
    ZoomIn,
    /// Consecutive ranges walking the domain once (§3's pathological case).
    Sequential,
    /// Alternating above/below the center, moving outward.
    ZoomOutAlt,
    /// Alternating from both domain ends, moving inward.
    ZoomInAlt,
    /// Sequential, reversed.
    SeqReverse,
    /// ZoomIn, reversed: expanding ranges from the center.
    ZoomOut,
    /// SeqZoomIn, reversed.
    SeqZoomOut,
    /// ZoomOutAlt with the start point at `9N/10`.
    SkewZoomOutAlt,
    /// Rotates uniformly among all other patterns every 1000 queries (§5).
    Mixed,
}

impl WorkloadKind {
    /// Every concrete (non-Mixed) pattern, in the order of Fig. 17's table.
    pub fn all_concrete() -> [WorkloadKind; 13] {
        use WorkloadKind::*;
        [
            Periodic,
            ZoomOut,
            ZoomIn,
            ZoomInAlt,
            Random,
            Skew,
            SeqReverse,
            SeqZoomIn,
            SeqRandom,
            Sequential,
            SeqZoomOut,
            ZoomOutAlt,
            SkewZoomOutAlt,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn label(&self) -> &'static str {
        use WorkloadKind::*;
        match self {
            Random => "Random",
            Skew => "Skew",
            SeqRandom => "SeqRandom",
            SeqZoomIn => "SeqZoomIn",
            Periodic => "Periodic",
            ZoomIn => "ZoomIn",
            Sequential => "Sequential",
            ZoomOutAlt => "ZoomOutAlt",
            ZoomInAlt => "ZoomInAlt",
            SeqReverse => "SeqReverse",
            ZoomOut => "ZoomOut",
            SeqZoomOut => "SeqZoomOut",
            SkewZoomOutAlt => "SkewZoomOutAlt",
            Mixed => "Mixed",
        }
    }
}

/// A fully parameterized workload: pattern, domain, length, selectivity.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// The access pattern.
    pub kind: WorkloadKind,
    /// Domain size `N` (and column size: keys are `0..N`).
    pub n: u64,
    /// Number of queries `Q`.
    pub queries: usize,
    /// Selectivity `S` in tuples per query (paper default: 10).
    pub selectivity: u64,
    /// RNG seed for the random components.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's defaults (`S = 10`).
    pub fn new(kind: WorkloadKind, n: u64, queries: usize, seed: u64) -> Self {
        Self {
            kind,
            n,
            queries,
            selectivity: 10,
            seed,
        }
    }

    /// Overrides the selectivity (Fig. 11's sweep).
    pub fn with_selectivity(mut self, s: u64) -> Self {
        self.selectivity = s;
        self
    }

    /// Generates the query sequence.
    ///
    /// All queries are guaranteed non-empty and within `[0, n]`.
    pub fn generate(&self) -> Vec<QueryRange> {
        assert!(self.n >= 2, "domain too small");
        let s = self.selectivity.clamp(1, self.n - 1);
        let q = self.queries;
        let n = self.n;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let out = match self.kind {
            WorkloadKind::Random => gen_random(n, q, s, &mut rng),
            WorkloadKind::Skew => gen_skew(n, q, s, &mut rng),
            WorkloadKind::SeqRandom => gen_seq_random(n, q, &mut rng),
            WorkloadKind::SeqZoomIn => gen_seq_zoom_in(n, q, s),
            WorkloadKind::Periodic => gen_periodic(n, q, s),
            WorkloadKind::ZoomIn => gen_zoom_in(n, q, s),
            WorkloadKind::Sequential => gen_sequential(n, q, s),
            WorkloadKind::ZoomOutAlt => gen_zoom_out_alt(n, q, s, n / 2),
            WorkloadKind::ZoomInAlt => gen_zoom_in_alt(n, q, s),
            WorkloadKind::SeqReverse => reversed(gen_sequential(n, q, s)),
            WorkloadKind::ZoomOut => reversed(gen_zoom_in(n, q, s)),
            WorkloadKind::SeqZoomOut => reversed(gen_seq_zoom_in(n, q, s)),
            WorkloadKind::SkewZoomOutAlt => gen_zoom_out_alt(n, q, s, n * 9 / 10),
            WorkloadKind::Mixed => gen_mixed(n, q, s, self.seed),
        };
        debug_assert_eq!(out.len(), q);
        debug_assert!(out.iter().all(|r| !r.is_empty() && r.high <= n));
        out
    }
}

fn clamp_range(low: u64, high: u64, n: u64) -> QueryRange {
    let low = low.min(n - 1);
    let high = high.clamp(low + 1, n);
    QueryRange::new(low, high)
}

fn reversed(mut v: Vec<QueryRange>) -> Vec<QueryRange> {
    v.reverse();
    v
}

/// `[a, a+S)` with `a = R % (N-S)`.
fn gen_random(n: u64, q: usize, s: u64, rng: &mut SmallRng) -> Vec<QueryRange> {
    (0..q)
        .map(|_| {
            let a = rng.gen_range(0..n - s);
            clamp_range(a, a + s, n)
        })
        .collect()
}

/// First 80% of queries in the low 80% of the domain, rest in the top 20%.
fn gen_skew(n: u64, q: usize, s: u64, rng: &mut SmallRng) -> Vec<QueryRange> {
    let split = q * 4 / 5;
    let lo_span = (n * 4 / 5).saturating_sub(s).max(1);
    let hi_base = n * 4 / 5;
    let hi_span = (n - hi_base).saturating_sub(s).max(1);
    (0..q)
        .map(|i| {
            let a = if i < split {
                rng.gen_range(0..lo_span)
            } else {
                hi_base + rng.gen_range(0..hi_span)
            };
            clamp_range(a, a + s, n)
        })
        .collect()
}

/// `[i*J, i*J + R % (N - i*J))` with `J = N/Q`.
fn gen_seq_random(n: u64, q: usize, rng: &mut SmallRng) -> Vec<QueryRange> {
    let j = (n / q as u64).max(1);
    (0..q)
        .map(|i| {
            let low = (i as u64 * j).min(n - 1);
            let span = (n - low).max(1);
            let width = rng.gen_range(0..span).max(1);
            clamp_range(low, low + width, n)
        })
        .collect()
}

/// Blocks of 1000 queries, each zooming into stripe `b`:
/// `[L+K, L+W-K)` with `L = b*W`, `K = (i mod 1000)*J`.
fn gen_seq_zoom_in(n: u64, q: usize, s: u64) -> Vec<QueryRange> {
    let block = 1000usize;
    let nblocks = q.div_ceil(block).max(1) as u64;
    let w = (n / nblocks).max(2);
    let j = (w / (2 * block as u64)).max(1);
    (0..q)
        .map(|i| {
            let l = (i / block) as u64 * w;
            let k = (i % block) as u64 * j;
            let lo = l + k.min(w / 2 - 1);
            let hi = (l + w).saturating_sub(k).max(lo + s.min(w)).max(lo + 1);
            clamp_range(lo, hi, n)
        })
        .collect()
}

/// `a = (i*J) mod (N - S)`; several sweeps across the domain.
fn gen_periodic(n: u64, q: usize, s: u64) -> Vec<QueryRange> {
    // Roughly 10 sweeps over the run, as in the paper's periodic drawing.
    let sweeps = 10u64;
    let j = ((n - s) * sweeps / q as u64).max(s);
    (0..q)
        .map(|i| {
            let a = (i as u64 * j) % (n - s);
            clamp_range(a, a + s, n)
        })
        .collect()
}

/// `[N/2-W/2+i*J, N/2+W/2-i*J)` with `W = N`: shrink toward the center.
fn gen_zoom_in(n: u64, q: usize, s: u64) -> Vec<QueryRange> {
    let j = ((n / 2).saturating_sub(s) / q as u64).max(1);
    (0..q)
        .map(|i| {
            let lo = i as u64 * j;
            let hi = n.saturating_sub(i as u64 * j);
            let lo = lo.min(n / 2 - 1);
            let hi = hi.max(lo + 1);
            clamp_range(lo, hi, n)
        })
        .collect()
}

/// `a = i*J`: one left-to-right walk of the domain (§3's motivating case).
fn gen_sequential(n: u64, q: usize, s: u64) -> Vec<QueryRange> {
    let j = ((n - s) / q as u64).max(1);
    (0..q)
        .map(|i| {
            let a = (i as u64 * j).min(n - s);
            clamp_range(a, a + s, n)
        })
        .collect()
}

/// `a = M + (-1)^i * i*J`: alternate around `M`, moving outward.
fn gen_zoom_out_alt(n: u64, q: usize, s: u64, m: u64) -> Vec<QueryRange> {
    // J limited by the tighter of the two sides so both stay in-domain.
    let right_room = (n - m).saturating_sub(s);
    let left_room = m;
    let j = (right_room.min(left_room) / q as u64).max(1);
    (0..q)
        .map(|i| {
            let delta = i as u64 * j;
            let a = if i % 2 == 0 {
                (m + delta).min(n - s)
            } else {
                m.saturating_sub(delta)
            };
            clamp_range(a, a + s, n)
        })
        .collect()
}

/// `a = x*i*J + (N-S)*(1-x)/2, x = (-1)^i`: alternate between the two
/// domain ends, converging on the center.
fn gen_zoom_in_alt(n: u64, q: usize, s: u64) -> Vec<QueryRange> {
    let j = ((n / 2).saturating_sub(s) / q as u64).max(1);
    (0..q)
        .map(|i| {
            let delta = i as u64 * j;
            let a = if i % 2 == 0 {
                delta.min(n - s)
            } else {
                (n - s).saturating_sub(delta)
            };
            clamp_range(a, a + s, n)
        })
        .collect()
}

/// Rotate uniformly among all concrete patterns every 1000 queries.
fn gen_mixed(n: u64, q: usize, s: u64, seed: u64) -> Vec<QueryRange> {
    let block = 1000usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_B10C);
    let mut out = Vec::with_capacity(q);
    let kinds = WorkloadKind::all_concrete();
    let mut b = 0u64;
    while out.len() < q {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let take = block.min(q - out.len());
        let spec = WorkloadSpec {
            kind,
            n,
            queries: block,
            selectivity: s,
            seed: seed.wrapping_add(b).wrapping_mul(0x9E37),
        };
        out.extend(spec.generate().into_iter().take(take));
        b += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000;
    const Q: usize = 2_000;

    fn spec(kind: WorkloadKind) -> WorkloadSpec {
        WorkloadSpec::new(kind, N, Q, 42)
    }

    #[test]
    fn all_patterns_stay_in_domain_and_nonempty() {
        for kind in WorkloadKind::all_concrete()
            .into_iter()
            .chain([WorkloadKind::Mixed])
        {
            let qs = spec(kind).generate();
            assert_eq!(qs.len(), Q, "{kind:?}");
            for (i, r) in qs.iter().enumerate() {
                assert!(!r.is_empty(), "{kind:?} query {i} empty: {r}");
                assert!(r.high <= N, "{kind:?} query {i} out of domain: {r}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in [
            WorkloadKind::Random,
            WorkloadKind::Mixed,
            WorkloadKind::SeqRandom,
        ] {
            assert_eq!(spec(kind).generate(), spec(kind).generate());
            let other = WorkloadSpec::new(kind, N, Q, 43).generate();
            assert_ne!(spec(kind).generate(), other, "{kind:?} ignores seed");
        }
    }

    #[test]
    fn sequential_walks_left_to_right() {
        let qs = spec(WorkloadKind::Sequential).generate();
        for w in qs.windows(2) {
            assert!(w[0].low <= w[1].low);
        }
        assert_eq!(qs[0].low, 0);
        assert!(
            qs.last().unwrap().high > N * 9 / 10,
            "must reach the domain end"
        );
        // Fixed selectivity.
        assert!(qs.iter().all(|r| r.width() == 10));
    }

    #[test]
    fn seq_reverse_is_sequential_reversed() {
        let seq = spec(WorkloadKind::Sequential).generate();
        let rev = spec(WorkloadKind::SeqReverse).generate();
        let mut seq_rev = seq;
        seq_rev.reverse();
        assert_eq!(rev, seq_rev);
    }

    #[test]
    fn zoom_in_shrinks_around_center() {
        let qs = spec(WorkloadKind::ZoomIn).generate();
        assert!(qs[0].width() > qs[Q - 1].width());
        for w in qs.windows(2) {
            assert!(
                w[1].low >= w[0].low && w[1].high <= w[0].high,
                "must nest inward"
            );
        }
        let last = qs.last().unwrap();
        assert!(
            last.low <= N / 2 && N / 2 <= last.high + 1,
            "converges near center"
        );
    }

    #[test]
    fn zoom_out_alt_alternates_sides_of_center() {
        let qs = spec(WorkloadKind::ZoomOutAlt).generate();
        for (i, r) in qs.iter().enumerate().skip(2) {
            if i % 2 == 0 {
                assert!(r.low >= N / 2, "even queries above center, got {r} at {i}");
            } else {
                assert!(r.low <= N / 2, "odd queries below center, got {r} at {i}");
            }
        }
    }

    #[test]
    fn zoom_in_alt_converges_from_both_ends() {
        let qs = spec(WorkloadKind::ZoomInAlt).generate();
        assert_eq!(qs[0].low, 0);
        assert!(
            qs[1].low > N * 9 / 10,
            "first odd query starts near the top end"
        );
        let last_even = &qs[Q - 2];
        let last_odd = &qs[Q - 1];
        assert!(last_even.low > N / 4, "even side must approach center");
        assert!(last_odd.low < 3 * N / 4, "odd side must approach center");
    }

    #[test]
    fn skew_respects_phase_split() {
        let qs = spec(WorkloadKind::Skew).generate();
        let split = Q * 4 / 5;
        assert!(qs[..split].iter().all(|r| r.low < N * 4 / 5));
        assert!(qs[split..].iter().all(|r| r.low >= N * 4 / 5));
    }

    #[test]
    fn periodic_wraps_multiple_times() {
        let qs = spec(WorkloadKind::Periodic).generate();
        let wraps = qs.windows(2).filter(|w| w[1].low < w[0].low).count();
        assert!(wraps >= 5, "expected several sweeps, saw {wraps}");
    }

    #[test]
    fn seq_random_low_bounds_advance() {
        let qs = spec(WorkloadKind::SeqRandom).generate();
        for w in qs.windows(2) {
            assert!(w[0].low <= w[1].low);
        }
    }

    #[test]
    fn seq_zoom_in_covers_blocks() {
        let qs = WorkloadSpec::new(WorkloadKind::SeqZoomIn, N, 3000, 1).generate();
        // Three blocks of 1000: block starts at 0, W, 2W.
        let w = N / 3;
        assert!(qs[0].low < 10);
        assert!((qs[1000].low as i64 - w as i64).unsigned_abs() < w / 3);
        assert!((qs[2000].low as i64 - 2 * w as i64).unsigned_abs() < w / 3);
        // Within a block the ranges nest.
        assert!(qs[999].width() < qs[0].width());
    }

    #[test]
    fn selectivity_override() {
        let qs = spec(WorkloadKind::Random).with_selectivity(500).generate();
        assert!(qs.iter().all(|r| r.width() == 500));
    }

    #[test]
    fn tiny_domain_does_not_panic() {
        for kind in WorkloadKind::all_concrete()
            .into_iter()
            .chain([WorkloadKind::Mixed])
        {
            let qs = WorkloadSpec::new(kind, 16, 50, 3)
                .with_selectivity(4)
                .generate();
            assert_eq!(qs.len(), 50);
            assert!(qs.iter().all(|r| !r.is_empty() && r.high <= 16));
        }
    }
}
