//! Column data generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_types::Element;

/// The paper's standard dataset: a seeded random permutation of the unique
/// integers `0..n` ("the dataset is N = 10^8 unique integers in range
/// \[0, N)", Fig. 7 notes). Rowids are assigned in physical order.
pub fn unique_permutation<E: Element>(n: u64, seed: u64) -> Vec<E> {
    let mut keys: Vec<u64> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fisher-Yates.
    for i in (1..keys.len()).rev() {
        let j = rng.gen_range(0..=i);
        keys.swap(i, j);
    }
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| E::from_key_row(k, i as u32))
        .collect()
}

/// `n` keys drawn uniformly (with repetition) from `[0, domain)`; for
/// duplicate-heavy robustness tests.
pub fn uniform_with_duplicates<E: Element>(n: u64, domain: u64, seed: u64) -> Vec<E> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| E::from_key_row(rng.gen_range(0..domain.max(1)), i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_complete_and_seeded() {
        let a: Vec<u64> = unique_permutation(1000, 7);
        let b: Vec<u64> = unique_permutation(1000, 7);
        let c: Vec<u64> = unique_permutation(1000, 8);
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, c, "different seed, different permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn permutation_is_shuffled() {
        let a: Vec<u64> = unique_permutation(1000, 7);
        let fixed_points = a
            .iter()
            .enumerate()
            .filter(|(i, k)| *i as u64 == **k)
            .count();
        assert!(fixed_points < 50, "suspiciously unshuffled: {fixed_points}");
    }

    #[test]
    fn duplicates_stay_in_domain() {
        let d: Vec<u64> = uniform_with_duplicates(500, 10, 3);
        assert!(d.iter().all(|k| *k < 10));
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn tuple_rowids_are_physical_positions() {
        let d: Vec<scrack_types::Tuple> = unique_permutation(100, 1);
        for (i, t) in d.iter().enumerate() {
            assert_eq!(t.row as usize, i);
        }
    }
}
