//! Integration tests: the chooser is exact on every workload, and its
//! learning policies actually steer toward the robust arms.

use scrack_chooser::{Action, ChooserEngine, PolicyKind};
use scrack_core::{build_engine, CrackConfig, Engine, EngineKind, Oracle};
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{WorkloadKind, WorkloadSpec};

const N: u64 = 100_000;
const QUERIES: usize = 300;
const SEED: u64 = 20120827;

fn run_chooser(kind: PolicyKind, workload: WorkloadKind) -> (ChooserEngine<u64>, u64) {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let oracle = Oracle::new(&data);
    let mut engine = ChooserEngine::from_kind(data, CrackConfig::default(), SEED, kind);
    let queries = WorkloadSpec::new(workload, N, QUERIES, SEED).generate();
    for (i, q) in queries.iter().enumerate() {
        let out = engine.select(*q);
        assert_eq!(
            out.len(),
            oracle.count(*q),
            "{kind:?} on {workload:?}: wrong count at query {i}"
        );
        assert_eq!(
            out.key_checksum(engine.data()),
            oracle.checksum(*q),
            "{kind:?} on {workload:?}: wrong checksum at query {i}"
        );
    }
    engine.column().check_integrity().unwrap();
    let touched = engine.stats().touched;
    (engine, touched)
}

#[test]
fn oracle_equivalence_all_policies_all_workloads() {
    for kind in PolicyKind::sweep() {
        for workload in [
            WorkloadKind::Random,
            WorkloadKind::Sequential,
            WorkloadKind::ZoomIn,
            WorkloadKind::Periodic,
        ] {
            run_chooser(kind, workload);
        }
    }
}

/// Reference touched-tuple totals for the pure engines on a workload.
fn pure_engine_touched(kind: EngineKind, workload: WorkloadKind) -> u64 {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let mut engine = build_engine(kind, data, CrackConfig::default(), SEED);
    for q in WorkloadSpec::new(workload, N, QUERIES, SEED).generate() {
        engine.select(q);
    }
    engine.stats().touched
}

/// On the Sequential workload the bandits must learn to avoid the
/// pathological original-cracking arm: their total physical cost has to
/// land far below pure Crack (the arm a workload-blind engine would be
/// stuck with) and within a small factor of pure MDD1R.
#[test]
fn bandits_escape_the_sequential_pathology() {
    let crack = pure_engine_touched(EngineKind::Crack, WorkloadKind::Sequential);
    let scrack = pure_engine_touched(EngineKind::Mdd1r, WorkloadKind::Sequential);
    assert!(
        crack > scrack * 5,
        "precondition: the pathology exists at this scale ({crack} vs {scrack})"
    );
    for kind in [
        PolicyKind::EpsilonGreedy,
        PolicyKind::Ucb1,
        PolicyKind::Contextual,
    ] {
        let (engine, touched) = run_chooser(kind, WorkloadKind::Sequential);
        assert!(
            touched < crack / 2,
            "{kind:?} did not escape the pathology: {touched} vs Crack {crack}"
        );
        // The *flat* bandits can only escape by globally preferring the
        // stochastic arms. The contextual bandit is exempt: it learns a
        // size-conditional policy whose Crack pulls concentrate in small
        // buckets (where the paper itself says original cracking is
        // right), so its global pull counts prove nothing either way —
        // its robustness is asserted on `touched` above and its
        // conditioning in the `learns_size_conditional_policy` unit test.
        if kind != PolicyKind::Contextual {
            let pulls = engine.arm_pulls();
            let stochastic: u64 = pulls[1..].iter().sum();
            assert!(
                stochastic > pulls[0],
                "{kind:?} kept pulling the Crack arm: {pulls:?}"
            );
        }
    }
}

/// On the Random workload nothing is pathological; the learned policies
/// must stay within a modest factor of pure original cracking (the paper's
/// "only a minimal overhead with random ones" summary for stochastic
/// cracking carries over to the chooser).
#[test]
fn bandits_stay_cheap_on_random() {
    let crack = pure_engine_touched(EngineKind::Crack, WorkloadKind::Random);
    for kind in [
        PolicyKind::EpsilonGreedy,
        PolicyKind::Ucb1,
        PolicyKind::PieceAware,
        PolicyKind::Contextual,
    ] {
        let (_, touched) = run_chooser(kind, WorkloadKind::Random);
        assert!(
            touched < crack * 4,
            "{kind:?} overhead too large on Random: {touched} vs Crack {crack}"
        );
    }
}

/// The PieceAware cost model must match continuous stochastic cracking on
/// Sequential: its large-piece branch fires exactly while large unindexed
/// pieces exist.
#[test]
fn piece_aware_is_robust_on_sequential() {
    let scrack = pure_engine_touched(EngineKind::Mdd1r, WorkloadKind::Sequential);
    let (_, touched) = run_chooser(PolicyKind::PieceAware, WorkloadKind::Sequential);
    assert!(
        touched < scrack * 3,
        "PieceAware lost robustness: {touched} vs MDD1R {scrack}"
    );
}

/// Fixed(0) must behave exactly like the pure Crack engine: same touched
/// count, same pulls. This pins the chooser's plumbing overhead at zero
/// reorganization semantics.
#[test]
fn fixed_arm_reproduces_pure_engine_costs() {
    let crack = pure_engine_touched(EngineKind::Crack, WorkloadKind::Sequential);
    let (engine, touched) = run_chooser(PolicyKind::Fixed(0), WorkloadKind::Sequential);
    assert_eq!(touched, crack, "Fixed(0) deviates from pure Crack");
    assert_eq!(engine.arm_pulls()[0], QUERIES as u64);
}

/// A custom menu restricted to progressive arms still answers exactly.
#[test]
fn custom_menu_progressive_only() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let oracle = Oracle::new(&data);
    let mut engine = ChooserEngine::with_menu(
        data,
        CrackConfig::default(),
        SEED,
        PolicyKind::EpsilonGreedy.build(),
        vec![Action::Progressive(1), Action::Progressive(10), Action::Progressive(50)],
    );
    for q in WorkloadSpec::new(WorkloadKind::ZoomInAlt, N, QUERIES, SEED).generate() {
        let out = engine.select(q);
        assert_eq!(out.len(), oracle.count(q));
        assert_eq!(out.key_checksum(engine.data()), oracle.checksum(q));
    }
    engine.column().check_integrity().unwrap();
}

/// Switching workload mid-run (Sequential → Random → ZoomIn) keeps the
/// chooser exact and the EWMA bandits solvent — the non-stationary setting
/// the forget factor exists for.
#[test]
fn workload_switch_mid_run() {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let oracle = Oracle::new(&data);
    let mut engine =
        ChooserEngine::from_kind(data, CrackConfig::default(), SEED, PolicyKind::Ucb1);
    for workload in [
        WorkloadKind::Sequential,
        WorkloadKind::Random,
        WorkloadKind::ZoomIn,
    ] {
        for q in WorkloadSpec::new(workload, N, 100, SEED).generate() {
            let out = engine.select(q);
            assert_eq!(out.len(), oracle.count(q), "on {workload:?}");
        }
    }
    engine.column().check_integrity().unwrap();
}
