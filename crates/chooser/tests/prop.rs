//! Differential property tests for the self-driving engine.
//!
//! The self-driving engine's contract is that a config switch is pure
//! mechanism: whatever arm sequence the policy produces, the answers and
//! the §3 cost accounting must be *exactly* what you would get by
//! hand-building the corresponding factory engines and replaying the
//! same switch schedule over the same data — flush pending, carry the
//! physical tuple order, retire the segment's stats, derive the next
//! segment's seed with [`switch_seed`]. These tests drive random action
//! sequences over the **full** config cross-product (every
//! update-capable engine × kernel × index × update policy) through
//! random interleaved query/insert/delete streams and assert:
//!
//! * **oracle equality** — every answer matches a sorted-vec multiset
//!   model, across arbitrarily many switches;
//! * **replay equality** — answers, cumulative `Stats`, and the switch
//!   log are bit-identical to the hand-replay on factory engines;
//! * **determinism** — a fixed seed reproduces the identical arm pulls,
//!   action log, and stats under a learning (ε-greedy) policy.

use proptest::prelude::*;
use scrack_chooser::bandit::EpsilonGreedy;
use scrack_chooser::policy::Script;
use scrack_chooser::{switch_seed, ConfigSpace, SelfDrivingEngine, SwitchEvent};
use scrack_core::{CrackConfig, Engine};
use scrack_types::{QueryRange, Stats};
use scrack_updates::build_update_engine;

const N: u64 = 2_000;
/// Update keys may land beyond the original domain (appends).
const KEY_SPAN: u64 = 3 * N / 2;
const EPOCH: u64 = 12;

/// One step of an interleaved read/write stream.
#[derive(Clone, Debug)]
enum Op {
    Query(u64, u64),
    Insert(u64),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest stub has no weighted prop_oneof; repeating
    // the query arm approximates a 2:1:1 read/write mix.
    prop_oneof![
        (0u64..N, 1u64..300).prop_map(|(a, w)| Op::Query(a, w)),
        (0u64..N, 1u64..300).prop_map(|(a, w)| Op::Query(a, w)),
        (0u64..KEY_SPAN).prop_map(Op::Insert),
        (0u64..KEY_SPAN).prop_map(Op::Delete),
    ]
}

/// The sorted-vec oracle: inserts add one instance, deletes remove one
/// instance (an absent key evaporates), pending updates become visible
/// to the first qualifying query — the `PendingUpdates` contract.
struct Model {
    keys: Vec<u64>,
    pending_inserts: Vec<u64>,
    pending_deletes: Vec<u64>,
}

impl Model {
    fn new(data: &[u64]) -> Self {
        let mut keys = data.to_vec();
        keys.sort_unstable();
        Self {
            keys,
            pending_inserts: Vec::new(),
            pending_deletes: Vec::new(),
        }
    }

    fn query(&mut self, q: QueryRange) -> (usize, u64) {
        let mut ins = Vec::new();
        self.pending_inserts.retain(|k| {
            let take = q.contains(*k);
            if take {
                ins.push(*k);
            }
            !take
        });
        for k in ins {
            let at = self.keys.partition_point(|x| *x < k);
            self.keys.insert(at, k);
        }
        let mut del = Vec::new();
        self.pending_deletes.retain(|k| {
            let take = q.contains(*k);
            if take {
                del.push(*k);
            }
            !take
        });
        for k in del {
            let at = self.keys.partition_point(|x| *x < k);
            if self.keys.get(at) == Some(&k) {
                self.keys.remove(at);
            }
        }
        let lo = self.keys.partition_point(|x| *x < q.low);
        let hi = self.keys.partition_point(|x| *x < q.high);
        let sum = self.keys[lo..hi].iter().fold(0u64, |s, k| s.wrapping_add(*k));
        (hi - lo, sum)
    }
}

fn column(salt: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..N).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

fn config() -> CrackConfig {
    CrackConfig::default()
        .with_crack_size(64)
        .with_progressive_threshold(256)
}

/// Drives the self-driving engine through `ops` under a scripted switch
/// schedule, asserting oracle equality along the way.
fn run_self_driving(
    ops: &[Op],
    script: &[usize],
    seed: u64,
) -> (Vec<(usize, u64)>, Stats, Vec<SwitchEvent>) {
    let data = column(seed);
    let mut model = Model::new(&data);
    let mut engine = SelfDrivingEngine::new(
        data,
        config(),
        seed,
        Box::new(Script::new(script.to_vec())),
        ConfigSpace::full(),
    )
    .with_epoch_len(EPOCH)
    .with_stop_factor(None);
    let mut answers = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Query(a, w) => {
                let q = QueryRange::new(a, a + w);
                let out = engine.select(q);
                let got = (out.len(), out.key_checksum(engine.data()));
                let want = model.query(q);
                assert_eq!(got, want, "self-driving: step {i} query {q} wrong");
                answers.push(got);
            }
            Op::Insert(k) => {
                engine.insert(k);
                model.pending_inserts.push(k);
            }
            Op::Delete(k) => {
                engine.delete(k);
                model.pending_deletes.push(k);
            }
        }
    }
    engine.check_integrity().unwrap();
    (answers, engine.stats(), engine.switch_log().to_vec())
}

/// The reference: hand-replays the same switch schedule on factory
/// engines — the quarantine-rebuild contract spelled out move by move.
fn hand_replay(ops: &[Op], script: &[usize], seed: u64) -> (Vec<(usize, u64)>, Stats, Vec<SwitchEvent>) {
    let space = ConfigSpace::full();
    let arm_at = |decision: usize| script[decision.min(script.len() - 1)];
    let mut current = arm_at(0);
    let first = space.arm(current);
    let mut engine =
        build_update_engine(first.engine, column(seed), first.crack_config(config()), switch_seed(seed, 0));
    let mut retired = Stats::new();
    let mut segments = 1u64;
    let mut decision = 1usize;
    let mut switches = Vec::new();
    let mut answers = Vec::new();
    let (mut query_no, mut epoch_queries) = (0u64, 0u64);
    for op in ops {
        match *op {
            Op::Query(a, w) => {
                if query_no > 0 && epoch_queries >= EPOCH {
                    let next = arm_at(decision);
                    decision += 1;
                    if next != current {
                        engine.flush();
                        retired += engine.stats();
                        let data = engine.data().to_vec();
                        let s = switch_seed(seed, segments);
                        let arm = space.arm(next);
                        engine = build_update_engine(arm.engine, data, arm.crack_config(config()), s);
                        switches.push(SwitchEvent {
                            at_query: query_no,
                            from: current,
                            to: next,
                            seed: s,
                        });
                        segments += 1;
                        current = next;
                    }
                    epoch_queries = 0;
                }
                let out = engine.select(QueryRange::new(a, a + w));
                answers.push((out.len(), out.key_checksum(engine.data())));
                query_no += 1;
                epoch_queries += 1;
            }
            Op::Insert(k) => engine.insert(k),
            Op::Delete(k) => engine.delete(k),
        }
    }
    (answers, retired + engine.stats(), switches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random action sequences over the full cross-product: the
    /// self-driving engine is oracle-exact and bit-identical — answers,
    /// cumulative stats, switch log — to the factory-engine hand-replay.
    #[test]
    fn scripted_switching_matches_factory_hand_replay(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        script in proptest::collection::vec(0usize..180, 1..12),
        seed in 0u64..1_000,
    ) {
        let (answers, stats, switches) = run_self_driving(&ops, &script, seed);
        let (ref_answers, ref_stats, ref_switches) = hand_replay(&ops, &script, seed);
        prop_assert_eq!(answers, ref_answers, "answers diverged from hand-replay");
        prop_assert_eq!(stats, ref_stats, "stats diverged from hand-replay");
        prop_assert_eq!(switches, ref_switches, "switch log diverged from hand-replay");
    }

    /// A fixed seed reproduces the identical decision trajectory under a
    /// learning policy: same arm pulls, same action log, same switches,
    /// same stats — the property the gauntlet's replay gate is built on.
    #[test]
    fn fixed_seed_reproduces_learning_trajectory(
        ops in proptest::collection::vec(op_strategy(), 20..100),
        seed in 0u64..1_000,
    ) {
        let run = |_: ()| {
            let data = column(seed);
            let mut engine = SelfDrivingEngine::new(
                data,
                config(),
                seed,
                Box::new(EpsilonGreedy::with_schedule(0.3, 8.0, 0.3)),
                ConfigSpace::default_space(),
            )
            .with_epoch_len(EPOCH);
            for op in &ops {
                match *op {
                    Op::Query(a, w) => {
                        let _ = engine.select(QueryRange::new(a, a + w));
                    }
                    Op::Insert(k) => engine.insert(k),
                    Op::Delete(k) => engine.delete(k),
                }
            }
            (
                engine.arm_pulls().to_vec(),
                engine.action_log().to_vec(),
                engine.switch_log().to_vec(),
                engine.stats(),
            )
        };
        prop_assert_eq!(run(()), run(()), "fixed seed must replay bit-identically");
    }
}
