//! Mid-stream phase change: the self-driving engine must notice that its
//! committed arm has turned pathological and re-explore its way out.
//!
//! The scripted scenario is a random→sequential flip built to create
//! genuine distress: phase 1 runs random queries confined to the lowest
//! eighth of the domain (so the rest of the column stays uncracked),
//! phase 2 walks the untouched upper region sequentially. For plain
//! cracking that walk is the paper's §2 pathology — every query rescans
//! the shrinking unindexed tail — while MDD1R's random cuts shrug it
//! off. The action space is deliberately ordered `[Crack, MDD1R]` so the
//! engine *opens on the arm that will fail*, and the policy runs with
//! ε = 0 so every post-flip pull of MDD1R is attributable to observed
//! cost alone, not exploration luck.
//!
//! Asserted:
//! * every answer is oracle-exact across the flip and the switch;
//! * no switch happens before the flip (phase 1 is genuinely sticky);
//! * the engine re-explores within a few epochs of the flip, lands on
//!   MDD1R, and stays there;
//! * post-flip cumulative §3 cost stays within the gauntlet factor (2×)
//!   of the best static config's post-flip cost on the same stream.

use scrack_chooser::bandit::EpsilonGreedy;
use scrack_chooser::{ConfigArm, ConfigSpace, SelfDrivingEngine};
use scrack_core::{build_engine, CrackConfig, Engine, EngineKind, Oracle};
use scrack_types::{QueryRange, Stats};
use scrack_workloads::data::unique_permutation;

const N: u64 = 40_000;
const PHASE1: usize = 320;
const PHASE2: usize = 640;
const WIDTH: u64 = 40;
const EPOCH: u64 = 32;
const SEED: u64 = 20120827;
/// The gauntlet's default regret gate.
const FACTOR: f64 = 2.0;

/// Phase 1: random lows confined to `[0, N/8)`; phase 2: a sequential
/// walk of the uncracked remainder `[N/8, N)`.
fn flip_stream() -> Vec<QueryRange> {
    let hot = N / 8 - WIDTH;
    let mut state = SEED | 1;
    let mut queries = Vec::with_capacity(PHASE1 + PHASE2);
    for _ in 0..PHASE1 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let low = state % hot;
        queries.push(QueryRange::new(low, low + WIDTH));
    }
    let step = (N - N / 8 - WIDTH) / PHASE2 as u64;
    for j in 0..PHASE2 as u64 {
        let low = N / 8 + j * step;
        queries.push(QueryRange::new(low, low + WIDTH));
    }
    queries
}

fn cost(stats: Stats) -> u64 {
    stats.touched + stats.materialized
}

/// Post-flip §3 cost of a static engine over the same stream.
fn static_post_flip(kind: EngineKind) -> u64 {
    let data: Vec<u64> = unique_permutation(N, SEED);
    let mut engine = build_engine(kind, data, CrackConfig::default(), SEED);
    let queries = flip_stream();
    for q in &queries[..PHASE1] {
        engine.select(*q);
    }
    let at_flip = cost(engine.stats());
    for q in &queries[PHASE1..] {
        engine.select(*q);
    }
    cost(engine.stats()) - at_flip
}

#[test]
fn flip_triggers_reexploration_within_the_regret_gate() {
    let space = ConfigSpace::new(vec![
        ConfigArm::engine_only(EngineKind::Crack),
        ConfigArm::engine_only(EngineKind::Mdd1r),
    ]);
    let data: Vec<u64> = unique_permutation(N, SEED);
    let oracle = Oracle::new(&data);
    let mut engine = SelfDrivingEngine::new(
        data,
        CrackConfig::default(),
        SEED,
        // ε = 0: pulls of the second arm can only come from observed
        // cost crossing the prior, never from random exploration.
        Box::new(EpsilonGreedy::with_schedule(0.0, 2.0, 0.5)),
        space,
    )
    .with_epoch_len(EPOCH)
    .with_min_probe(4);
    assert_eq!(engine.current_arm(), 0, "ties must open on the first arm");

    let queries = flip_stream();
    let mut at_flip = Stats::new();
    for (i, q) in queries.iter().enumerate() {
        if i == PHASE1 {
            at_flip = engine.stats();
        }
        let out = engine.select(*q);
        assert_eq!(
            (out.len(), out.key_checksum(engine.data())),
            (oracle.count(*q), oracle.checksum(*q)),
            "query {i} wrong"
        );
    }
    engine.check_integrity().unwrap();

    // Phase 1 is sticky: the first switch — and therefore the first pull
    // of MDD1R — happens after the flip, and within a few epochs of it.
    let switches = engine.switch_log();
    assert!(!switches.is_empty(), "the flip must force a switch");
    assert!(
        switches[0].at_query >= PHASE1 as u64,
        "no switch may fire before the flip (got query {})",
        switches[0].at_query
    );
    assert!(
        switches[0].at_query <= (PHASE1 as u64) + 3 * EPOCH,
        "re-exploration must start within 3 epochs of the flip (got query {})",
        switches[0].at_query
    );
    assert_eq!(switches[0].to, 1, "the escape must land on MDD1R");
    assert_eq!(engine.current_arm(), 1, "and stay there");
    assert!(engine.arm_pulls()[1] > 0, "re-exploration shows in the pulls");

    // Post-flip regret: cumulative §3 cost from the flip onward within
    // the gauntlet factor of the best static config.
    let chooser_post = cost(engine.stats()) - cost(at_flip);
    let best_post = [EngineKind::Crack, EngineKind::Mdd1r]
        .into_iter()
        .map(static_post_flip)
        .min()
        .expect("two statics");
    assert!(
        (chooser_post as f64) <= FACTOR * best_post as f64,
        "post-flip cost {chooser_post} exceeds {FACTOR}x best static {best_post}"
    );
    // And the pathology is real: the arm the engine abandoned would have
    // paid an order of magnitude more than the gate allows.
    let crack_post = static_post_flip(EngineKind::Crack);
    assert!(
        crack_post as f64 > FACTOR * best_post as f64 * 5.0,
        "precondition: the abandoned arm must be pathological \
         (Crack {crack_post} vs best {best_post})"
    );
}
