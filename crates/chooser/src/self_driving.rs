//! The self-driving engine: online config switching at epoch granularity.
//!
//! [`ChooserEngine`](crate::ChooserEngine) picks a crack *path* per query,
//! but all paths share one column under one fixed [`CrackConfig`] — it can
//! never move between engine families that need different construction
//! (selective wrappers, RNcrack) or different config axes (update policy).
//! [`SelfDrivingEngine`] closes that gap: its action space is a
//! [`ConfigSpace`] over the full live cross-product, and switching arms
//! *rebuilds* the engine over the current physical data — exactly the
//! PR-7 `quarantine_rebuild` semantics (index discarded, tuple multiset
//! preserved), so every answer stays oracle-exact across a switch.
//!
//! Because a switch costs a rebuild, decisions run at **epoch**
//! granularity: every [`epoch_len`](SelfDrivingEngine::with_epoch_len)
//! queries the engine feeds the finished epoch's per-query §3 cost
//! (touched + materialized tuples) to its [`ChoicePolicy`] and asks for
//! the next arm. A **stop-loss** guard bounds exploration damage: an
//! epoch whose projected cost exceeds
//! [`stop_factor`](SelfDrivingEngine::with_stop_factor) × the cheapest
//! per-query cost seen so far is cut short and charged to its arm
//! immediately — without it, one pull of a pathological arm (plain
//! cracking under a sequential scan, say) could cost more than a whole
//! converged stream.
//!
//! Switch economics shape the whole decision loop. Cracking cost is
//! logarithmically front-loaded — the first few dozen queries after a
//! rebuild cost the majority of a converged stream's total — so a bandit
//! that force-probes every arm from scratch pays several multiples of
//! the best static config before it has learned anything. Three
//! mechanisms keep regret bounded instead:
//!
//! * **Prior seeding.** At construction every arm's estimate is seeded
//!   with a finite prior cost ([`DEFAULT_PRIOR_RATE`](Self::DEFAULT_PRIOR_RATE)
//!   of a column scan per query), so no policy ever *has* to pull an
//!   untried arm. Estimate ties break toward earlier arms, and menu
//!   order encodes the paper's robustness ranking
//!   ([`ConfigSpace::default_space`] opens on MDD1R) — the engine stays
//!   on the robust default until observed cost beats it, and switches
//!   away the moment the live arm's estimate decays past the prior.
//! * **Grace epochs.** The first epoch after any rebuild is judged
//!   against an absolute budget
//!   ([`DEFAULT_GRACE_FACTOR`](Self::DEFAULT_GRACE_FACTOR) × column
//!   length) instead of the stop-loss floor: a healthy arm's cold-start
//!   spike fits under it, while a pathological arm is cut within a few
//!   column scans.
//! * **Observation sharing.** Kernel and index policies are wall-clock
//!   knobs with bit-identical `Stats`, and update policies differ by a
//!   couple of percent at realistic rates — below epoch-granular
//!   resolution. Each epoch's cost observation is therefore replayed
//!   onto every arm in the live arm's §3 cost class (same engine). A
//!   distressed arm drags its cost-twins down with it, so the escape
//!   jumps straight to a genuinely different engine instead of burning
//!   rebuilds on indistinguishable variants.
//!
//! Everything is deterministic for a fixed seed: the policy RNG is the
//! only randomness in the decision loop, per-segment engine seeds derive
//! from [`switch_seed`], and costs are counter-based, so a replay
//! reproduces the identical action sequence (the gauntlet asserts this
//! bit-for-bit).

use crate::config_space::ConfigSpace;
use crate::context::QueryContext;
use crate::policy::ChoicePolicy;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_columnstore::QueryOutput;
use scrack_core::{CrackConfig, Engine};
use scrack_types::{Element, QueryRange, Stats};
use scrack_updates::{build_update_engine, CrackAccess, Updatable, UpdateEngine};

/// One online config switch, recorded for replay and audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Query number (0-based) the new config took effect at.
    pub at_query: u64,
    /// Arm index the engine switched away from.
    pub from: usize,
    /// Arm index the engine switched to.
    pub to: usize,
    /// Seed the new engine segment was built with.
    pub seed: u64,
}

/// The seed for the `nth` engine segment (0 = the initial build) under a
/// base seed. Public so differential tests can hand-replay a switch
/// schedule on factory engines with bit-identical randomness.
pub fn switch_seed(base: u64, nth: u64) -> u64 {
    base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(nth.wrapping_add(1))
}

/// An engine that re-decides its own configuration online (see module
/// docs). Implements [`Engine`] plus the update entry points of
/// [`Updatable`], so it slots anywhere a factory engine does, on mixed
/// read/write streams too.
pub struct SelfDrivingEngine<E: Element> {
    engine: Updatable<Box<dyn UpdateEngine<E>>, E>,
    space: ConfigSpace,
    base: CrackConfig,
    base_seed: u64,
    policy: Box<dyn ChoicePolicy>,
    policy_rng: SmallRng,
    epoch_len: u64,
    stop_factor: Option<f64>,
    min_probe: u64,
    current_arm: usize,
    /// Queries answered in the running epoch.
    epoch_queries: u64,
    /// Engine-local stats snapshot at the running epoch's start.
    epoch_start: Stats,
    /// Context captured at the running epoch's start.
    epoch_ctx: QueryContext,
    /// Cheapest completed per-query cost seen so far (stop-loss floor).
    best_per_query: Option<f64>,
    /// Epochs completed by the current engine segment (0 ⇒ the running
    /// epoch is the segment's cold-start grace epoch).
    segment_epochs: u64,
    /// Stats retired by completed engine segments.
    retired: Stats,
    pulls: Vec<u64>,
    actions: Vec<usize>,
    switches: Vec<SwitchEvent>,
    query_no: u64,
    segments: u64,
}

impl<E: Element> std::fmt::Debug for SelfDrivingEngine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfDrivingEngine")
            .field("policy", &self.policy)
            .field("current_arm", &self.current_arm)
            .field("arms", &self.space.len())
            .field("query_no", &self.query_no)
            .field("switches", &self.switches.len())
            .finish_non_exhaustive()
    }
}

impl<E: Element> SelfDrivingEngine<E> {
    /// Default queries per decision epoch.
    pub const DEFAULT_EPOCH_LEN: u64 = 64;
    /// Default stop-loss factor (see module docs).
    pub const DEFAULT_STOP_FACTOR: f64 = 4.0;
    /// Queries an epoch must serve before stop-loss may cut it short
    /// (lets a freshly rebuilt engine absorb its cold-start cost).
    pub const DEFAULT_MIN_PROBE: u64 = 8;
    /// Prior per-query cost every arm is seeded with, as a fraction of a
    /// full column scan. High enough that a healthy arm's sustained rate
    /// stays below it even under heavy update-merge traffic (so the
    /// engine sticks), low enough that a pathological arm's stop-lossed
    /// epochs (whose clamped rate is ~1.0) push its estimate past it
    /// within a couple of decisions (so the engine escapes).
    pub const DEFAULT_PRIOR_RATE: f64 = 0.30;
    /// Absolute budget for a segment's first (grace) epoch, in column
    /// scans: the cold-start re-crack of a healthy arm costs a handful of
    /// scans, a pathological arm is cut the moment it exceeds this.
    pub const DEFAULT_GRACE_FACTOR: f64 = 6.0;

    /// Builds the engine over `space`, starting on the policy's first
    /// choice.
    pub fn new(
        data: Vec<E>,
        base: CrackConfig,
        seed: u64,
        mut policy: Box<dyn ChoicePolicy>,
        space: ConfigSpace,
    ) -> Self {
        let mut policy_rng = SmallRng::seed_from_u64(seed ^ 0xC0F1_65E1);
        let ctx0 = Self::cold_context(data.len(), base);
        // Seed every arm with the finite prior so no policy is forced to
        // round-robin through from-scratch rebuilds of the whole menu.
        let prior = Self::DEFAULT_PRIOR_RATE * data.len() as f64;
        for arm in 0..space.len() {
            policy.observe(arm, &ctx0, &ctx0, prior);
        }
        let arm = policy.choose(&ctx0, space.len(), &mut policy_rng);
        let first = space.arm(arm);
        let engine = build_update_engine(
            first.engine,
            data,
            first.crack_config(base),
            switch_seed(seed, 0),
        );
        let mut pulls = vec![0u64; space.len()];
        pulls[arm] += 1;
        Self {
            engine,
            space,
            base,
            base_seed: seed,
            policy,
            policy_rng,
            epoch_len: Self::DEFAULT_EPOCH_LEN,
            stop_factor: Some(Self::DEFAULT_STOP_FACTOR),
            min_probe: Self::DEFAULT_MIN_PROBE,
            current_arm: arm,
            epoch_queries: 0,
            epoch_start: Stats::new(),
            epoch_ctx: ctx0,
            best_per_query: None,
            segment_epochs: 0,
            retired: Stats::new(),
            pulls,
            actions: vec![arm],
            switches: Vec::new(),
            query_no: 0,
            segments: 1,
        }
    }

    /// The default self-driving setup: ε-greedy tuned for epoch
    /// granularity over [`ConfigSpace::default_space`]. A stream sees a
    /// few dozen decisions and every switch costs an O(n) rebuild, so ε
    /// decays fast (proactive exploration is a rarity, not a schedule)
    /// and the forget factor is strong (two distressed epochs move an
    /// estimate past the prior).
    pub fn new_default(data: Vec<E>, base: CrackConfig, seed: u64) -> Self {
        let policy = crate::bandit::EpsilonGreedy::with_schedule(0.1, 2.0, 0.3);
        Self::new(data, base, seed, Box::new(policy), ConfigSpace::default_space())
    }

    /// Overrides the decision epoch length (queries per decision).
    ///
    /// # Panics
    /// If `epoch_len` is zero.
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        self.epoch_len = epoch_len;
        self
    }

    /// Overrides the stop-loss factor; `None` disables the guard, making
    /// every epoch exactly [`epoch_len`](Self::with_epoch_len) queries —
    /// what the differential tests use to hand-replay schedules.
    pub fn with_stop_factor(mut self, factor: Option<f64>) -> Self {
        assert!(
            factor.is_none_or(|f| f > 1.0),
            "stop factor must exceed 1.0"
        );
        self.stop_factor = factor;
        self
    }

    /// Overrides how many queries an epoch must serve before stop-loss
    /// may cut it short. Lower values bound a pathological epoch's damage
    /// tighter (a distress probe costs `min_probe` bad queries) at the
    /// price of noisier truncated-epoch cost estimates.
    ///
    /// # Panics
    /// If `min_probe` is zero.
    pub fn with_min_probe(mut self, min_probe: u64) -> Self {
        assert!(min_probe > 0, "min probe must be positive");
        self.min_probe = min_probe;
        self
    }

    /// The action space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The arm currently serving queries.
    pub fn current_arm(&self) -> usize {
        self.current_arm
    }

    /// Decisions per arm (one pull = one epoch), aligned with
    /// [`space`](Self::space).
    pub fn arm_pulls(&self) -> &[u64] {
        &self.pulls
    }

    /// The arm chosen at each decision epoch, in order — the action
    /// sequence the determinism checks compare bit-for-bit.
    pub fn action_log(&self) -> &[usize] {
        &self.actions
    }

    /// Every config switch performed so far.
    pub fn switch_log(&self) -> &[SwitchEvent] {
        &self.switches
    }

    /// Queues an insertion (merged on a qualifying query, like
    /// [`Updatable::insert`]).
    pub fn insert(&mut self, elem: E) {
        self.engine.insert(elem);
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: u64) {
        self.engine.delete(key);
    }

    /// Pending updates not yet merged.
    pub fn pending_len(&self) -> usize {
        self.engine.pending_len()
    }

    /// Merges every pending update now.
    pub fn flush(&mut self) -> usize {
        self.engine.flush()
    }

    /// Full integrity check of the live cracker column (tests; O(n)).
    pub fn check_integrity(&mut self) -> Result<(), String> {
        self.engine.check_integrity()
    }

    /// Epoch context before any query has run.
    fn cold_context(len: usize, config: CrackConfig) -> QueryContext {
        let elem = std::mem::size_of::<E>();
        QueryContext {
            column_len: len,
            piece_low_len: len,
            piece_high_len: len,
            crack_count: 0,
            query_no: 0,
            l1_elems: config.crack_size(elem),
            l2_elems: config.progressive_threshold(elem),
        }
    }

    /// Epoch-granular context: the column's mean piece length stands in
    /// for the per-query end pieces (decisions cover whole epochs, not
    /// single queries).
    fn context(&mut self) -> QueryContext {
        let elem = std::mem::size_of::<E>();
        let query_no = self.query_no;
        let col = self.engine.cracked_mut();
        let len = col.data().len();
        let mean_piece = len / (col.index().crack_count() + 1).max(1);
        QueryContext {
            column_len: len,
            piece_low_len: mean_piece,
            piece_high_len: mean_piece,
            crack_count: col.index().crack_count(),
            query_no,
            l1_elems: col.config().crack_size(elem),
            l2_elems: col.config().progressive_threshold(elem),
        }
    }

    /// Whether the running epoch is over (full, or cut by stop-loss).
    fn epoch_over(&self) -> bool {
        if self.epoch_queries >= self.epoch_len {
            return true;
        }
        if self.stop_factor.is_none() || self.epoch_queries < self.min_probe {
            return false;
        }
        let delta = self.engine.stats().since(&self.epoch_start);
        let cost = (delta.touched + delta.materialized) as f64;
        if self.segment_epochs == 0 {
            // Grace epoch: a fresh rebuild has no meaningful floor to be
            // judged against (its cold-start re-crack legitimately costs
            // a few column scans), so it gets an absolute budget instead.
            return cost > Self::DEFAULT_GRACE_FACTOR * self.engine.data().len() as f64;
        }
        let Some(best) = self.best_per_query else {
            return false;
        };
        let factor = self.stop_factor.expect("checked above");
        cost > factor * best * self.epoch_len as f64
    }

    /// Arms in the same §3 cost class as `arm`: everything with the same
    /// engine. Kernel and index policies are wall-clock knobs with
    /// bit-identical `Stats` by construction, so those twins are exact.
    /// Update-policy twins are exact until the first update is queued and
    /// approximate after — their cost delta at realistic update rates is
    /// a couple of percent, below what epoch-granular estimates can
    /// resolve and far below the O(n) rebuild it would cost to exploit;
    /// letting their estimates drift apart instead just invites rebuild
    /// flapping on stale values.
    fn cost_twins(&self, arm: usize) -> Vec<usize> {
        let a = self.space.arm(arm);
        (0..self.space.len())
            .filter(|&b| b != arm && self.space.arm(b).engine == a.engine)
            .collect()
    }

    /// Closes the epoch: feed its cost back, pick the next arm, switch if
    /// it differs.
    fn decide(&mut self) {
        let delta = self.engine.stats().since(&self.epoch_start);
        let cost = (delta.touched + delta.materialized) as f64;
        let per_query = cost / self.epoch_queries.max(1) as f64;
        // The policy sees per-query cost so truncated epochs compare
        // fairly with full ones. The observation also replays onto every
        // arm currently cost-indistinguishable from the live one, so a
        // distressed arm's escape never lands on one of its own twins.
        let post = self.context();
        self.policy
            .observe(self.current_arm, &self.epoch_ctx, &post, per_query);
        for twin in self.cost_twins(self.current_arm) {
            self.policy.observe(twin, &self.epoch_ctx, &post, per_query);
        }
        if self.epoch_queries >= self.epoch_len {
            // Only full epochs update the stop-loss floor: a truncated
            // epoch's average is dominated by the very spike that cut it.
            self.best_per_query = Some(match self.best_per_query {
                Some(b) => b.min(per_query),
                None => per_query,
            });
        }
        self.segment_epochs += 1;
        let next = self
            .policy
            .choose(&post, self.space.len(), &mut self.policy_rng);
        self.pulls[next] += 1;
        self.actions.push(next);
        if next != self.current_arm {
            self.switch_to(next);
        }
        self.epoch_queries = 0;
        self.epoch_start = self.engine.stats();
        self.epoch_ctx = self.context();
    }

    /// Rebuilds the engine for `arm` over the current physical data —
    /// the quarantine-rebuild contract: pending updates are flushed so
    /// the tuple multiset transfers exactly, earned cracks are discarded,
    /// the segment's stats retire into the cumulative total.
    fn switch_to(&mut self, arm: usize) {
        self.engine.flush();
        self.retired += self.engine.stats();
        let data = self.engine.data().to_vec();
        let seed = switch_seed(self.base_seed, self.segments);
        self.segments += 1;
        let next = self.space.arm(arm);
        self.engine = build_update_engine(next.engine, data, next.crack_config(self.base), seed);
        self.switches.push(SwitchEvent {
            at_query: self.query_no,
            from: self.current_arm,
            to: arm,
            seed,
        });
        self.current_arm = arm;
        self.segment_epochs = 0;
    }
}

impl<E: Element> Engine<E> for SelfDrivingEngine<E> {
    fn name(&self) -> String {
        format!("SelfDriving[{}]", self.policy.label())
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        if self.query_no > 0 && self.epoch_over() {
            self.decide();
        }
        let out = self.engine.select(q);
        self.query_no += 1;
        self.epoch_queries += 1;
        out
    }

    fn data(&self) -> &[E] {
        self.engine.data()
    }

    fn stats(&self) -> Stats {
        self.retired + self.engine.stats()
    }

    fn reset_stats(&mut self) {
        self.retired = Stats::new();
        self.engine.reset_stats();
        self.epoch_start = Stats::new();
    }

    fn quarantine_rebuild(&mut self) {
        self.engine.quarantine_rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PolicyKind;

    fn data(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn drive(seed: u64) -> SelfDrivingEngine<u64> {
        let mut e = SelfDrivingEngine::new(
            data(20_000),
            CrackConfig::default().with_crack_size(64),
            seed,
            PolicyKind::EpsilonGreedy.build(),
            ConfigSpace::default_space(),
        )
        .with_epoch_len(16);
        for i in 0..400u64 {
            let low = (i * 97) % 19_900;
            let out = e.select(QueryRange::new(low, low + 50));
            let expect = data(20_000).iter().filter(|k| low <= **k && **k < low + 50).count();
            assert_eq!(out.len(), expect, "query {i}");
        }
        e
    }

    #[test]
    fn answers_stay_exact_across_switches() {
        let mut e = drive(5);
        assert!(
            !e.switch_log().is_empty(),
            "an exploring bandit over 25 epochs must switch at least once"
        );
        assert_eq!(e.stats().queries, 400);
        e.check_integrity().unwrap();
    }

    #[test]
    fn fixed_seed_replays_identically() {
        let a = drive(9);
        let b = drive(9);
        assert_eq!(a.action_log(), b.action_log());
        assert_eq!(a.switch_log(), b.switch_log());
        assert_eq!(a.stats(), b.stats());
        let c = drive(10);
        assert_ne!(
            (a.action_log(), a.switch_log()),
            (c.action_log(), c.switch_log()),
            "seed must matter"
        );
    }

    #[test]
    fn stats_accumulate_across_segments() {
        let e = drive(5);
        // Retired + live must cover all 400 queries regardless of how
        // many rebuilds happened.
        assert_eq!(e.stats().queries, 400);
        assert!(e.stats().touched > 0);
    }

    #[test]
    fn pulls_align_with_action_log() {
        let e = drive(7);
        let mut counted = vec![0u64; e.space().len()];
        for arm in e.action_log() {
            counted[*arm] += 1;
        }
        assert_eq!(counted, e.arm_pulls());
    }

    #[test]
    fn updates_survive_switches() {
        let mut e = SelfDrivingEngine::new_default(
            data(10_000),
            CrackConfig::default().with_crack_size(64),
            3,
        )
        .with_epoch_len(8);
        e.insert(100_000u64);
        e.insert(100_001u64);
        e.delete(0);
        for i in 0..200u64 {
            let low = (i * 61) % 9_900;
            let _ = e.select(QueryRange::new(low, low + 30));
        }
        let out = e.select(QueryRange::new(99_990, 100_010));
        assert_eq!(out.len(), 2, "appended keys visible after switches");
        let zero = e.select(QueryRange::new(0, 1));
        assert!(zero.is_empty(), "deleted key stays deleted");
        e.check_integrity().unwrap();
    }

    #[test]
    fn switch_seed_is_segment_unique() {
        let seeds: Vec<u64> = (0..32).map(|i| switch_seed(42, i)).collect();
        for (i, s) in seeds.iter().enumerate() {
            assert!(!seeds[..i].contains(s), "segment seeds must differ");
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1.0")]
    fn bad_stop_factor_rejected() {
        let _ = SelfDrivingEngine::new_default(data(100), CrackConfig::default(), 1)
            .with_stop_factor(Some(0.5));
    }
}
