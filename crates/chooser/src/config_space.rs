//! The full live-config action space: engine × kernel × index × update.
//!
//! PRs 2–5 grew three orthogonal config axes next to the engine choice —
//! [`KernelPolicy`] (branchy/branchless reorganization kernels),
//! [`IndexPolicy`] (AVL vs flat vs radix cracker index) and [`UpdatePolicy`]
//! (per-element vs batched merge-ripple) — and the chooser, written
//! before any of them, could only pick among four per-query crack paths.
//! A [`ConfigArm`] names one point of the full cross-product and a
//! [`ConfigSpace`] is the menu a [`SelfDrivingEngine`](crate::SelfDrivingEngine)
//! switches between online.
//!
//! Three ready-made spaces cover the useful granularities:
//!
//! * [`ConfigSpace::engine_sweep`] — one arm per update-capable factory
//!   engine (all of [`scrack_updates::update_capable_kinds`], including
//!   the selective and RNcrack families), default policies. This is the
//!   audit surface for the chooser-vs-factory drift test.
//! * [`ConfigSpace::default_space`] — the paper's Fig. 20 frontier
//!   (Crack, DD1R, MDD1R, P10%) plus the deterministic MDD1M, crossed
//!   with both [`UpdatePolicy`]s: the arms whose §3 cost measure
//!   actually differs, kept small enough for online exploration to
//!   amortize.
//! * [`ConfigSpace::full`] — the entire cross-product. Kernel and index
//!   policies are *wall-clock* knobs (bit-identical `Stats` by
//!   construction, pinned by the PR-2/PR-4 differential suites), so a
//!   cost-measure-driven policy cannot rank them; the full space exists
//!   for completeness and for wall-time-driven policies.

use scrack_core::{CrackConfig, EngineKind, IndexPolicy, KernelPolicy, UpdatePolicy};
use scrack_updates::update_capable_kinds;

/// One point of the live config cross-product: which engine answers
/// queries, under which kernel, index and update policies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigArm {
    /// The cracking strategy (any update-capable factory kind).
    pub engine: EngineKind,
    /// Reorganization-kernel implementation.
    pub kernel: KernelPolicy,
    /// Cracker-index representation.
    pub index: IndexPolicy,
    /// Pending-update merge strategy.
    pub update: UpdatePolicy,
}

impl ConfigArm {
    /// An arm running `engine` under the default policies.
    pub fn engine_only(engine: EngineKind) -> Self {
        Self {
            engine,
            kernel: KernelPolicy::default(),
            index: IndexPolicy::default(),
            update: UpdatePolicy::default(),
        }
    }

    /// Report label, e.g. `MDD1R/auto/flat/batched`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.engine.label(),
            self.kernel.label(),
            self.index.label(),
            self.update.label()
        )
    }

    /// The [`CrackConfig`] this arm runs under, inheriting every
    /// non-policy knob (cache profile, size overrides, fault plan) from
    /// `base`.
    pub fn crack_config(&self, base: CrackConfig) -> CrackConfig {
        base.with_kernel(self.kernel)
            .with_index(self.index)
            .with_update(self.update)
    }
}

/// An ordered menu of [`ConfigArm`]s — the action space of a
/// [`SelfDrivingEngine`](crate::SelfDrivingEngine). Arm indices into this
/// menu are what [`ChoicePolicy`](crate::ChoicePolicy) implementations
/// choose and observe.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigSpace {
    arms: Vec<ConfigArm>,
}

impl ConfigSpace {
    /// A space over an explicit arm list.
    ///
    /// # Panics
    /// If `arms` is empty.
    pub fn new(arms: Vec<ConfigArm>) -> Self {
        assert!(!arms.is_empty(), "the config space cannot be empty");
        Self { arms }
    }

    /// One arm per update-capable factory engine (exactly the kinds of
    /// [`update_capable_kinds`], in factory order, each exactly once),
    /// default policies on the other axes.
    pub fn engine_sweep() -> Self {
        Self::new(
            update_capable_kinds()
                .into_iter()
                .map(ConfigArm::engine_only)
                .collect(),
        )
    }

    /// The default online space: the Fig. 20 engine frontier (MDD1R,
    /// DD1R, P10%, Crack) plus the data-driven midpoint MDD1M, × both
    /// update policies — every axis whose §3 cost measure differs
    /// between arms, and few enough arms that epoch-granular exploration
    /// amortizes (10 arms).
    ///
    /// Menu order encodes the paper's robustness ranking: cost-estimate
    /// ties break toward earlier arms, so a
    /// [`SelfDrivingEngine`](crate::SelfDrivingEngine) with uniform
    /// priors opens on MDD1R — the variant §5 shows is robust on every
    /// workload — and pays for exploration only when observed cost says
    /// the default is losing.
    pub fn default_space() -> Self {
        let engines = [
            EngineKind::Mdd1r,
            EngineKind::Dd1r,
            EngineKind::Progressive { swap_pct: 10 },
            EngineKind::Crack,
            EngineKind::Mdd1m,
        ];
        let mut arms = Vec::new();
        for engine in engines {
            for update in UpdatePolicy::ALL {
                arms.push(ConfigArm {
                    engine,
                    kernel: KernelPolicy::default(),
                    index: IndexPolicy::default(),
                    update,
                });
            }
        }
        Self::new(arms)
    }

    /// The entire cross-product: every update-capable engine × every
    /// kernel × every index × every update policy (18 × 3 × 3 × 2 = 324
    /// arms).
    pub fn full() -> Self {
        let kernels = [
            KernelPolicy::Branchy,
            KernelPolicy::Branchless,
            KernelPolicy::Auto,
        ];
        let indexes = IndexPolicy::ALL;
        let mut arms = Vec::new();
        for engine in update_capable_kinds() {
            for kernel in kernels {
                for index in indexes {
                    for update in UpdatePolicy::ALL {
                        arms.push(ConfigArm {
                            engine,
                            kernel,
                            index,
                            update,
                        });
                    }
                }
            }
        }
        Self::new(arms)
    }

    /// The arms, in menu order.
    pub fn arms(&self) -> &[ConfigArm] {
        &self.arms
    }

    /// Number of arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Whether the space is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The arm at `index`.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn arm(&self, index: usize) -> ConfigArm {
        self.arms[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_name_all_four_axes() {
        let arm = ConfigArm {
            engine: EngineKind::Mdd1r,
            kernel: KernelPolicy::Auto,
            index: IndexPolicy::Flat,
            update: UpdatePolicy::Batched,
        };
        assert_eq!(arm.label(), "MDD1R/auto/flat/batched");
    }

    #[test]
    fn crack_config_inherits_base_knobs() {
        let base = CrackConfig::default().with_crack_size(128);
        let arm = ConfigArm {
            engine: EngineKind::Crack,
            kernel: KernelPolicy::Branchy,
            index: IndexPolicy::Avl,
            update: UpdatePolicy::PerElement,
        };
        let cfg = arm.crack_config(base);
        assert_eq!(cfg.crack_size(8), 128, "base override survives");
        assert_eq!(cfg.kernel, KernelPolicy::Branchy);
        assert_eq!(cfg.index, IndexPolicy::Avl);
        assert_eq!(cfg.update, UpdatePolicy::PerElement);
    }

    /// The satellite audit: the sweep's engine axis must track the live
    /// factory — every update-capable kind exactly once, nothing extra.
    #[test]
    fn engine_sweep_covers_the_factory_exactly_once() {
        let sweep = ConfigSpace::engine_sweep();
        let kinds = update_capable_kinds();
        assert_eq!(sweep.len(), kinds.len());
        for kind in &kinds {
            let hits = sweep.arms().iter().filter(|a| a.engine == *kind).count();
            assert_eq!(hits, 1, "{} must appear exactly once", kind.label());
        }
    }

    #[test]
    fn full_space_is_the_cross_product() {
        // The index axis is pinned to the *live* variant count
        // (`IndexPolicy::ALL`): adding a representation without
        // registering it here — or in the dispatch sites this arithmetic
        // transitively sweeps — fails this test instead of silently
        // shrinking the space.
        let full = ConfigSpace::full();
        assert_eq!(
            full.len(),
            update_capable_kinds().len() * 3 * IndexPolicy::ALL.len() * UpdatePolicy::ALL.len()
        );
        assert!(
            full.arms().iter().any(|a| a.index == IndexPolicy::Radix),
            "the radix representation must be in the full space"
        );
        // No duplicate arms.
        for (i, a) in full.arms().iter().enumerate() {
            assert!(
                !full.arms()[..i].contains(a),
                "duplicate arm {}",
                a.label()
            );
        }
    }

    #[test]
    fn default_space_differs_only_on_cost_visible_axes() {
        let space = ConfigSpace::default_space();
        assert_eq!(space.len(), 10);
        for arm in space.arms() {
            assert_eq!(arm.kernel, KernelPolicy::default());
            assert_eq!(arm.index, IndexPolicy::default());
        }
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_space_rejected() {
        ConfigSpace::new(vec![]);
    }
}
