//! Dynamic per-query algorithm selection for stochastic cracking.
//!
//! §6 of the paper names, as future work, "combining the strengths of the
//! various stochastic cracking algorithms via a dynamic component that
//! decides which algorithm to choose for a query on the fly". This crate
//! implements that component.
//!
//! A [`ChooserEngine`] owns one cracked column and a menu of [`Action`]s —
//! original cracking, DD1R, MDD1R, progressive MDD1R — and delegates the
//! per-query pick to a [`ChoicePolicy`]:
//!
//! * [`PieceAware`](policy::PieceAware) — a deterministic cost model that
//!   inspects the pieces the query bounds fall into and picks the action
//!   whose overhead is warranted at that piece size (stochastic work for
//!   large unindexed pieces, plain cracking inside the cache).
//! * [`EpsilonGreedy`](bandit::EpsilonGreedy) and [`Ucb1`](bandit::Ucb1) —
//!   multi-armed bandits that *learn* the best action from the observed
//!   per-query physical cost (tuples touched plus tuples materialized, the
//!   paper's §3 cost measure), with no knowledge of the workload.
//!
//! The engine satisfies the same contract as every other engine in this
//! repository: each `select` answers the query exactly (oracle-verified in
//! the tests) while reorganizing the column as a side effect.
//!
//! [`SelfDrivingEngine`] lifts the same idea from crack paths to whole
//! configurations: its arms are a [`ConfigSpace`] over the full live
//! cross-product (engine × kernel × index × update policy), decisions run
//! at epoch granularity, and switching arms rebuilds the engine over the
//! current data under quarantine-rebuild semantics — so it can move
//! between engine families (selective wrappers, RNcrack, the recursive
//! data-driven variants) that no shared-column chooser can reach.
//!
//! # Example
//!
//! ```
//! use scrack_chooser::{ChooserEngine, PolicyKind};
//! use scrack_core::{CrackConfig, Engine};
//! use scrack_types::QueryRange;
//!
//! let data: Vec<u64> = (0..10_000).rev().collect();
//! let mut engine =
//!     ChooserEngine::from_kind(data, CrackConfig::default(), 42, PolicyKind::Ucb1);
//! // A sequential scan of the domain: pathological for original cracking.
//! for i in 0..100u64 {
//!     let out = engine.select(QueryRange::new(i * 100, i * 100 + 10));
//!     assert_eq!(out.len(), 10);
//! }
//! // The bandit has recorded which arm it pulled for every query.
//! assert_eq!(engine.arm_pulls().iter().sum::<u64>(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod bandit;
mod config_space;
mod context;
pub mod contextual;
mod engine;
pub mod policy;
mod scheduler;
mod self_driving;

pub use action::Action;
pub use config_space::{ConfigArm, ConfigSpace};
pub use context::QueryContext;
pub use contextual::ContextualEpsGreedy;
pub use engine::{ChooserEngine, PolicyKind};
pub use policy::ChoicePolicy;
pub use scheduler::{scheduler_space, SelfDrivingScheduler};
pub use self_driving::{switch_seed, SelfDrivingEngine, SwitchEvent};
