//! The policy interface and the deterministic policies.

use crate::context::QueryContext;
use rand::rngs::SmallRng;

/// Decides, per query, which arm (index into the engine's action menu) to
/// pull, and learns from the observed cost.
///
/// `choose` runs before the query executes; `observe` runs after, with
/// the query's physical cost (tuples touched plus tuples materialized —
/// the §3 cost measure, which is deterministic and machine-independent,
/// unlike wall time) and a *post-execution* context snapshot. The post
/// context lets learning policies see the state an action left behind —
/// the piece structure at the query bounds after reorganization — which
/// is where cracking strategies actually differ (a query-driven crack and
/// a random crack can cost the same now yet leave very different work for
/// the future). Stateless policies may ignore `observe` entirely.
pub trait ChoicePolicy: std::fmt::Debug + Send {
    /// Picks an arm in `0..arms` for the query described by `ctx`.
    fn choose(&mut self, ctx: &QueryContext, arms: usize, rng: &mut SmallRng) -> usize;

    /// Feeds back the executed arm's cost; `ctx` is the pre-execution
    /// context passed to [`choose`](Self::choose), `post` the state after
    /// the action ran.
    fn observe(&mut self, arm: usize, ctx: &QueryContext, post: &QueryContext, cost: f64);

    /// Display name for reports.
    fn label(&self) -> String;
}

/// Always pulls one fixed arm — the degenerate policy that turns the
/// chooser into the corresponding plain engine (used as a baseline and to
/// test the chooser plumbing itself).
#[derive(Clone, Copy, Debug)]
pub struct Fixed(pub usize);

impl ChoicePolicy for Fixed {
    fn choose(&mut self, _ctx: &QueryContext, arms: usize, _rng: &mut SmallRng) -> usize {
        assert!(self.0 < arms, "fixed arm {} out of range {arms}", self.0);
        self.0
    }

    fn observe(&mut self, _arm: usize, _ctx: &QueryContext, _post: &QueryContext, _cost: f64) {}

    fn label(&self) -> String {
        format!("Fixed({})", self.0)
    }
}

/// Replays a fixed arm sequence, one entry per decision; once the script
/// is exhausted the last entry repeats. The differential tests use this
/// to drive a [`SelfDrivingEngine`](crate::SelfDrivingEngine) through an
/// arbitrary switch schedule that a hand-replay on factory engines can
/// reproduce exactly.
#[derive(Clone, Debug)]
pub struct Script {
    arms: Vec<usize>,
    next: usize,
}

impl Script {
    /// A scripted policy over the given arm sequence.
    ///
    /// # Panics
    /// If `arms` is empty.
    pub fn new(arms: Vec<usize>) -> Self {
        assert!(!arms.is_empty(), "a script needs at least one arm");
        Self { arms, next: 0 }
    }
}

impl ChoicePolicy for Script {
    fn choose(&mut self, _ctx: &QueryContext, arms: usize, _rng: &mut SmallRng) -> usize {
        let arm = self.arms[self.next.min(self.arms.len() - 1)];
        self.next += 1;
        assert!(arm < arms, "scripted arm {arm} out of range {arms}");
        arm
    }

    fn observe(&mut self, _arm: usize, _ctx: &QueryContext, _post: &QueryContext, _cost: f64) {}

    fn label(&self) -> String {
        "Script".into()
    }
}

/// The deterministic cost model: pick the action by the size of the largest
/// piece the query must reorganize.
///
/// Rationale, following §3–§4: the cost of a cracking select is dominated
/// by the two end pieces. When those pieces are large, the danger of the
/// "blinkered" query-driven crack is greatest and the stochastic
/// investment pays; when a piece already fits in L1, stochastic extras buy
/// nothing ("within the cache the cracking costs are minimized", §4).
///
/// * piece > L2 → arm [`mdd1r`](PieceAware::mdd1r) — the materializing
///   stochastic variant, cheapest way to add a random crack to a huge
///   piece;
/// * L1 < piece ≤ L2 → arm [`dd1r`](PieceAware::dd1r) — eager random
///   crack plus bound cracks, converging fast at medium sizes;
/// * piece ≤ L1 → arm [`original`](PieceAware::original) — plain cracking.
///
/// §5 warns that *piece-size switching to original cracking* costs 2–3× on
/// most workloads; the chooser experiments quantify exactly how this model
/// compares against continuous stochastic cracking and the bandits.
#[derive(Clone, Copy, Debug)]
pub struct PieceAware {
    /// Arm used for pieces larger than L2.
    pub mdd1r: usize,
    /// Arm used for pieces in (L1, L2].
    pub dd1r: usize,
    /// Arm used for pieces at or below L1.
    pub original: usize,
}

impl Default for PieceAware {
    /// Arm indices matching [`Action::default_menu`](crate::Action::default_menu):
    /// `[Original, Dd1r, Mdd1r, Progressive(10)]`.
    fn default() -> Self {
        Self {
            mdd1r: 2,
            dd1r: 1,
            original: 0,
        }
    }
}

impl ChoicePolicy for PieceAware {
    fn choose(&mut self, ctx: &QueryContext, arms: usize, _rng: &mut SmallRng) -> usize {
        let arm = if ctx.max_piece_len() > ctx.l2_elems {
            self.mdd1r
        } else if ctx.max_piece_len() > ctx.l1_elems {
            self.dd1r
        } else {
            self.original
        };
        assert!(arm < arms, "PieceAware arm {arm} out of range {arms}");
        arm
    }

    fn observe(&mut self, _arm: usize, _ctx: &QueryContext, _post: &QueryContext, _cost: f64) {}

    fn label(&self) -> String {
        "PieceAware".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(max_piece: usize) -> QueryContext {
        QueryContext {
            column_len: 1 << 20,
            piece_low_len: max_piece,
            piece_high_len: max_piece / 2,
            crack_count: 3,
            query_no: 5,
            l1_elems: 4096,
            l2_elems: 32768,
        }
    }

    #[test]
    fn script_replays_and_repeats_its_tail() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = Script::new(vec![2, 0, 1]);
        let picks: Vec<usize> = (0..5).map(|_| p.choose(&ctx(10), 4, &mut rng)).collect();
        assert_eq!(picks, vec![2, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_script_rejected() {
        Script::new(vec![]);
    }

    #[test]
    fn fixed_always_returns_its_arm() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = Fixed(2);
        for _ in 0..10 {
            assert_eq!(p.choose(&ctx(100), 4, &mut rng), 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_rejects_out_of_range_arm() {
        let mut rng = SmallRng::seed_from_u64(0);
        Fixed(4).choose(&ctx(100), 4, &mut rng);
    }

    #[test]
    fn piece_aware_switches_on_thresholds() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = PieceAware::default();
        assert_eq!(p.choose(&ctx(40_000), 4, &mut rng), 2, "above L2 → MDD1R");
        assert_eq!(p.choose(&ctx(10_000), 4, &mut rng), 1, "mid → DD1R");
        assert_eq!(p.choose(&ctx(1000), 4, &mut rng), 0, "below L1 → Crack");
        // Exactly at the thresholds: not strictly greater, so lower tier.
        assert_eq!(p.choose(&ctx(32_768), 4, &mut rng), 1);
        assert_eq!(p.choose(&ctx(4096), 4, &mut rng), 0);
    }

    #[test]
    fn piece_aware_uses_larger_end_piece() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = PieceAware::default();
        let c = QueryContext {
            piece_low_len: 10,
            piece_high_len: 100_000,
            ..ctx(0)
        };
        assert_eq!(p.choose(&c, 4, &mut rng), 2);
    }
}
