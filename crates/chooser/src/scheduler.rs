//! Self-driving batch serving: online reconfiguration of a
//! [`BatchScheduler`].
//!
//! The batch scheduler serves whole query batches over key-disjoint
//! shards; its live configuration is the pair (serving strategy,
//! [`CrackConfig`]). [`SelfDrivingScheduler`] closes the same loop as
//! [`SelfDrivingEngine`](crate::SelfDrivingEngine) one level up: after
//! every decision epoch (a fixed number of batches) it feeds the epoch's
//! §3 cost to its [`ChoicePolicy`] and, when the policy picks a different
//! arm, calls [`BatchScheduler::reconfigure`] — every shard rebuilds from
//! its live data under the new config, so batch answers stay exact across
//! a switch.
//!
//! Scheduler arms map [`ConfigArm::engine`] onto the serving strategy:
//! `Crack` serves with original cracking, `Mdd1r` stochastically
//! ([`ParallelStrategy`]); the other config axes pass through unchanged.
//! [`scheduler_space`] is the ready-made menu.

use crate::config_space::{ConfigArm, ConfigSpace};
use crate::policy::ChoicePolicy;
use crate::self_driving::{switch_seed, SwitchEvent};
use crate::QueryContext;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, EngineKind, IndexPolicy, KernelPolicy, UpdatePolicy};
use scrack_parallel::{BatchOp, BatchScheduler, ParallelStrategy};
use scrack_types::{Element, QueryRange, Stats};

/// The scheduler's action space: both serving strategies × both update
/// policies (the cost-visible axes at batch granularity).
pub fn scheduler_space() -> ConfigSpace {
    let mut arms = Vec::new();
    for engine in [EngineKind::Crack, EngineKind::Mdd1r] {
        for update in UpdatePolicy::ALL {
            arms.push(ConfigArm {
                engine,
                kernel: KernelPolicy::default(),
                index: IndexPolicy::default(),
                update,
            });
        }
    }
    ConfigSpace::new(arms)
}

/// The serving strategy a scheduler arm maps to; `None` for engine kinds
/// the batch scheduler has no serving path for.
fn strategy_of(arm: &ConfigArm) -> Option<ParallelStrategy> {
    match arm.engine {
        EngineKind::Crack => Some(ParallelStrategy::Crack),
        EngineKind::Mdd1r => Some(ParallelStrategy::Stochastic),
        _ => None,
    }
}

/// A [`BatchScheduler`] that re-decides its own configuration online
/// (see module docs).
pub struct SelfDrivingScheduler<E: Element> {
    sched: BatchScheduler<E>,
    space: ConfigSpace,
    base: CrackConfig,
    base_seed: u64,
    policy: Box<dyn ChoicePolicy>,
    policy_rng: SmallRng,
    epoch_batches: u64,
    column_len: usize,
    current_arm: usize,
    batches_in_epoch: u64,
    epoch_start: Stats,
    retired: Stats,
    pulls: Vec<u64>,
    actions: Vec<usize>,
    switches: Vec<SwitchEvent>,
    batch_no: u64,
    segments: u64,
}

impl<E: Element> std::fmt::Debug for SelfDrivingScheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfDrivingScheduler")
            .field("policy", &self.policy)
            .field("current_arm", &self.current_arm)
            .field("batch_no", &self.batch_no)
            .field("switches", &self.switches.len())
            .finish_non_exhaustive()
    }
}

impl<E: Element> SelfDrivingScheduler<E> {
    /// Default batches per decision epoch.
    pub const DEFAULT_EPOCH_BATCHES: u64 = 8;

    /// Builds the scheduler over `space` (every arm must map to a serving
    /// strategy — see [`scheduler_space`]), starting on the policy's
    /// first choice.
    ///
    /// # Panics
    /// If any arm's engine kind has no scheduler serving path.
    pub fn new(
        data: Vec<E>,
        shard_count: usize,
        base: CrackConfig,
        seed: u64,
        mut policy: Box<dyn ChoicePolicy>,
        space: ConfigSpace,
    ) -> Self {
        for arm in space.arms() {
            assert!(
                strategy_of(arm).is_some(),
                "{} has no batch-scheduler serving path",
                arm.label()
            );
        }
        let column_len = data.len();
        let mut policy_rng = SmallRng::seed_from_u64(seed ^ 0x5E1F_D81F);
        let ctx0 = Self::context_of(column_len, 0, 0, base);
        let arm = policy.choose(&ctx0, space.len(), &mut policy_rng);
        let first = space.arm(arm);
        let sched = BatchScheduler::new(
            data,
            shard_count,
            strategy_of(&first).expect("validated above"),
            first.crack_config(base),
            switch_seed(seed, 0),
        );
        let mut pulls = vec![0u64; space.len()];
        pulls[arm] += 1;
        Self {
            sched,
            space,
            base,
            base_seed: seed,
            policy,
            policy_rng,
            epoch_batches: Self::DEFAULT_EPOCH_BATCHES,
            column_len,
            current_arm: arm,
            batches_in_epoch: 0,
            epoch_start: Stats::new(),
            retired: Stats::new(),
            pulls,
            actions: vec![arm],
            switches: Vec::new(),
            batch_no: 0,
            segments: 1,
        }
    }

    /// The default setup: epoch-tuned ε-greedy over [`scheduler_space`].
    pub fn new_default(data: Vec<E>, shard_count: usize, base: CrackConfig, seed: u64) -> Self {
        let policy = crate::bandit::EpsilonGreedy::with_schedule(0.3, 8.0, 0.3);
        Self::new(data, shard_count, base, seed, Box::new(policy), scheduler_space())
    }

    /// Overrides the decision epoch length (batches per decision).
    ///
    /// # Panics
    /// If `epoch_batches` is zero.
    pub fn with_epoch_batches(mut self, epoch_batches: u64) -> Self {
        assert!(epoch_batches > 0, "epoch length must be positive");
        self.epoch_batches = epoch_batches;
        self
    }

    fn context_of(len: usize, cracks: u64, batch_no: u64, config: CrackConfig) -> QueryContext {
        let elem = std::mem::size_of::<E>();
        let mean_piece = len / (cracks as usize + 1).max(1);
        QueryContext {
            column_len: len,
            piece_low_len: mean_piece,
            piece_high_len: mean_piece,
            crack_count: cracks as usize,
            query_no: batch_no,
            l1_elems: config.crack_size(elem),
            l2_elems: config.progressive_threshold(elem),
        }
    }

    fn context(&self) -> QueryContext {
        Self::context_of(
            self.column_len,
            self.sched.stats().cracks,
            self.batch_no,
            self.base,
        )
    }

    /// Closes the epoch: observe the per-batch cost, pick the next arm,
    /// reconfigure the scheduler if it differs.
    fn decide(&mut self, epoch_ctx: &QueryContext) {
        let delta = self.sched.stats().since(&self.epoch_start);
        let per_batch =
            (delta.touched + delta.materialized) as f64 / self.batches_in_epoch.max(1) as f64;
        let post = self.context();
        self.policy
            .observe(self.current_arm, epoch_ctx, &post, per_batch);
        let next = self
            .policy
            .choose(&post, self.space.len(), &mut self.policy_rng);
        self.pulls[next] += 1;
        self.actions.push(next);
        if next != self.current_arm {
            let arm = self.space.arm(next);
            let seed = switch_seed(self.base_seed, self.segments);
            self.segments += 1;
            self.retired += self.sched.reconfigure(
                strategy_of(&arm).expect("validated at construction"),
                arm.crack_config(self.base),
                seed,
            );
            self.switches.push(SwitchEvent {
                at_query: self.batch_no,
                from: self.current_arm,
                to: next,
                seed,
            });
            self.current_arm = next;
        }
        self.batches_in_epoch = 0;
        self.epoch_start = self.sched.stats();
    }

    fn maybe_decide(&mut self) {
        if self.batch_no > 0 && self.batches_in_epoch >= self.epoch_batches {
            let ctx = self.context();
            self.decide(&ctx);
        }
    }

    /// Executes one read batch (see [`BatchScheduler::execute`]),
    /// re-deciding the configuration at epoch boundaries.
    pub fn execute(&mut self, batch: &[QueryRange]) -> Vec<(usize, u64)> {
        self.maybe_decide();
        let out = self.sched.execute(batch);
        self.batch_no += 1;
        self.batches_in_epoch += 1;
        out
    }

    /// Executes one mixed read/write batch (see
    /// [`BatchScheduler::execute_ops`]).
    pub fn execute_ops(&mut self, ops: &[BatchOp<E>]) -> Vec<(usize, u64)> {
        self.maybe_decide();
        let out = self.sched.execute_ops(ops);
        self.batch_no += 1;
        self.batches_in_epoch += 1;
        out
    }

    /// Cumulative physical costs across every configuration served.
    pub fn stats(&self) -> Stats {
        self.retired + self.sched.stats()
    }

    /// The action space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The arm currently serving batches.
    pub fn current_arm(&self) -> usize {
        self.current_arm
    }

    /// Decisions per arm (one pull = one epoch).
    pub fn arm_pulls(&self) -> &[u64] {
        &self.pulls
    }

    /// The arm chosen at each decision epoch, in order.
    pub fn action_log(&self) -> &[usize] {
        &self.actions
    }

    /// Every reconfiguration performed so far (`at_query` is the batch
    /// number it took effect at).
    pub fn switch_log(&self) -> &[SwitchEvent] {
        &self.switches
    }

    /// The wrapped scheduler (shard inspection, integrity checks).
    pub fn scheduler(&self) -> &BatchScheduler<E> {
        &self.sched
    }

    /// Full integrity check of every shard (tests only; O(n)).
    pub fn check_integrity(&self) -> Result<(), String> {
        self.sched.check_integrity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PolicyKind;

    fn data(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    fn batches(n: u64, count: usize, width: u64) -> Vec<Vec<QueryRange>> {
        (0..count as u64)
            .map(|b| {
                (0..16u64)
                    .map(|i| {
                        let low = (b * 977 + i * 131) % (n - width);
                        QueryRange::new(low, low + width)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn answers_match_a_static_scheduler_oracle() {
        let n = 40_000u64;
        let raw = data(n);
        let mut driving = SelfDrivingScheduler::new_default(
            raw.clone(),
            4,
            CrackConfig::default().with_crack_size(64),
            11,
        )
        .with_epoch_batches(3);
        // Scan-derived expected aggregates are config-independent.
        for batch in batches(n, 30, 200) {
            let results = driving.execute(&batch);
            for (q, (count, sum)) in batch.iter().zip(&results) {
                let expect = raw
                    .iter()
                    .filter(|k| q.contains(**k))
                    .fold((0usize, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)));
                assert_eq!((*count, *sum), expect);
            }
        }
        assert!(
            !driving.switch_log().is_empty(),
            "the bandit must reconfigure at least once over 10 epochs"
        );
        driving.check_integrity().unwrap();
    }

    #[test]
    fn fixed_seed_replays_identically() {
        let run = |seed: u64| {
            let mut s = SelfDrivingScheduler::new_default(
                data(20_000),
                4,
                CrackConfig::default().with_crack_size(64),
                seed,
            )
            .with_epoch_batches(2);
            for batch in batches(20_000, 20, 100) {
                s.execute(&batch);
            }
            (
                s.action_log().to_vec(),
                s.switch_log().to_vec(),
                s.stats(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn mixed_batches_survive_reconfiguration() {
        let n = 10_000u64;
        let mut s = SelfDrivingScheduler::new_default(
            data(n),
            2,
            CrackConfig::default().with_crack_size(64),
            3,
        )
        .with_epoch_batches(2);
        for b in 0..12u64 {
            let mut ops: Vec<BatchOp<u64>> = vec![BatchOp::Insert(n + b)];
            for i in 0..8u64 {
                let low = (b * 700 + i * 97) % (n - 50);
                ops.push(BatchOp::Select(QueryRange::new(low, low + 50)));
            }
            let out = s.execute_ops(&ops);
            assert_eq!(out.len(), ops.len());
        }
        // All 12 appended keys must be visible regardless of switches.
        let out = s.execute(&[QueryRange::new(n, n + 100)]);
        assert_eq!(out[0].0, 12);
        assert_eq!(s.stats().queries, s.stats().queries, "stats well-formed");
        s.check_integrity().unwrap();
    }

    #[test]
    fn scheduler_space_arms_all_map_to_strategies() {
        for arm in scheduler_space().arms() {
            assert!(strategy_of(arm).is_some());
        }
        assert_eq!(scheduler_space().len(), 4);
    }

    #[test]
    #[should_panic(expected = "no batch-scheduler serving path")]
    fn unsupported_engine_rejected() {
        let space = ConfigSpace::new(vec![ConfigArm::engine_only(EngineKind::Ddc)]);
        let _ = SelfDrivingScheduler::new(
            data(100),
            2,
            CrackConfig::default(),
            1,
            PolicyKind::EpsilonGreedy.build(),
            space,
        );
    }
}
