//! Multi-armed-bandit policies: learn the best action from observed costs.
//!
//! The bandits treat each [`Action`](crate::Action) as an arm whose reward
//! is the negative normalized query cost. They know nothing about the
//! workload or the column; everything they learn comes from the §3 cost
//! counters. This is the strongest reading of §6's "dynamic component":
//! a policy that adapts not only the index but the *indexing algorithm* to
//! the workload.
//!
//! Non-stationarity: a cracking column gets cheaper as it gets more
//! cracked, and the workload itself may rotate (the Mixed pattern). Both
//! bandits therefore use an exponentially-weighted cost estimate
//! (`forget` factor) rather than a plain running mean, so older — now
//! stale — observations decay.

use crate::context::QueryContext;
use crate::policy::ChoicePolicy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Exponentially-weighted estimate of one arm's normalized cost.
#[derive(Clone, Copy, Debug)]
pub struct ArmEstimate {
    /// Number of times the arm was pulled.
    pub pulls: u64,
    /// Exponentially-weighted mean of observed normalized costs.
    pub mean_cost: f64,
}

impl ArmEstimate {
    const fn new() -> Self {
        Self {
            pulls: 0,
            mean_cost: 0.0,
        }
    }

    /// Folds one observation in. For the first `1/forget` pulls this
    /// behaves like an arithmetic mean; afterwards like an EWMA with
    /// coefficient `forget`.
    pub(crate) fn update(&mut self, cost: f64, forget: f64) {
        self.pulls += 1;
        let step = forget.max(1.0 / self.pulls as f64);
        self.mean_cost += step * (cost - self.mean_cost);
    }
}

impl Default for ArmEstimate {
    fn default() -> Self {
        Self::new()
    }
}

/// Scales a raw cost (touched + materialized tuples) into roughly `[0, 1]`
/// by the column size. A full-column crack costs ~1.0; an already-cracked
/// probe costs ~0. Values above 1 (e.g. MDD1R touching both end pieces of
/// a huge query) are clamped so a single outlier cannot dominate UCB's
/// confidence bounds.
fn normalize(cost: f64, ctx: &QueryContext) -> f64 {
    if ctx.column_len == 0 {
        return 0.0;
    }
    (cost / ctx.column_len as f64).min(1.0)
}

/// ε-greedy: with probability `epsilon(t)` explore a uniformly random arm,
/// otherwise exploit the arm with the lowest cost estimate.
///
/// `epsilon(t) = eps0 · t0 / (t0 + t)` decays so that early queries explore
/// (when nothing is known and every crack is expensive anyway) and late
/// queries almost always exploit.
#[derive(Clone, Debug)]
pub struct EpsilonGreedy {
    arms: Vec<ArmEstimate>,
    eps0: f64,
    t0: f64,
    forget: f64,
    t: u64,
}

impl EpsilonGreedy {
    /// Default exploration schedule: ε starts at 0.3 and halves every 64
    /// queries; cost estimates forget with coefficient 0.05.
    pub fn new() -> Self {
        Self::with_schedule(0.3, 64.0, 0.05)
    }

    /// Full control over the schedule, for ablations.
    pub fn with_schedule(eps0: f64, t0: f64, forget: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps0), "eps0 must be a probability");
        assert!(t0 > 0.0, "t0 must be positive");
        assert!((0.0..=1.0).contains(&forget), "forget must be in [0,1]");
        Self {
            arms: Vec::new(),
            eps0,
            t0,
            forget,
            t: 0,
        }
    }

    /// Current per-arm estimates (for reports and tests).
    pub fn estimates(&self) -> &[ArmEstimate] {
        &self.arms
    }

    fn ensure_arms(&mut self, arms: usize) {
        if self.arms.len() < arms {
            self.arms.resize(arms, ArmEstimate::new());
        }
    }
}

impl Default for EpsilonGreedy {
    fn default() -> Self {
        Self::new()
    }
}

impl ChoicePolicy for EpsilonGreedy {
    fn choose(&mut self, _ctx: &QueryContext, arms: usize, rng: &mut SmallRng) -> usize {
        self.ensure_arms(arms);
        self.t += 1;
        // Pull every arm once before trusting any estimate.
        if let Some(untried) = self.arms[..arms].iter().position(|a| a.pulls == 0) {
            return untried;
        }
        let eps = self.eps0 * self.t0 / (self.t0 + self.t as f64);
        if rng.gen_bool(eps) {
            rng.gen_range(0..arms)
        } else {
            self.arms[..arms]
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.mean_cost.total_cmp(&b.mean_cost))
                .map(|(i, _)| i)
                .expect("at least one arm")
        }
    }

    fn observe(&mut self, arm: usize, ctx: &QueryContext, _post: &QueryContext, cost: f64) {
        self.ensure_arms(arm + 1);
        self.arms[arm].update(normalize(cost, ctx), self.forget);
    }

    fn label(&self) -> String {
        "EpsGreedy".into()
    }
}

/// UCB1 (Auer et al.): pull the arm minimizing
/// `mean_cost − c · sqrt(2 ln t / pulls)` — i.e., optimism in the face of
/// uncertainty over normalized costs in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct Ucb1 {
    arms: Vec<ArmEstimate>,
    /// Exploration coefficient; 1.0 is the classical constant.
    c: f64,
    forget: f64,
    t: u64,
}

impl Ucb1 {
    /// Default parameters: `c = 0.2`, forget coefficient 0.05.
    ///
    /// The classical `c = 1` is calibrated for rewards spanning `[0, 1]`;
    /// on a cracked column per-query normalized costs concentrate near 0
    /// once convergence sets in, so a full-width confidence bonus would
    /// drown the differences and degenerate into round-robin. `c = 0.2`
    /// keeps the optimism while letting observed costs dominate.
    pub fn new() -> Self {
        Self::with_params(0.2, 0.05)
    }

    /// Full control over the parameters, for ablations.
    pub fn with_params(c: f64, forget: f64) -> Self {
        assert!(c >= 0.0, "exploration coefficient must be non-negative");
        assert!((0.0..=1.0).contains(&forget), "forget must be in [0,1]");
        Self {
            arms: Vec::new(),
            c,
            forget,
            t: 0,
        }
    }

    /// Current per-arm estimates (for reports and tests).
    pub fn estimates(&self) -> &[ArmEstimate] {
        &self.arms
    }

    fn ensure_arms(&mut self, arms: usize) {
        if self.arms.len() < arms {
            self.arms.resize(arms, ArmEstimate::new());
        }
    }
}

impl Default for Ucb1 {
    fn default() -> Self {
        Self::new()
    }
}

impl ChoicePolicy for Ucb1 {
    fn choose(&mut self, _ctx: &QueryContext, arms: usize, _rng: &mut SmallRng) -> usize {
        self.ensure_arms(arms);
        self.t += 1;
        if let Some(untried) = self.arms[..arms].iter().position(|a| a.pulls == 0) {
            return untried;
        }
        let ln_t = (self.t as f64).ln();
        self.arms[..arms]
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let score = |arm: &ArmEstimate| {
                    arm.mean_cost - self.c * (2.0 * ln_t / arm.pulls as f64).sqrt()
                };
                score(a).total_cmp(&score(b))
            })
            .map(|(i, _)| i)
            .expect("at least one arm")
    }

    fn observe(&mut self, arm: usize, ctx: &QueryContext, _post: &QueryContext, cost: f64) {
        self.ensure_arms(arm + 1);
        self.arms[arm].update(normalize(cost, ctx), self.forget);
    }

    fn label(&self) -> String {
        "UCB1".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> QueryContext {
        QueryContext {
            column_len: 1000,
            piece_low_len: 1000,
            piece_high_len: 1000,
            crack_count: 0,
            query_no: 0,
            l1_elems: 4096,
            l2_elems: 32768,
        }
    }

    /// Simulated environment: arm `k` costs `costs[k]` (normalized) with a
    /// bit of noise. The bandit should concentrate pulls on the argmin.
    fn run_bandit(policy: &mut dyn ChoicePolicy, costs: &[f64], rounds: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut pulls = vec![0u64; costs.len()];
        let c = ctx();
        for _ in 0..rounds {
            let arm = policy.choose(&c, costs.len(), &mut rng);
            pulls[arm] += 1;
            let noise = rng.gen_range(-0.05..0.05);
            let cost = (costs[arm] + noise).clamp(0.0, 1.0) * c.column_len as f64;
            policy.observe(arm, &c, &c, cost);
        }
        pulls
    }

    #[test]
    fn epsilon_greedy_finds_the_cheap_arm() {
        let mut p = EpsilonGreedy::new();
        let pulls = run_bandit(&mut p, &[0.9, 0.1, 0.8, 0.7], 1000);
        assert!(
            pulls[1] > 700,
            "cheap arm should dominate, got {pulls:?}"
        );
    }

    #[test]
    fn ucb1_finds_the_cheap_arm() {
        let mut p = Ucb1::new();
        let pulls = run_bandit(&mut p, &[0.9, 0.8, 0.1, 0.7], 1000);
        assert!(
            pulls[2] > 700,
            "cheap arm should dominate, got {pulls:?}"
        );
    }

    #[test]
    fn bandits_try_every_arm_first() {
        let mut rng = SmallRng::seed_from_u64(0);
        let c = ctx();
        for policy in [
            &mut EpsilonGreedy::new() as &mut dyn ChoicePolicy,
            &mut Ucb1::new(),
        ] {
            let mut seen = [false; 4];
            for _ in 0..4 {
                let arm = policy.choose(&c, 4, &mut rng);
                assert!(!seen[arm], "{} repeated an arm before trying all", policy.label());
                seen[arm] = true;
                policy.observe(arm, &c, &c, 500.0);
            }
            assert!(seen.iter().all(|s| *s));
        }
    }

    #[test]
    fn ewma_tracks_cost_shifts() {
        // An arm that was cheap but turns expensive must lose its lead:
        // non-stationarity is the cracking setting's normal case.
        let mut p = EpsilonGreedy::with_schedule(0.1, 16.0, 0.2);
        let mut rng = SmallRng::seed_from_u64(3);
        let c = ctx();
        // Phase 1: arm 0 cheap, arm 1 expensive.
        for _ in 0..100 {
            let arm = p.choose(&c, 2, &mut rng);
            let cost = if arm == 0 { 100.0 } else { 900.0 };
            p.observe(arm, &c, &c, cost);
        }
        assert!(p.estimates()[0].mean_cost < p.estimates()[1].mean_cost);
        // Phase 2: costs flip. Feed both arms directly to isolate the
        // estimator from the exploration schedule.
        for _ in 0..60 {
            p.observe(0, &c, &c, 900.0);
            p.observe(1, &c, &c, 100.0);
        }
        assert!(
            p.estimates()[1].mean_cost < p.estimates()[0].mean_cost,
            "EWMA failed to forget: {:?}",
            p.estimates()
        );
    }

    #[test]
    fn normalize_clamps_to_unit() {
        let c = ctx();
        assert_eq!(normalize(2_000_000.0, &c), 1.0);
        assert_eq!(normalize(0.0, &c), 0.0);
        assert!((normalize(500.0, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn epsilon_rejects_bad_eps0() {
        EpsilonGreedy::with_schedule(1.5, 10.0, 0.1);
    }
}
