//! What a policy is allowed to see before choosing an action.

/// A per-query snapshot of the column state relevant to action choice.
///
/// Policies receive the same information a cracking select computes anyway
/// (the pieces the query bounds fall into), so consulting a policy adds two
/// `O(log pieces)` index probes and nothing else — the chooser preserves
/// the lightweight character §4 demands of any cracking component.
#[derive(Clone, Copy, Debug)]
pub struct QueryContext {
    /// Total number of elements in the column.
    pub column_len: usize,
    /// Size of the piece containing the query's low bound.
    pub piece_low_len: usize,
    /// Size of the piece containing the query's high bound.
    pub piece_high_len: usize,
    /// Number of cracks currently in the index.
    pub crack_count: usize,
    /// 0-based sequence number of the query within this engine's life.
    pub query_no: u64,
    /// L1 piece-size threshold (elements), from the engine's `CrackConfig`.
    pub l1_elems: usize,
    /// L2 piece-size threshold (elements), from the engine's `CrackConfig`.
    pub l2_elems: usize,
}

impl QueryContext {
    /// The larger of the two end-piece sizes — the quantity that bounds
    /// this query's reorganization cost (§3: cracking analyzes at most the
    /// two pieces intersecting the query's bounds).
    #[inline]
    pub fn max_piece_len(&self) -> usize {
        self.piece_low_len.max(self.piece_high_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_piece_len_picks_larger_side() {
        let ctx = QueryContext {
            column_len: 100,
            piece_low_len: 10,
            piece_high_len: 90,
            crack_count: 1,
            query_no: 0,
            l1_elems: 4096,
            l2_elems: 32768,
        };
        assert_eq!(ctx.max_piece_len(), 90);
    }
}
