//! The chooser engine: one column, a menu of actions, a policy.

use crate::action::Action;
use crate::bandit::{EpsilonGreedy, Ucb1};
use crate::context::QueryContext;
use crate::policy::{ChoicePolicy, Fixed, PieceAware};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_columnstore::QueryOutput;
use scrack_core::{CrackConfig, CrackedColumn, Engine};
use scrack_types::{Element, QueryRange, Stats};

/// Ready-made policy configurations, mirroring [`scrack_core`]'s
/// `EngineKind` style so experiments can sweep policies by name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyKind {
    /// Always the given arm of [`Action::default_menu`].
    Fixed(usize),
    /// Deterministic piece-size cost model.
    PieceAware,
    /// ε-greedy bandit with the default schedule.
    EpsilonGreedy,
    /// UCB1 bandit with the classical constant.
    Ucb1,
    /// Contextual ε-greedy: per piece-size-bucket estimates.
    Contextual,
}

impl PolicyKind {
    /// Builds the boxed policy.
    pub fn build(self) -> Box<dyn ChoicePolicy> {
        match self {
            PolicyKind::Fixed(arm) => Box::new(Fixed(arm)),
            PolicyKind::PieceAware => Box::new(PieceAware::default()),
            PolicyKind::EpsilonGreedy => Box::new(EpsilonGreedy::new()),
            PolicyKind::Ucb1 => Box::new(Ucb1::new()),
            PolicyKind::Contextual => Box::new(crate::contextual::ContextualEpsGreedy::new()),
        }
    }

    /// All sweepable kinds (Fixed baselines use arm 0 = Crack and arm 2 =
    /// MDD1R).
    pub fn sweep() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fixed(0),
            PolicyKind::Fixed(2),
            PolicyKind::PieceAware,
            PolicyKind::EpsilonGreedy,
            PolicyKind::Ucb1,
            PolicyKind::Contextual,
        ]
    }
}

/// An adaptive-indexing engine that picks, per query, which cracking
/// algorithm answers it (§6's dynamic component).
///
/// All actions share one [`CrackedColumn`], so every piece of indexing
/// knowledge is common property: a random crack added by an MDD1R query
/// narrows the pieces later original-cracking queries must scan, and vice
/// versa. The policy closes the loop by observing each action's realized
/// cost on this column under this workload.
#[derive(Debug)]
pub struct ChooserEngine<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
    policy: Box<dyn ChoicePolicy>,
    menu: Vec<Action>,
    pulls: Vec<u64>,
    query_no: u64,
}

impl<E: Element> ChooserEngine<E> {
    /// Builds the engine with the default action menu.
    pub fn new(
        data: Vec<E>,
        config: CrackConfig,
        seed: u64,
        policy: Box<dyn ChoicePolicy>,
    ) -> Self {
        Self::with_menu(data, config, seed, policy, Action::default_menu())
    }

    /// Builds the engine from a [`PolicyKind`] description.
    pub fn from_kind(data: Vec<E>, config: CrackConfig, seed: u64, kind: PolicyKind) -> Self {
        Self::new(data, config, seed, kind.build())
    }

    /// Builds the engine with a custom action menu.
    ///
    /// # Panics
    /// If `menu` is empty.
    pub fn with_menu(
        data: Vec<E>,
        config: CrackConfig,
        seed: u64,
        policy: Box<dyn ChoicePolicy>,
        menu: Vec<Action>,
    ) -> Self {
        assert!(!menu.is_empty(), "the action menu cannot be empty");
        let pulls = vec![0; menu.len()];
        Self {
            col: CrackedColumn::new(data, config),
            rng: SmallRng::seed_from_u64(seed),
            policy,
            menu,
            pulls,
            query_no: 0,
        }
    }

    /// The action menu.
    pub fn menu(&self) -> &[Action] {
        &self.menu
    }

    /// How many times each arm has been pulled, aligned with [`menu`](Self::menu).
    pub fn arm_pulls(&self) -> &[u64] {
        &self.pulls
    }

    /// The underlying cracked column (for integrity checks in tests).
    pub fn column(&self) -> &CrackedColumn<E> {
        &self.col
    }

    fn context(&self, q: QueryRange) -> QueryContext {
        let elem = std::mem::size_of::<E>();
        let index = self.col.index();
        QueryContext {
            column_len: self.col.data().len(),
            piece_low_len: index.piece_containing(q.low).len(),
            piece_high_len: index.piece_containing(q.high).len(),
            crack_count: index.crack_count(),
            query_no: self.query_no,
            l1_elems: self.col.config().crack_size(elem),
            l2_elems: self.col.config().progressive_threshold(elem),
        }
    }
}

impl<E: Element> Engine<E> for ChooserEngine<E> {
    fn name(&self) -> String {
        format!("Chooser[{}]", self.policy.label())
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        let ctx = self.context(q);
        let arm = self.policy.choose(&ctx, self.menu.len(), &mut self.rng);
        let before = self.col.stats();
        let out = self.menu[arm].execute(&mut self.col, q, &mut self.rng);
        let delta = self.col.stats().since(&before);
        let cost = (delta.touched + delta.materialized) as f64;
        let post = self.context(q);
        self.policy.observe(arm, &ctx, &post, cost);
        self.pulls[arm] += 1;
        self.query_no += 1;
        out
    }

    fn data(&self) -> &[E] {
        self.col.data()
    }

    fn stats(&self) -> Stats {
        self.col.stats()
    }

    fn reset_stats(&mut self) {
        self.col.stats_mut().reset();
    }

    fn quarantine_rebuild(&mut self) {
        self.col.quarantine_rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    #[test]
    fn name_includes_policy() {
        let e = ChooserEngine::from_kind(data(100), CrackConfig::default(), 1, PolicyKind::Ucb1);
        assert_eq!(e.name(), "Chooser[UCB1]");
    }

    #[test]
    fn pulls_sum_to_query_count() {
        let mut e = ChooserEngine::from_kind(
            data(10_000),
            CrackConfig::default(),
            1,
            PolicyKind::EpsilonGreedy,
        );
        for i in 0..50u64 {
            e.select(QueryRange::new(i * 100, i * 100 + 10));
        }
        assert_eq!(e.arm_pulls().iter().sum::<u64>(), 50);
        assert_eq!(e.stats().queries, 50);
        e.column().check_integrity().unwrap();
    }

    #[test]
    fn fixed_policy_pulls_one_arm_only() {
        let mut e =
            ChooserEngine::from_kind(data(5000), CrackConfig::default(), 1, PolicyKind::Fixed(2));
        for i in 0..20u64 {
            e.select(QueryRange::new(i * 200, i * 200 + 20));
        }
        assert_eq!(e.arm_pulls(), &[0, 0, 20, 0]);
    }

    #[test]
    #[should_panic(expected = "menu cannot be empty")]
    fn empty_menu_rejected() {
        ChooserEngine::<u64>::with_menu(
            data(10),
            CrackConfig::default(),
            1,
            Box::new(Fixed(0)),
            vec![],
        );
    }

    #[test]
    fn empty_query_is_answered_empty() {
        let mut e =
            ChooserEngine::from_kind(data(1000), CrackConfig::default(), 1, PolicyKind::PieceAware);
        let out = e.select(QueryRange::new(50, 50));
        assert!(out.is_empty());
    }

    #[test]
    fn every_policy_answers_exactly() {
        let n = 8192u64;
        let raw = data(n);
        for kind in PolicyKind::sweep() {
            let mut e = ChooserEngine::from_kind(raw.clone(), CrackConfig::default(), 11, kind);
            for i in 0..128u64 {
                let low = (i * 37) % (n - 64);
                let q = QueryRange::new(low, low + 53);
                let out = e.select(q);
                let expect = raw.iter().filter(|k| q.contains(**k)).count();
                assert_eq!(out.len(), expect, "{:?} query {i}", kind);
            }
            e.column().check_integrity().unwrap();
        }
    }
}
