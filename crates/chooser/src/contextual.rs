//! A contextual bandit: arm costs learned *per piece-size bucket*.
//!
//! The flat bandits in [`bandit`](crate::bandit) learn one global answer
//! to "which algorithm is cheapest", but the true answer depends on the
//! state the query finds the column in: partitioning a 100M-element piece
//! and a 1K-element piece are different problems (that is the whole
//! premise of the paper's `CRACK_SIZE` threshold and of the PieceAware
//! model). This policy conditions on that state: the context is the
//! log₂-bucket of the largest end piece the query touches, and each
//! bucket maintains its own per-arm cost estimates.
//!
//! Compared to [`PieceAware`](crate::policy::PieceAware) it needs no
//! hand-chosen thresholds; compared to the flat bandits it can learn
//! *policies* like "original cracking inside the cache, MDD1R above it"
//! instead of a single compromise arm.

use crate::bandit::ArmEstimate;
use crate::context::QueryContext;
use crate::policy::ChoicePolicy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Number of log₂ size buckets (u64 lengths fit in 64; bucket 0 holds
/// empty/singleton pieces).
const BUCKETS: usize = 65;

/// ε-greedy learning with one estimate table per piece-size bucket.
///
/// ```
/// use scrack_chooser::{ChooserEngine, PolicyKind};
/// use scrack_core::Engine;
/// use scrack_types::QueryRange;
///
/// let data: Vec<u64> = (0..100_000).rev().collect();
/// let mut engine = ChooserEngine::from_kind(
///     data, Default::default(), 7, PolicyKind::Contextual,
/// );
/// for i in 0..200u64 {
///     engine.select(QueryRange::new(i * 400, i * 400 + 50));
/// }
/// // The policy learned per-size-bucket arm preferences on the fly.
/// assert_eq!(engine.stats().queries, 200);
/// ```
#[derive(Clone, Debug)]
pub struct ContextualEpsGreedy {
    /// `tables[bucket][arm]`.
    tables: Vec<Vec<ArmEstimate>>,
    eps0: f64,
    t0: f64,
    forget: f64,
    t: u64,
    /// The bucket used by the last `choose` (so `observe` credits the
    /// same table without recomputing context).
    last_bucket: usize,
}

impl ContextualEpsGreedy {
    /// Default schedule: matches the flat
    /// [`EpsilonGreedy`](crate::bandit::EpsilonGreedy) (ε₀ = 0.3 halving
    /// every 64 queries, forget 0.05) so comparisons isolate the effect
    /// of conditioning.
    pub fn new() -> Self {
        Self::with_schedule(0.3, 64.0, 0.05)
    }

    /// Full control over the schedule, for ablations.
    pub fn with_schedule(eps0: f64, t0: f64, forget: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps0), "eps0 must be a probability");
        assert!(t0 > 0.0, "t0 must be positive");
        assert!((0.0..=1.0).contains(&forget), "forget must be in [0,1]");
        Self {
            tables: vec![Vec::new(); BUCKETS],
            eps0,
            t0,
            forget,
            t: 0,
            last_bucket: 0,
        }
    }

    /// The size bucket a context falls into.
    pub fn bucket_of(ctx: &QueryContext) -> usize {
        let len = ctx.max_piece_len();
        if len == 0 {
            0
        } else {
            (usize::BITS - len.leading_zeros()) as usize
        }
    }

    /// Estimates for one bucket (reports and tests).
    pub fn bucket_estimates(&self, bucket: usize) -> &[ArmEstimate] {
        &self.tables[bucket]
    }

    fn ensure_arms(&mut self, bucket: usize, arms: usize) {
        let table = &mut self.tables[bucket];
        if table.len() < arms {
            table.resize(arms, ArmEstimate::default());
        }
    }
}

impl Default for ContextualEpsGreedy {
    fn default() -> Self {
        Self::new()
    }
}

impl ChoicePolicy for ContextualEpsGreedy {
    fn choose(&mut self, ctx: &QueryContext, arms: usize, rng: &mut SmallRng) -> usize {
        let bucket = Self::bucket_of(ctx);
        self.last_bucket = bucket;
        self.ensure_arms(bucket, arms);
        self.t += 1;
        let table = &self.tables[bucket];
        if let Some(untried) = table[..arms].iter().position(|a| a.pulls == 0) {
            return untried;
        }
        let eps = self.eps0 * self.t0 / (self.t0 + self.t as f64);
        if rng.gen_bool(eps) {
            rng.gen_range(0..arms)
        } else {
            table[..arms]
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.mean_cost.total_cmp(&b.mean_cost))
                .map(|(i, _)| i)
                .expect("at least one arm")
        }
    }

    fn observe(&mut self, arm: usize, ctx: &QueryContext, post: &QueryContext, cost: f64) {
        // Within a bucket, every cracking action pays roughly one pass
        // over the piece *now* — what distinguishes the arms is the state
        // they leave behind (a bound crack at the piece's edge leaves it
        // nearly whole; a random crack halves it in expectation). Shape
        // the cost with a one-step lookahead: work done now plus the
        // largest piece still sitting at the query bounds afterwards,
        // both in tuples, normalized by the pre-action piece. "Scan it
        // and leave it whole" ≈ 2.0; "scan it and halve it" ≈ 1.5.
        let denom = ctx.max_piece_len().max(1) as f64;
        let shaped = ((cost + post.max_piece_len() as f64) / denom).min(4.0);
        let bucket = self.last_bucket;
        self.ensure_arms(bucket, arm + 1);
        self.tables[bucket][arm].update(shaped, self.forget);
    }

    fn label(&self) -> String {
        "CtxEpsGreedy".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(piece: usize) -> QueryContext {
        QueryContext {
            column_len: 1 << 24,
            piece_low_len: piece,
            piece_high_len: piece / 2,
            crack_count: 1,
            query_no: 0,
            l1_elems: 4096,
            l2_elems: 32768,
        }
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(ContextualEpsGreedy::bucket_of(&ctx(0)), 0);
        assert_eq!(ContextualEpsGreedy::bucket_of(&ctx(1)), 1);
        assert_eq!(ContextualEpsGreedy::bucket_of(&ctx(2)), 2);
        assert_eq!(ContextualEpsGreedy::bucket_of(&ctx(3)), 2);
        assert_eq!(ContextualEpsGreedy::bucket_of(&ctx(1024)), 11);
        assert_eq!(ContextualEpsGreedy::bucket_of(&ctx(1 << 20)), 21);
    }

    /// The defining capability: learn *different* best arms for different
    /// size buckets, which no flat bandit can represent.
    #[test]
    fn learns_size_conditional_policy() {
        let mut p = ContextualEpsGreedy::with_schedule(0.15, 32.0, 0.1);
        let mut rng = SmallRng::seed_from_u64(11);
        let small = ctx(1000); // arm 0 cheap here
        let large = ctx(1 << 20); // arm 1 cheap here
        for _ in 0..600 {
            for (c, cheap) in [(&small, 0usize), (&large, 1usize)] {
                let arm = p.choose(c, 2, &mut rng);
                let denom = c.max_piece_len() as f64;
                let cost = if arm == cheap { 0.1 * denom } else { 0.9 * denom };
                p.observe(arm, c, c, cost);
            }
        }
        let mut rng2 = SmallRng::seed_from_u64(99);
        let mut small_picks = [0u32; 2];
        let mut large_picks = [0u32; 2];
        for _ in 0..200 {
            small_picks[p.choose(&small, 2, &mut rng2)] += 1;
            large_picks[p.choose(&large, 2, &mut rng2)] += 1;
        }
        assert!(
            small_picks[0] > 150,
            "small bucket should prefer arm 0: {small_picks:?}"
        );
        assert!(
            large_picks[1] > 150,
            "large bucket should prefer arm 1: {large_picks:?}"
        );
    }

    #[test]
    fn per_bucket_exploration_tries_every_arm() {
        let mut p = ContextualEpsGreedy::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let c = ctx(1 << 10);
        let mut seen = [false; 3];
        for _ in 0..3 {
            let arm = p.choose(&c, 3, &mut rng);
            assert!(!seen[arm], "arm repeated before all tried");
            seen[arm] = true;
            p.observe(arm, &c, &c, 100.0);
        }
        assert!(seen.iter().all(|s| *s));
        // A different bucket starts exploring from scratch.
        let c2 = ctx(1 << 20);
        let arm = p.choose(&c2, 3, &mut rng);
        p.observe(arm, &c2, &c2, 100.0);
        assert_eq!(
            p.bucket_estimates(ContextualEpsGreedy::bucket_of(&c2))
                .iter()
                .map(|a| a.pulls)
                .sum::<u64>(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_schedule_rejected() {
        ContextualEpsGreedy::with_schedule(2.0, 1.0, 0.1);
    }
}
