//! The menu of per-query reorganization strategies a chooser picks from.

use rand::rngs::SmallRng;
use scrack_columnstore::QueryOutput;
use scrack_core::CrackedColumn;
use scrack_types::{Element, QueryRange};

/// One way of answering a range select over a cracked column.
///
/// Every variant reuses the corresponding select path of
/// [`CrackedColumn`]; the chooser adds no reorganization semantics of its
/// own, only the decision of *which* path a query takes. All variants share
/// one column and one cracker index, so knowledge added by one action is
/// visible to every later action — exactly the property §6 asks for when it
/// speaks of "combining the strengths of the various stochastic cracking
/// algorithms".
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Original query-driven cracking (§2): cheapest on small pieces,
    /// pathological on focused workloads.
    Original,
    /// DD1R (§4): one random crack per touched piece, then cracking on the
    /// query bounds. The paper's best total-cost variant (Fig. 20).
    Dd1r,
    /// MDD1R (§4, Fig. 5): one random crack per end piece with integrated
    /// result materialization; never cracks on the bounds. The paper's
    /// default "Scrack".
    Mdd1r,
    /// Progressive MDD1R (§4) with the given swap budget in percent of the
    /// piece size; the lightest-initialization variant.
    Progressive(u32),
    /// DDC (Fig. 4): recursive center cracks down to `CRACK_SIZE`, then
    /// cracking on the bounds.
    Ddc,
    /// DDR: recursive random cracks down to `CRACK_SIZE`.
    Ddr,
    /// DD1C: one center crack per touched piece, then bound cracks.
    Dd1c,
}

impl Action {
    /// The default menu: one arm per family the paper's Fig. 20 frontier
    /// distinguishes (query-driven, eager stochastic, materializing
    /// stochastic, progressive stochastic).
    pub fn default_menu() -> Vec<Action> {
        vec![
            Action::Original,
            Action::Dd1r,
            Action::Mdd1r,
            Action::Progressive(10),
        ]
    }

    /// Every crack path [`CrackedColumn`] exposes, one arm each — the
    /// default menu plus the recursive data-driven family (DDC/DDR/DD1C)
    /// added after the chooser was first written. Extends, never reorders,
    /// [`default_menu`](Self::default_menu), so arm indices into the
    /// default menu stay valid.
    pub fn full_menu() -> Vec<Action> {
        let mut menu = Self::default_menu();
        menu.extend([Action::Ddc, Action::Ddr, Action::Dd1c]);
        menu
    }

    /// Figure-style label.
    pub fn label(&self) -> String {
        match self {
            Action::Original => "Crack".into(),
            Action::Dd1r => "DD1R".into(),
            Action::Mdd1r => "MDD1R".into(),
            Action::Progressive(pct) => format!("P{pct}%"),
            Action::Ddc => "DDC".into(),
            Action::Ddr => "DDR".into(),
            Action::Dd1c => "DD1C".into(),
        }
    }

    /// Answers `q` through this action's select path.
    pub fn execute<E: Element>(
        self,
        col: &mut CrackedColumn<E>,
        q: QueryRange,
        rng: &mut SmallRng,
    ) -> QueryOutput<E> {
        match self {
            Action::Original => col.select_original(q),
            Action::Dd1r => col.select_with(q, |c, key| c.dd1r_crack(key, rng)),
            Action::Mdd1r => col.mdd1r_select(q, rng),
            Action::Progressive(pct) => col.pmdd1r_select(q, f64::from(pct), rng),
            Action::Ddc => col.select_with(q, |c, key| c.ddc_crack(key)),
            Action::Ddr => col.select_with(q, |c, key| c.ddr_crack(key, rng)),
            Action::Dd1c => col.select_with(q, |c, key| c.dd1c_crack(key)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scrack_core::CrackConfig;

    #[test]
    fn labels() {
        assert_eq!(Action::Original.label(), "Crack");
        assert_eq!(Action::Dd1r.label(), "DD1R");
        assert_eq!(Action::Mdd1r.label(), "MDD1R");
        assert_eq!(Action::Progressive(10).label(), "P10%");
    }

    #[test]
    fn every_action_answers_correctly_on_shared_column() {
        // Interleave all actions on one column; each answer must be exact.
        let n = 4096u64;
        let data: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
        let mut col = CrackedColumn::new(data.clone(), CrackConfig::default());
        let mut rng = SmallRng::seed_from_u64(7);
        let menu = Action::full_menu();
        for i in 0..64u64 {
            let low = (i * 61) % (n - 40);
            let q = QueryRange::new(low, low + 37);
            let action = menu[(i % menu.len() as u64) as usize];
            let out = action.execute(&mut col, q, &mut rng);
            let expect = data.iter().filter(|k| q.contains(**k)).count();
            assert_eq!(out.len(), expect, "{} at query {i}", action.label());
        }
        col.check_integrity().unwrap();
    }

    #[test]
    fn default_menu_covers_the_four_families() {
        let menu = Action::default_menu();
        assert_eq!(menu.len(), 4);
        assert!(menu.contains(&Action::Original));
        assert!(menu.contains(&Action::Mdd1r));
    }

    #[test]
    fn full_menu_extends_the_default_without_reordering() {
        let full = Action::full_menu();
        let default = Action::default_menu();
        assert_eq!(&full[..default.len()], &default[..]);
        assert!(full.contains(&Action::Ddc));
        assert!(full.contains(&Action::Ddr));
        assert!(full.contains(&Action::Dd1c));
        for (i, a) in full.iter().enumerate() {
            assert!(!full[..i].contains(a), "duplicate arm {}", a.label());
        }
    }
}
