//! Manual probe: radix-vs-flat piece-lookup scaling at crack counts
//! beyond the committed `LOOKUP_CRACKS` sweep, for locating the
//! crossover on a given host. Ignored by default (minutes of wall
//! time); run with
//! `cargo test -p scrack_bench --release --test crossover_probe -- --ignored --nocapture`
//!
//! On the 1-core reference host the ratio narrows monotonically
//! (radix/flat ≈ 0.40 at 1k cracks → 0.81 at 4M cracks) without
//! crossing within any realistic crack count — see BENCH_10.json and
//! docs/ARCHITECTURE.md (PR 10).

use scrack_core::IndexPolicy;
use scrack_index::CrackerIndex;
use std::time::Instant;

fn lookup_ns(policy: IndexPolicy, cracks: usize, n: u64) -> f64 {
    let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(n as usize, policy);
    for c in 1..=cracks {
        let key = (c as u64 * n) / (cracks as u64 + 1);
        idx.add_crack(key, key as usize);
    }
    assert_eq!(idx.crack_count(), cracks);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let probes: Vec<u64> = (0..262_144)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % n
        })
        .collect();
    let mut runs = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for p in &probes {
            acc ^= idx.piece_containing(*p).start;
        }
        std::hint::black_box(acc);
        runs.push(t0.elapsed().as_nanos() as f64 / probes.len() as f64);
    }
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    runs[1]
}

#[test]
#[ignore]
fn probe() {
    let n = 16_000_000u64;
    for cracks in [65_536usize, 262_144, 1_048_576, 4_194_304] {
        let f = lookup_ns(IndexPolicy::Flat, cracks, n);
        let r = lookup_ns(IndexPolicy::Radix, cracks, n);
        println!("cracks={cracks:>8}  flat={f:7.1}ns  radix={r:7.1}ns  radix/flat={:.2}", f / r);
    }
}
