//! Criterion benches regenerating each paper figure at smoke scale.
//!
//! One bench per table/figure of the evaluation; each runs the full
//! experiment pipeline (data generation, workload, engines, reporting) at
//! a small N/Q so `cargo bench` exercises every reproduction path. The
//! full-scale numbers come from the `experiments` binary (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use scrack_experiments::figures;
use scrack_experiments::ExpConfig;

fn smoke_cfg() -> ExpConfig {
    ExpConfig {
        n: 20_000,
        queries: 100,
        seed: 7,
        out_dir: None,
        verify: false,
        ..ExpConfig::default()
    }
}

macro_rules! fig_bench {
    ($fn_name:ident, $module:ident, $label:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let cfg = smoke_cfg();
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.bench_function($label, |b| b.iter(|| figures::$module::run(&cfg).len()));
            g.finish();
        }
    };
}

fig_bench!(bench_fig02, fig02, "fig02_basic_cracking");
fig_bench!(bench_fig08, fig08, "fig08_ddc_threshold");
fig_bench!(bench_fig09, fig09, "fig09_sequential_stochastic");
fig_bench!(bench_fig10, fig10, "fig10_random");
fig_bench!(bench_fig11, fig11, "fig11_selectivity");
fig_bench!(bench_fig12, fig12, "fig12_naive");
fig_bench!(bench_fig13, fig13, "fig13_various_workloads");
fig_bench!(bench_fig14, fig14, "fig14_hybrids");
fig_bench!(bench_fig15, fig15, "fig15_updates");
fig_bench!(bench_fig16, fig16, "fig16_skyserver");
fig_bench!(bench_fig17, fig17, "fig17_all_workloads");
fig_bench!(bench_fig18, fig18, "fig18_every_x");
fig_bench!(bench_fig19, fig19, "fig19_monitor");
fig_bench!(bench_fig20, fig20, "fig20_summary");

criterion_group!(
    benches,
    bench_fig02,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18,
    bench_fig19,
    bench_fig20
);
criterion_main!(benches);
