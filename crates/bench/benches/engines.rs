//! Criterion benches: whole-select costs per adaptive-indexing strategy.
//!
//! Two views of every engine: the cost of the *first* query on a cold
//! column (the paper's "initialization cost") and the cost of a full short
//! query sequence (adaptation included).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scrack_bench::{bench_data, bench_queries};
use scrack_core::Engine;
use scrack_core::{build_engine, CrackConfig, EngineKind};
use scrack_hybrids::{HybridEngine, HybridKind};
use scrack_workloads::WorkloadKind;

const N: u64 = 262_144;

fn kinds() -> Vec<EngineKind> {
    vec![
        EngineKind::Scan,
        EngineKind::Sort,
        EngineKind::Crack,
        EngineKind::Ddc,
        EngineKind::Ddr,
        EngineKind::Dd1c,
        EngineKind::Dd1r,
        EngineKind::Mdd1r,
        EngineKind::Progressive { swap_pct: 10 },
        EngineKind::EveryX { x: 2 },
        EngineKind::FlipCoin,
        EngineKind::Monitor { threshold: 10 },
        EngineKind::RandomInject { every: 2 },
    ]
}

fn bench_first_query(c: &mut Criterion) {
    let data = bench_data(N);
    let queries = bench_queries(WorkloadKind::Random, N, 1);
    let mut g = c.benchmark_group("first_query_cold");
    g.sample_size(10);
    for kind in kinds() {
        g.bench_function(kind.label(), |b| {
            b.iter_batched(
                || build_engine(kind, data.clone(), CrackConfig::default(), 7),
                |mut eng| eng.select(queries[0]).len(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_query_sequence(c: &mut Criterion) {
    let data = bench_data(N);
    let mut g = c.benchmark_group("sequence_64_queries");
    g.sample_size(10);
    for wk in [WorkloadKind::Random, WorkloadKind::Sequential] {
        let queries = bench_queries(wk, N, 64);
        for kind in [EngineKind::Crack, EngineKind::Dd1r, EngineKind::Mdd1r] {
            g.bench_function(format!("{}/{}", wk.label(), kind.label()), |b| {
                b.iter_batched(
                    || build_engine(kind, data.clone(), CrackConfig::default(), 7),
                    |mut eng| {
                        let mut acc = 0usize;
                        for q in &queries {
                            acc += eng.select(*q).len();
                        }
                        acc
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_hybrids(c: &mut Criterion) {
    let data = bench_data(N);
    let queries = bench_queries(WorkloadKind::Random, N, 64);
    let mut g = c.benchmark_group("hybrids_64_queries");
    g.sample_size(10);
    for kind in [
        HybridKind::CrackCrack,
        HybridKind::CrackSort,
        HybridKind::CrackCrack1R,
        HybridKind::CrackSort1R,
    ] {
        g.bench_function(kind.label(), |b| {
            b.iter_batched(
                || HybridEngine::new(kind, data.clone(), CrackConfig::default(), 7),
                |mut eng| {
                    let mut acc = 0usize;
                    for q in &queries {
                        acc += eng.select(*q).len();
                    }
                    acc
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_first_query,
    bench_query_sequence,
    bench_hybrids
);
criterion_main!(benches);
