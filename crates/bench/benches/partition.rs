//! Criterion benches for the physical reorganization kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scrack_bench::bench_data;
use scrack_partition::{
    crack_in_three, crack_in_two, introsort, median_partition, split_and_materialize, Fringe,
};
use scrack_types::{QueryRange, Stats};

const SIZES: [u64; 2] = [65_536, 1_048_576];

fn bench_crack_in_two(c: &mut Criterion) {
    let mut g = c.benchmark_group("crack_in_two");
    for n in SIZES {
        let data = bench_data(n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| {
                    let mut stats = Stats::new();
                    crack_in_two(d, n / 2, &mut stats)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_crack_in_three(c: &mut Criterion) {
    let mut g = c.benchmark_group("crack_in_three");
    for n in SIZES {
        let data = bench_data(n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| {
                    let mut stats = Stats::new();
                    crack_in_three(d, n / 3, 2 * n / 3, &mut stats)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_split_and_materialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_and_materialize");
    for n in SIZES {
        let data = bench_data(n);
        let q = QueryRange::new(n / 4, n / 4 + 10);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("n={n}"), |b| {
            b.iter_batched_ref(
                || (data.clone(), Vec::with_capacity(64)),
                |(d, out)| {
                    let mut stats = Stats::new();
                    split_and_materialize(d, n / 2, Fringe::Both(q), out, &mut stats)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_median_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("median_partition_introselect");
    for n in SIZES {
        let data = bench_data(n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| {
                    let mut stats = Stats::new();
                    median_partition(d, &mut stats)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_introsort(c: &mut Criterion) {
    let mut g = c.benchmark_group("introsort");
    g.sample_size(20);
    for n in SIZES {
        let data = bench_data(n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| {
                    let mut stats = Stats::new();
                    introsort(d, &mut stats)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_crack_in_two,
    bench_crack_in_three,
    bench_split_and_materialize,
    bench_median_partition,
    bench_introsort
);
criterion_main!(benches);
