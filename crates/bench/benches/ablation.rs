//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each group pits an implemented choice against the alternative it
//! replaced, so the decisions stay justified by numbers:
//!
//! * fused `crack_in_three` vs two `crack_in_two` passes (Fig. 1's
//!   single-pass three-way split for same-piece queries);
//! * fused `split_and_materialize` vs crack-then-scan (the paper's
//!   "otherwise, we would have to do a second scan" argument for MDD1R);
//! * introselect vs sort for median finding (why DDC can afford medians
//!   at all);
//! * the arena AVL tree vs `std::collections::BTreeMap` for
//!   predecessor/successor queries (the cracker index workload).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scrack_bench::bench_data;
use scrack_index::AvlTree;
use scrack_partition::{
    crack_in_three, crack_in_two, introsort, scan_filter, select_nth_key, split_and_materialize,
    Fringe,
};
use scrack_types::{QueryRange, Stats};
use std::collections::BTreeMap;
use std::ops::Bound;

const N: u64 = 1_048_576;

fn ablate_three_way_vs_two_passes(c: &mut Criterion) {
    let data = bench_data(N);
    let (a, b) = (N / 3, 2 * N / 3);
    let mut g = c.benchmark_group("ablation_same_piece_select");
    g.throughput(Throughput::Elements(N));
    g.bench_function("crack_in_three_single_pass", |bch| {
        bch.iter_batched_ref(
            || data.clone(),
            |d| {
                let mut stats = Stats::new();
                crack_in_three(d, a, b, &mut stats)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("two_crack_in_two_passes", |bch| {
        bch.iter_batched_ref(
            || data.clone(),
            |d| {
                let mut stats = Stats::new();
                let p1 = crack_in_two(d, a, &mut stats);
                let p2 = p1 + crack_in_two(&mut d[p1..], b, &mut stats);
                (p1, p2)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn ablate_fused_materialization(c: &mut Criterion) {
    let data = bench_data(N);
    let q = QueryRange::new(N / 4, N / 4 + 1_000);
    let pivot = N / 2;
    let mut g = c.benchmark_group("ablation_mdd1r_materialization");
    g.throughput(Throughput::Elements(N));
    g.bench_function("fused_split_and_materialize", |bch| {
        bch.iter_batched_ref(
            || (data.clone(), Vec::with_capacity(2_000)),
            |(d, out)| {
                let mut stats = Stats::new();
                split_and_materialize(d, pivot, Fringe::Both(q), out, &mut stats)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("crack_then_second_scan", |bch| {
        bch.iter_batched_ref(
            || (data.clone(), Vec::with_capacity(2_000)),
            |(d, out)| {
                let mut stats = Stats::new();
                let p = crack_in_two(d, pivot, &mut stats);
                scan_filter(d, Fringe::Both(q), out, &mut stats);
                p
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn ablate_median_selection_vs_sort(c: &mut Criterion) {
    let data = bench_data(N / 4);
    let n = data.len();
    let mut g = c.benchmark_group("ablation_median_finding");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("introselect", |bch| {
        bch.iter_batched_ref(
            || data.clone(),
            |d| {
                let mut stats = Stats::new();
                select_nth_key(d, n / 2, &mut stats)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("full_sort_then_index", |bch| {
        bch.iter_batched_ref(
            || data.clone(),
            |d| {
                let mut stats = Stats::new();
                introsort(d, &mut stats);
                d[n / 2]
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn ablate_avl_vs_btreemap(c: &mut Criterion) {
    let keys: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) % 100_000_000)
        .collect();
    let mut avl: AvlTree<()> = AvlTree::new();
    let mut btree: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        avl.insert(*k, i, ());
        btree.insert(*k, i);
    }
    let probes: Vec<u64> = (0..1024u64)
        .map(|i| (i * 1_299_709) % 100_000_000)
        .collect();
    let mut g = c.benchmark_group("ablation_cracker_index_backend");
    g.bench_function("arena_avl_pred_succ_x1024", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for p in &probes {
                if let Some(id) = avl.predecessor_or_equal(*p) {
                    acc ^= avl.key(id);
                }
                if let Some(id) = avl.successor_strict(*p) {
                    acc ^= avl.key(id);
                }
            }
            acc
        })
    });
    g.bench_function("std_btreemap_pred_succ_x1024", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for p in &probes {
                if let Some((k, _)) = btree.range(..=*p).next_back() {
                    acc ^= k;
                }
                if let Some((k, _)) = btree.range((Bound::Excluded(*p), Bound::Unbounded)).next() {
                    acc ^= k;
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_three_way_vs_two_passes,
    ablate_fused_materialization,
    ablate_median_selection_vs_sort,
    ablate_avl_vs_btreemap
);
criterion_main!(benches);
