//! Criterion benches: branchy vs branchless reorganization kernels.
//!
//! The machine-readable counterpart (medians as JSON) is the
//! `scrack_bench` binary; this target gives the interactive
//! `cargo bench --bench kernels` view across piece sizes and, for the
//! filter scan, selectivities.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scrack_bench::bench_data;
use scrack_partition::{
    crack_in_three, crack_in_three_branchless, crack_in_two, crack_in_two_branchless,
    scan_filter, scan_filter_branchless, Fringe,
};
use scrack_types::{QueryRange, Stats};

const SIZES: [u64; 3] = [65_536, 1_048_576, 4_194_304];
const SELECTIVITIES: [(u64, &str); 3] = [(100, "1%"), (2, "50%"), (1, "99%")];

fn bench_two_way_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_crack_in_two");
    for n in SIZES {
        let data = bench_data(n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("branchy/n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| crack_in_two(d, n / 2, &mut Stats::new()),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("branchless/n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| crack_in_two_branchless(d, n / 2, &mut Stats::new()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_three_way_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_crack_in_three");
    for n in SIZES {
        let data = bench_data(n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("branchy/n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| crack_in_three(d, n / 3, 2 * n / 3, &mut Stats::new()),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("branchless/n={n}"), |b| {
            b.iter_batched_ref(
                || data.clone(),
                |d| crack_in_three_branchless(d, n / 3, 2 * n / 3, &mut Stats::new()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_scan_filter_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_scan_filter");
    let n = 1_048_576u64;
    let data = bench_data(n);
    g.throughput(Throughput::Elements(n));
    for (divisor, label) in SELECTIVITIES {
        // A centered range covering n/divisor keys of the dense domain.
        let width = (n as f64 * if divisor == 1 { 0.99 } else { 1.0 / divisor as f64 }) as u64;
        let q = QueryRange::new((n - width) / 2, (n - width) / 2 + width);
        g.bench_function(format!("branchy/sel={label}"), |b| {
            b.iter_batched_ref(
                || Vec::with_capacity(n as usize),
                |out| scan_filter(&data, Fringe::Both(q), out, &mut Stats::new()),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("branchless/sel={label}"), |b| {
            b.iter_batched_ref(
                || Vec::with_capacity(n as usize),
                |out| scan_filter_branchless(&data, Fringe::Both(q), out, &mut Stats::new()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_two_way_kernels,
    bench_three_way_kernels,
    bench_scan_filter_kernels
);
criterion_main!(benches);
