//! Benches for the extension crates: the §6 chooser's decision overhead,
//! the buffer pool's hit/fault paths, external engine I/O throughput,
//! rowid-set intersection strategies, and concurrent cracker scaling.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use scrack_bench::bench_data;
use scrack_chooser::{ChooserEngine, PolicyKind};
use scrack_core::{build_engine, CrackConfig, Engine, EngineKind};
use scrack_external::{build_paged_engine, DiskStore, BufferPool, PagedEngineKind, PoolConfig};
use scrack_parallel::{ParallelStrategy, PieceLockedCracker, SharedCracker};
use scrack_query::RowIdSet;
use scrack_types::QueryRange;
use scrack_workloads::{WorkloadKind, WorkloadSpec};
use std::sync::Arc;

const N: u64 = 1_048_576;
const QUERIES: usize = 512;
const SEED: u64 = 20120827;

fn queries(kind: WorkloadKind) -> Vec<QueryRange> {
    WorkloadSpec::new(kind, N, QUERIES, SEED).generate()
}

/// Chooser policies vs the fixed strategies: what a per-query decision
/// layer costs on the workload where fixed-MDD1R is already optimal
/// (Sequential) and where fixed-Crack is (Random).
fn bench_chooser_policies(c: &mut Criterion) {
    let data = bench_data(N);
    for wk in [WorkloadKind::Sequential, WorkloadKind::Random] {
        let qs = queries(wk);
        let mut g = c.benchmark_group(format!("ext_chooser_{wk:?}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(QUERIES as u64));
        for fixed in [EngineKind::Crack, EngineKind::Mdd1r] {
            g.bench_function(BenchmarkId::from_parameter(fixed.label()), |b| {
                b.iter_batched(
                    || build_engine(fixed, data.clone(), CrackConfig::default(), SEED),
                    |mut e| {
                        for q in &qs {
                            std::hint::black_box(e.select(*q).len());
                        }
                    },
                    BatchSize::LargeInput,
                );
            });
        }
        for policy in [
            PolicyKind::PieceAware,
            PolicyKind::EpsilonGreedy,
            PolicyKind::Ucb1,
            PolicyKind::Contextual,
        ] {
            g.bench_function(BenchmarkId::from_parameter(format!("{policy:?}")), |b| {
                b.iter_batched(
                    || ChooserEngine::from_kind(data.clone(), CrackConfig::default(), SEED, policy),
                    |mut e| {
                        for q in &qs {
                            std::hint::black_box(e.select(*q).len());
                        }
                    },
                    BatchSize::LargeInput,
                );
            });
        }
        g.finish();
    }
}

/// Buffer pool primitive costs: resident hit vs fault-with-eviction.
fn bench_buffer_pool(c: &mut Criterion) {
    let page_elems = 4096usize;
    let data = bench_data(N);
    let mut g = c.benchmark_group("ext_buffer_pool");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit", |b| {
        let disk = DiskStore::new(&data, page_elems);
        let mut pool = BufferPool::new(disk, PoolConfig { page_elems, frames: 8 });
        pool.page(0);
        b.iter(|| std::hint::black_box(pool.page(0)[7]));
    });
    g.bench_function("fault_evict_clean", |b| {
        let disk = DiskStore::new(&data, page_elems);
        let mut pool = BufferPool::new(disk, PoolConfig { page_elems, frames: 2 });
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 200;
            std::hint::black_box(pool.page(i)[7])
        });
    });
    g.bench_function("fault_evict_dirty", |b| {
        let disk = DiskStore::new(&data, page_elems);
        let mut pool = BufferPool::new(disk, PoolConfig { page_elems, frames: 2 });
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 200;
            let p = pool.page_mut(i);
            p[7] = p[7].wrapping_add(1);
            std::hint::black_box(p[7])
        });
    });
    g.finish();
}

/// External engines end to end: cost of answering a full Random sequence
/// through the paged path, per engine.
fn bench_external_engines(c: &mut Criterion) {
    let data = bench_data(N);
    let qs = queries(WorkloadKind::Random);
    let config = PoolConfig::with_memory_fraction(N as usize, 0.10, 4096);
    let mut g = c.benchmark_group("ext_external_engines");
    g.sample_size(10);
    g.throughput(Throughput::Elements(QUERIES as u64));
    for kind in [
        PagedEngineKind::Sort,
        PagedEngineKind::Crack,
        PagedEngineKind::Mdd1r,
    ] {
        g.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter_batched(
                || build_paged_engine(kind, &data, config, SEED),
                |mut e| {
                    for q in &qs {
                        std::hint::black_box(e.select(*q).len());
                    }
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Rowid intersection: merge vs bitmap vs adaptive across densities.
fn bench_rowset_intersection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_rowset_intersection");
    for (label, stride) in [("dense", 2u32), ("medium", 16), ("sparse", 256)] {
        let a: RowIdSet = (0..1_000_000u32).step_by(stride as usize).collect();
        let b: RowIdSet = (0..1_000_000u32).step_by(3).collect();
        g.throughput(Throughput::Elements(a.len() as u64));
        g.bench_function(BenchmarkId::new("merge", label), |bch| {
            bch.iter(|| std::hint::black_box(a.intersect_merge(&b).len()));
        });
        g.bench_function(BenchmarkId::new("bitmap", label), |bch| {
            bch.iter(|| std::hint::black_box(a.intersect_bitmap(&b).len()));
        });
        g.bench_function(BenchmarkId::new("adaptive", label), |bch| {
            bch.iter(|| std::hint::black_box(a.intersect(&b).len()));
        });
    }
    g.finish();
}

/// Concurrent crackers: 4-thread disjoint-region streams through the
/// column-lock design vs the piece-lock design.
fn bench_concurrent_crackers(c: &mut Criterion) {
    let data = bench_data(N);
    let threads = 4u64;
    let per_thread = 128u64;
    let mut g = c.benchmark_group("ext_concurrent_4threads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(threads * per_thread));
    g.bench_function("shared_column_lock", |b| {
        b.iter_batched(
            || {
                Arc::new(SharedCracker::new(
                    data.clone(),
                    ParallelStrategy::Stochastic,
                    CrackConfig::default(),
                    SEED,
                ))
            },
            |sc| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let sc = Arc::clone(&sc);
                        std::thread::spawn(move || {
                            let region = t * (N / threads);
                            for i in 0..per_thread {
                                let a = region + (i * 6151) % (N / threads - 2_000);
                                std::hint::black_box(
                                    sc.select_aggregate(QueryRange::new(a, a + 1_000)),
                                );
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("bench worker");
                }
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("piece_locks", |b| {
        b.iter_batched(
            || {
                Arc::new(PieceLockedCracker::new(
                    data.clone(),
                    ParallelStrategy::Stochastic,
                    CrackConfig::default(),
                    SEED,
                ))
            },
            |plc| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let plc = Arc::clone(&plc);
                        std::thread::spawn(move || {
                            let region = t * (N / threads);
                            for i in 0..per_thread {
                                let a = region + (i * 6151) % (N / threads - 2_000);
                                std::hint::black_box(
                                    plc.select_aggregate(QueryRange::new(a, a + 1_000)),
                                );
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("bench worker");
                }
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

/// Aggregation: the single-predicate pushdown path (fold over the
/// select's views) vs the general rowid path for the same query.
fn bench_aggregate_pushdown(c: &mut Criterion) {
    use scrack_query::{CrackedTable, Predicate};
    let n = 262_144u64;
    let base: Vec<u64> = bench_data(n);
    let mut g = c.benchmark_group("ext_aggregate");
    g.throughput(Throughput::Elements(n / 8));
    g.bench_function("pushdown_same_column", |b| {
        let mut t = CrackedTable::new();
        t.add_column("v", base.clone(), EngineKind::Mdd1r, SEED);
        // Warm the index so the bench isolates the aggregation path.
        t.aggregate(&[Predicate::range("v", 0, n / 8)], "v");
        b.iter(|| std::hint::black_box(t.aggregate(&[Predicate::range("v", 0, n / 8)], "v").sum));
    });
    g.bench_function("rowid_path_cross_column", |b| {
        let mut t = CrackedTable::new();
        t.add_column("v", base.clone(), EngineKind::Mdd1r, SEED);
        t.add_column("w", base.clone(), EngineKind::Mdd1r, SEED + 1);
        t.aggregate(&[Predicate::range("v", 0, n / 8)], "w");
        b.iter(|| std::hint::black_box(t.aggregate(&[Predicate::range("v", 0, n / 8)], "w").sum));
    });
    g.finish();
}

/// Budgeted sideways maps: the rebuild tax of a too-small storage budget.
fn bench_budgeted_sideways(c: &mut Criterion) {
    use scrack_columnstore::Table;
    use scrack_sideways::{BudgetedSideways, MapStrategy};
    let n = 131_072u64;
    let make_table = || {
        let mut t = Table::new();
        t.add_column("a", bench_data(n));
        t.add_column("b", (0..n).map(|i| i * 2).collect());
        t.add_column("c", (0..n).rev().collect());
        t
    };
    let mut g = c.benchmark_group("ext_sideways_budget");
    g.sample_size(10);
    for (label, budget_maps) in [("thrash_1_map", 1usize), ("fits_2_maps", 2)] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    BudgetedSideways::new(
                        make_table(),
                        MapStrategy::Stochastic,
                        CrackConfig::default(),
                        SEED,
                        budget_maps * n as usize,
                    )
                },
                |mut s| {
                    for i in 0..32u64 {
                        let q = QueryRange::new((i * 997) % (n / 2), (i * 997) % (n / 2) + 512);
                        let (sel, proj) = if i % 2 == 0 { ("a", "b") } else { ("c", "b") };
                        std::hint::black_box(s.select_project(sel, q, proj).len());
                    }
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_chooser_policies,
    bench_buffer_pool,
    bench_external_engines,
    bench_rowset_intersection,
    bench_concurrent_crackers,
    bench_aggregate_pushdown,
    bench_budgeted_sideways,
);
criterion_main!(benches);
