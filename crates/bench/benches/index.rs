//! Criterion benches for the cracker index, AVL vs flat representation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scrack_index::{AvlTree, CrackerIndex, FlatIndex, IndexPolicy};

fn crack_positions(n: usize) -> Vec<(u64, usize)> {
    // Pseudo-random insertion order of n cracks over a 10^8 key space.
    (0..n)
        .map(|i| {
            let k = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) % 100_000_000;
            (k, (k / 2) as usize)
        })
        .collect()
}

/// A converged cracker index with `n` cracks on the given representation.
fn built_index(n: usize, policy: IndexPolicy) -> CrackerIndex<()> {
    let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(50_000_000, policy);
    let mut sorted = crack_positions(n);
    sorted.sort_unstable();
    sorted.dedup_by_key(|(k, _)| *k);
    let mut floor = 0usize;
    for (k, p) in &sorted {
        let p = (*p).max(floor);
        floor = p;
        idx.add_crack(*k, p);
    }
    idx
}

fn bench_insert(c: &mut Criterion) {
    let cracks = crack_positions(10_000);
    c.bench_function("avl/insert_10k", |b| {
        b.iter_batched_ref(
            AvlTree::<()>::new,
            |t| {
                for (k, p) in &cracks {
                    t.insert(*k, *p, ());
                }
                t.len()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("flat/insert_10k", |b| {
        b.iter_batched_ref(
            FlatIndex::<()>::new,
            |f| {
                for (k, p) in &cracks {
                    f.insert(*k, *p, ());
                }
                f.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_piece_lookup(c: &mut Criterion) {
    let probes: Vec<u64> = (0..1024u64).map(|i| (i * 97_657) % 100_000_000).collect();
    for policy in IndexPolicy::ALL {
        let idx = built_index(10_000, policy);
        c.bench_function(format!("cracker_index/{policy}/piece_containing_x1024"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for p in &probes {
                    acc ^= idx.piece_containing(*p).start;
                }
                acc
            })
        });
    }
}

fn bench_piece_iteration(c: &mut Criterion) {
    for policy in IndexPolicy::ALL {
        let idx = built_index(10_000, policy);
        c.bench_function(format!("cracker_index/{policy}/iter_pieces_10k"), |b| {
            b.iter(|| idx.iter_pieces().map(|p| p.len()).sum::<usize>())
        });
    }
}

fn bench_neighbor_queries(c: &mut Criterion) {
    let cracks = crack_positions(10_000);
    let probes: Vec<u64> = (0..1024u64).map(|i| (i * 31_337) % 100_000_000).collect();
    let mut t: AvlTree<()> = AvlTree::new();
    let mut f: FlatIndex<()> = FlatIndex::new();
    for (k, p) in &cracks {
        t.insert(*k, *p, ());
        f.insert(*k, *p, ());
    }
    c.bench_function("avl/pred_succ_x1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &probes {
                if let Some(id) = t.predecessor_or_equal(*p) {
                    acc ^= t.key(id);
                }
                if let Some(id) = t.successor_strict(*p) {
                    acc ^= t.key(id);
                }
            }
            acc
        })
    });
    c.bench_function("flat/pred_succ_x1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &probes {
                if let Some(id) = f.predecessor_or_equal(*p) {
                    acc ^= f.key(id);
                }
                if let Some(id) = f.successor_strict(*p) {
                    acc ^= f.key(id);
                }
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_piece_lookup,
    bench_piece_iteration,
    bench_neighbor_queries
);
criterion_main!(benches);
