//! The end-to-end query-latency harness: the paper's central figure, as
//! data, under all three cracker-index representations.
//!
//! The kernel harness ([`crate::kernels_report`]) tracks ns/element of
//! the reorganization primitives and the throughput harness
//! ([`crate::throughput_report`]) concurrent queries/sec; this module
//! tracks the figure the paper itself leads with — **per-query response
//! time and cumulative time over a 10k-query sequence** — and uses it to
//! baseline the PR-4 tentpole: the flat cracker index vs the AVL tree.
//! Early in a sequence, data movement dominates and the index policy is
//! invisible; post-convergence, per-query cost *is* index navigation, and
//! the flat representation's branch-free search over contiguous arrays
//! is where the win shows. The report therefore carries both the overall
//! median and the **tail median** (the last 10% of the sequence, i.e.
//! post-convergence) per cell, plus a direct piece-lookup microbench at
//! fixed crack counts.
//!
//! Emits `BENCH_4.json` in the repo root (regenerated via `cargo run
//! --release -p scrack_bench --bin scrack_latency -- --json
//! BENCH_4.json`). Every cell's result stream is checksummed; the
//! harness asserts bit-identical answers across every index policy —
//! the cross-policy contract checked at bench time on real scales.
//!
//! PR 10 widened both axes: the radix trie joins the policy sweep (its
//! crossover vs the flat index is what the `65536`-crack lookup point
//! exists to expose), and the deterministic MDD1M midpoint engine joins
//! the engine sweep.

use scrack_core::{CrackConfig, CrackEngine, Engine, IndexPolicy, Mdd1mEngine, Mdd1rEngine};
use scrack_index::CrackerIndex;
use scrack_types::QueryRange;
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{WorkloadKind, WorkloadSpec};
use std::time::Instant;

/// The engines the sweep covers: original cracking, the paper's robust
/// default (MDD1R, a.k.a. Scrack), and the deterministic data-driven
/// midpoint variant (MDD1M).
pub const ENGINES: [&str; 3] = ["crack", "mdd1r", "mdd1m"];

/// The workload patterns the sweep covers (Fig. 7 names).
pub const WORKLOADS: [&str; 3] = ["random", "sequential", "skew"];

/// The crack counts the piece-lookup microbench measures at. The
/// acceptance target for the flat index is defined at `>= 1k` cracks —
/// the post-convergence regime; the `65536` point exists to expose the
/// radix trie's crossover against binary-search depth.
pub const LOOKUP_CRACKS: [usize; 4] = [1_024, 4_096, 16_384, 65_536];

/// Scale and sweep settings for one harness run.
#[derive(Clone, Debug)]
pub struct LatencyConfig {
    /// Column size / key domain `N`.
    pub n: u64,
    /// Queries per engine/workload/policy run (the paper's sequence
    /// length is 10^4).
    pub queries: usize,
    /// Runs per cell; reported numbers are medians across samples.
    pub samples: usize,
    /// Index policies to sweep (default: both).
    pub policies: Vec<IndexPolicy>,
    /// RNG seed for data and workloads.
    pub seed: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            n: 1_000_000,
            queries: 10_000,
            samples: 3,
            policies: IndexPolicy::ALL.to_vec(),
            seed: 0xBE7C,
        }
    }
}

/// One `(engine, workload, policy)` end-to-end measurement.
#[derive(Clone, Debug)]
pub struct LatencyCell {
    /// Engine (one of [`ENGINES`]).
    pub engine: &'static str,
    /// Workload pattern (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// Index policy label (`avl`, `flat` or `radix`).
    pub policy: &'static str,
    /// Cumulative wall-clock seconds for the whole query sequence
    /// (median across samples).
    pub cumulative_s: f64,
    /// Median per-query latency over the full sequence, microseconds.
    pub median_us: f64,
    /// Median per-query latency over the **last 10%** of the sequence —
    /// the post-convergence regime where index navigation dominates.
    pub tail_median_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
    /// Final crack count (identical across policies by contract).
    pub cracks: usize,
}

/// One piece-lookup microbench measurement.
#[derive(Clone, Debug)]
pub struct LookupCell {
    /// Index policy label.
    pub policy: &'static str,
    /// Cracks in the index when measured.
    pub cracks: usize,
    /// Key domain the synthetic index spans. May exceed the config's
    /// `n`: the microbench needs room to spread `cracks` distinct keys,
    /// so it uses `max(n, 2^20)` and records the value here.
    pub domain: u64,
    /// Nanoseconds per `piece_containing` call (median across samples).
    pub ns_per_lookup: f64,
}

/// The full harness output.
#[derive(Clone, Debug)]
pub struct LatencyReport {
    /// The configuration the cells were measured under.
    pub config: LatencyConfig,
    /// CPUs available to the measuring process (context only; the
    /// harness itself is single-threaded).
    pub host_cpus: usize,
    /// End-to-end cells, engine-major then workload then policy.
    pub cells: Vec<LatencyCell>,
    /// Piece-lookup microbench cells, policy-major then crack count.
    pub lookup: Vec<LookupCell>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// The `p`-th percentile (nearest-rank) of `xs` in place.
fn percentile(xs: &mut [f64], p: f64) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

fn workload_kind(name: &str) -> WorkloadKind {
    match name {
        "random" => WorkloadKind::Random,
        "sequential" => WorkloadKind::Sequential,
        "skew" => WorkloadKind::Skew,
        other => panic!("unknown workload {other}"),
    }
}

/// One timed engine run: per-query latencies (ns), a result checksum,
/// and the final crack count.
fn run_once(
    engine: &str,
    policy: IndexPolicy,
    data: &[u64],
    queries: &[QueryRange],
    seed: u64,
) -> (Vec<f64>, u64, usize) {
    let config = CrackConfig::default().with_index(policy);
    let mut latencies = Vec::with_capacity(queries.len());
    let mut checksum = 0u64;
    let mut select = |eng: &mut dyn Engine<u64>| {
        for q in queries {
            let t0 = Instant::now();
            let out = eng.select(*q);
            latencies.push(t0.elapsed().as_nanos() as f64);
            checksum = checksum
                .wrapping_add(std::hint::black_box(out.len()) as u64)
                .wrapping_add(out.key_checksum(eng.data()));
        }
    };
    let cracks = match engine {
        "crack" => {
            let mut eng = CrackEngine::new(data.to_vec(), config);
            select(&mut eng);
            eng.cracked().index().crack_count()
        }
        "mdd1r" => {
            let mut eng = Mdd1rEngine::new(data.to_vec(), config, seed);
            select(&mut eng);
            eng.cracked_mut().index().crack_count()
        }
        "mdd1m" => {
            let mut eng = Mdd1mEngine::new(data.to_vec(), config);
            select(&mut eng);
            eng.cracked_mut().index().crack_count()
        }
        other => panic!("unknown engine {other}"),
    };
    (latencies, checksum, cracks)
}

/// Median ns per `piece_containing` over an index with `cracks` cracks.
fn lookup_ns(policy: IndexPolicy, cracks: usize, n: u64, samples: usize) -> f64 {
    // Synthetic converged index: cracks evenly spread over the key
    // domain, positions proportional — the layout a long query sequence
    // converges to.
    let mut idx: CrackerIndex<()> = CrackerIndex::with_policy(n as usize, policy);
    for c in 1..=cracks {
        let key = (c as u64 * n) / (cracks as u64 + 1);
        idx.add_crack(key, key as usize);
    }
    assert_eq!(idx.crack_count(), cracks, "synthetic cracks collided");
    // A long, non-repeating probe stream: short repeated probe sets let
    // the branch predictor memorize the comparison outcomes, which
    // flatters pointer-chasing structures unrealistically.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let probes: Vec<u64> = (0..262_144)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % n
        })
        .collect();
    let mut runs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for p in &probes {
            acc ^= idx.piece_containing(*p).start;
        }
        std::hint::black_box(acc);
        runs.push(t0.elapsed().as_nanos() as f64 / probes.len() as f64);
    }
    median(runs)
}

impl LatencyReport {
    /// Runs the harness: every engine × workload × policy,
    /// `config.samples` timed runs each, plus the piece-lookup
    /// microbench. Asserts bit-identical result checksums and crack
    /// counts across index policies per (engine, workload).
    pub fn measure(config: &LatencyConfig) -> LatencyReport {
        assert!(config.samples > 0, "need at least one sample");
        assert!(config.queries > 0, "need at least one query");
        assert!(!config.policies.is_empty(), "need at least one policy");
        let data = unique_permutation::<u64>(config.n, config.seed);
        let mut cells = Vec::new();
        for engine in ENGINES {
            for workload in WORKLOADS {
                let queries = WorkloadSpec::new(
                    workload_kind(workload),
                    config.n,
                    config.queries,
                    config.seed,
                )
                .with_selectivity((config.n / 1_000).max(10))
                .generate();
                let mut checksum_seen: Option<u64> = None;
                let mut cracks_seen: Option<usize> = None;
                for &policy in &config.policies {
                    let mut cum_runs = Vec::with_capacity(config.samples);
                    let mut med_runs = Vec::with_capacity(config.samples);
                    let mut tail_runs = Vec::with_capacity(config.samples);
                    let mut p99_runs = Vec::with_capacity(config.samples);
                    let mut cracks = 0usize;
                    for _ in 0..config.samples {
                        let (lat, checksum, run_cracks) =
                            run_once(engine, policy, &data, &queries, config.seed);
                        // The index policy must not change a single
                        // answer — caught here at real scale.
                        let seen = *checksum_seen.get_or_insert(checksum);
                        assert_eq!(
                            seen, checksum,
                            "{engine}/{workload}/{policy}: result checksum diverged"
                        );
                        let seen_cracks = *cracks_seen.get_or_insert(run_cracks);
                        assert_eq!(
                            seen_cracks, run_cracks,
                            "{engine}/{workload}/{policy}: crack count diverged"
                        );
                        cracks = run_cracks;
                        cum_runs.push(lat.iter().sum::<f64>() / 1e9);
                        let tail_start = lat.len() - (lat.len() / 10).max(1);
                        tail_runs.push(median(lat[tail_start..].to_vec()) / 1_000.0);
                        let mut lat = lat;
                        p99_runs.push(percentile(&mut lat, 99.0) / 1_000.0);
                        med_runs.push(median(lat) / 1_000.0);
                    }
                    cells.push(LatencyCell {
                        engine,
                        workload,
                        policy: policy.label(),
                        cumulative_s: median(cum_runs),
                        median_us: median(med_runs),
                        tail_median_us: median(tail_runs),
                        p99_us: median(p99_runs),
                        cracks,
                    });
                }
            }
        }
        let mut lookup = Vec::new();
        let lookup_domain = config.n.max(1 << 20);
        for &policy in &config.policies {
            for cracks in LOOKUP_CRACKS {
                lookup.push(LookupCell {
                    policy: policy.label(),
                    cracks,
                    domain: lookup_domain,
                    ns_per_lookup: lookup_ns(policy, cracks, lookup_domain, config.samples),
                });
            }
        }
        LatencyReport {
            config: config.clone(),
            host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            cells,
            lookup,
        }
    }

    /// The cell for (engine, workload, policy), if measured.
    pub fn cell(&self, engine: &str, workload: &str, policy: &str) -> Option<&LatencyCell> {
        self.cells
            .iter()
            .find(|c| c.engine == engine && c.workload == workload && c.policy == policy)
    }

    /// The lookup cell for (policy, cracks), if measured.
    pub fn lookup_cell(&self, policy: &str, cracks: usize) -> Option<&LookupCell> {
        self.lookup
            .iter()
            .find(|c| c.policy == policy && c.cracks == cracks)
    }

    /// Piece-lookup speedup of `contender` over `baseline` at `cracks`,
    /// when both were measured (`baseline_ns / contender_ns`; > 1 means
    /// the contender is faster).
    pub fn lookup_speedup_over(
        &self,
        baseline: &str,
        contender: &str,
        cracks: usize,
    ) -> Option<f64> {
        let base = self.lookup_cell(baseline, cracks)?.ns_per_lookup;
        let cont = self.lookup_cell(contender, cracks)?.ns_per_lookup;
        (cont > 0.0).then(|| base / cont)
    }

    /// Flat-over-AVL piece-lookup speedup at `cracks`, when both were
    /// measured (`avl_ns / flat_ns`; > 1 means flat is faster).
    pub fn lookup_speedup(&self, cracks: usize) -> Option<f64> {
        self.lookup_speedup_over("avl", "flat", cracks)
    }

    /// Radix-over-flat piece-lookup speedup at `cracks` (> 1 means the
    /// radix trie is faster) — the crossover measurement the radix
    /// representation is judged by.
    pub fn radix_lookup_speedup(&self, cracks: usize) -> Option<f64> {
        self.lookup_speedup_over("flat", "radix", cracks)
    }

    /// Every engine/workload/policy combination (and lookup cell) missing
    /// from the report (empty = full coverage). The CI latency-smoke step
    /// gates on this — coverage only, never a perf threshold.
    pub fn missing_cells(&self) -> Vec<String> {
        let mut missing = Vec::new();
        for engine in ENGINES {
            for workload in WORKLOADS {
                for &policy in &self.config.policies {
                    if self.cell(engine, workload, policy.label()).is_none() {
                        missing.push(format!("{engine}/{workload}/{}", policy.label()));
                    }
                }
            }
        }
        for &policy in &self.config.policies {
            for cracks in LOOKUP_CRACKS {
                if self.lookup_cell(policy.label(), cracks).is_none() {
                    missing.push(format!("lookup/{}/{cracks}", policy.label()));
                }
            }
        }
        missing
    }

    /// Serializes the report as JSON (hand-rolled, as the workspace
    /// builds offline without serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"scrack-latency-bench/v1\",\n");
        s.push_str(&format!("  \"n\": {},\n", self.config.n));
        s.push_str(&format!("  \"queries\": {},\n", self.config.queries));
        s.push_str(&format!("  \"samples\": {},\n", self.config.samples));
        s.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        let quoted = |names: &[&str]| -> String {
            names
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let policies: Vec<&str> = self.config.policies.iter().map(|p| p.label()).collect();
        s.push_str(&format!("  \"engines\": [{}],\n", quoted(&ENGINES)));
        s.push_str(&format!("  \"workloads\": [{}],\n", quoted(&WORKLOADS)));
        s.push_str(&format!("  \"index_policies\": [{}],\n", quoted(&policies)));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"index\": \"{}\", \
                 \"cumulative_s\": {:.4}, \"median_us\": {:.3}, \
                 \"tail_median_us\": {:.3}, \"p99_us\": {:.2}, \"cracks\": {}}}{}\n",
                c.engine,
                c.workload,
                c.policy,
                c.cumulative_s,
                c.median_us,
                c.tail_median_us,
                c.p99_us,
                c.cracks,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"lookup\": [\n");
        for (i, c) in self.lookup.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"index\": \"{}\", \"cracks\": {}, \"domain\": {}, \
                 \"ns_per_lookup\": {:.2}}}{}\n",
                c.policy,
                c.cracks,
                c.domain,
                c.ns_per_lookup,
                if i + 1 < self.lookup.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// A human-readable summary (markdown): the end-to-end table plus
    /// the lookup table with flat-over-AVL speedups.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "| engine | workload | index | cumulative (s) | median (µs) | \
             tail median (µs) | p99 (µs) | cracks |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|\n");
        for c in &self.cells {
            s.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.2} | {:.2} | {:.1} | {} |\n",
                c.engine,
                c.workload,
                c.policy,
                c.cumulative_s,
                c.median_us,
                c.tail_median_us,
                c.p99_us,
                c.cracks
            ));
        }
        s.push_str("\n| index | cracks | ns/lookup | flat speedup | radix speedup |\n");
        s.push_str("|---|---|---|---|---|\n");
        for c in &self.lookup {
            let speedup = self
                .lookup_speedup(c.cracks)
                .map_or("—".to_string(), |x| format!("{x:.2}x"));
            let radix = self
                .radix_lookup_speedup(c.cracks)
                .map_or("—".to_string(), |x| format!("{x:.2}x"));
            s.push_str(&format!(
                "| {} | {} | {:.1} | {} | {} |\n",
                c.policy, c.cracks, c.ns_per_lookup, speedup, radix
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LatencyConfig {
        LatencyConfig {
            n: 4_000,
            queries: 100,
            samples: 1,
            policies: IndexPolicy::ALL.to_vec(),
            seed: 7,
        }
    }

    #[test]
    fn covers_every_cell_with_finite_numbers() {
        let r = LatencyReport::measure(&tiny_config());
        let n_policies = IndexPolicy::ALL.len();
        assert_eq!(r.cells.len(), ENGINES.len() * WORKLOADS.len() * n_policies);
        assert_eq!(r.lookup.len(), LOOKUP_CRACKS.len() * n_policies);
        assert!(r.missing_cells().is_empty(), "{:?}", r.missing_cells());
        for c in &r.cells {
            assert!(c.cumulative_s.is_finite() && c.cumulative_s > 0.0, "{c:?}");
            assert!(c.median_us.is_finite() && c.median_us >= 0.0, "{c:?}");
            assert!(c.tail_median_us.is_finite(), "{c:?}");
            assert!(c.p99_us >= c.median_us, "{c:?}");
            assert!(c.cracks > 0, "{c:?}");
        }
        for c in &r.lookup {
            assert!(c.ns_per_lookup.is_finite() && c.ns_per_lookup > 0.0, "{c:?}");
        }
        for cracks in LOOKUP_CRACKS {
            assert!(r.lookup_speedup(cracks).unwrap() > 0.0);
            assert!(r.radix_lookup_speedup(cracks).unwrap() > 0.0);
        }
    }

    #[test]
    fn policy_restriction_narrows_the_sweep() {
        let mut cfg = tiny_config();
        cfg.policies = vec![IndexPolicy::Flat];
        let r = LatencyReport::measure(&cfg);
        assert_eq!(r.cells.len(), ENGINES.len() * WORKLOADS.len());
        assert!(r.cells.iter().all(|c| c.policy == "flat"));
        assert!(r.missing_cells().is_empty());
        assert!(r.lookup_speedup(1_024).is_none(), "needs both policies");
    }

    #[test]
    fn json_is_structurally_sound_and_complete() {
        let r = LatencyReport::measure(&tiny_config());
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "schema", "n", "queries", "samples", "host_cpus", "engines", "workloads",
            "index_policies", "cells", "lookup", "tail_median_us", "ns_per_lookup",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for name in ENGINES
            .iter()
            .chain(WORKLOADS.iter())
            .chain(["avl", "flat", "radix"].iter())
        {
            assert!(json.contains(name), "missing {name}");
        }
        assert!(!json.contains(",\n  ]"), "trailing comma before ]");
        assert!(!json.contains(",\n}"), "trailing comma before }}");
    }
}
