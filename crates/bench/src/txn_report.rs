//! The transactional chaos gauntlet: interleaving fuzzer × fault matrix
//! against a serial per-epoch oracle, hunting snapshot-isolation
//! anomalies.
//!
//! Each scenario arms one fault from the PR 7 ladder (or none) and
//! replays seeded pseudo-random multi-session schedules through a
//! [`TxnManager`], checking every read and every outcome against a flat
//! multiset model that serializes commits by epoch. Violations are
//! classified into the four classic SI anomalies:
//!
//! * **dirty read** — a read matches the model only after overlaying
//!   another live session's *uncommitted* writes;
//! * **non-repeatable read** — the same range read twice inside one
//!   session returns different answers;
//! * **lost update** — the drained final state (or the epoch counter)
//!   diverges from the serial replay of the committed history;
//! * **torn read** — any other divergence: the reader saw a state no
//!   committed prefix plus its own writes can explain (e.g. half of a
//!   multi-shard commit).
//!
//! Alongside the anomaly counters the gauntlet enforces the bookkeeping
//! invariants: every session ends in exactly one
//! [`TxnOutcome`] accounted in `ResilienceStats`, the lock
//! table drains to zero after every round, and a fixed-seed round
//! replays bit-identically. A second sweep drives an **open-loop
//! session arrival process** (virtual queueing clock, as in
//! [`crate::robustness_report`]) across offered rates and reports
//! sojourn latency plus the committed/timed-out split.
//!
//! `scrack_txn --smoke --check` is the CI gate; the committed
//! `BENCH_9.json` is the full-size document.

use crate::trajectory::{obj, percentile, Json, TrajectoryDoc};
use scrack_core::{CrackConfig, FaultPlan};
use scrack_parallel::{AdmissionPolicy, ParallelStrategy, ServingConfig};
use scrack_txn::{Session, TxnManager, TxnOutcome};
use scrack_types::QueryRange;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fault matrix: every scenario the fuzzer runs.
pub const SCENARIOS: [&str; 6] = [
    "none",
    "panic-kernel",
    "panic-commit",
    "poison",
    "overload",
    "delay",
];

/// Gauntlet dimensions.
#[derive(Clone, Debug)]
pub struct TxnGauntletConfig {
    /// Column size per round.
    pub n: u64,
    /// Fuzz rounds per scenario.
    pub rounds: usize,
    /// Schedule steps per round.
    pub steps: usize,
    /// Concurrent session slots the fuzzer interleaves.
    pub sessions: usize,
    /// Key-disjoint shards per manager.
    pub shards: usize,
    /// Injection-site trigger for the fault scenarios.
    pub fault_trigger: u32,
    /// Offered-load multiples of the calibrated base rate for the
    /// open-loop arrival sweep.
    pub load_factors: Vec<f64>,
    /// Sessions per arrival-sweep run.
    pub arrival_sessions: usize,
    /// Session deadline for the arrival sweep, milliseconds.
    pub deadline_ms: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Scenarios to run (defaults to all of [`SCENARIOS`]).
    pub scenarios: Vec<&'static str>,
}

impl Default for TxnGauntletConfig {
    fn default() -> Self {
        Self {
            n: 40_000,
            rounds: 16,
            steps: 160,
            sessions: 4,
            shards: 3,
            fault_trigger: 4,
            load_factors: vec![0.5, 0.9, 1.2, 2.0],
            arrival_sessions: 600,
            deadline_ms: 250,
            seed: 0x90_09,
            scenarios: SCENARIOS.to_vec(),
        }
    }
}

impl TxnGauntletConfig {
    /// CI scale: seconds, not minutes.
    pub fn smoke() -> Self {
        Self {
            n: 4_000,
            rounds: 4,
            steps: 64,
            arrival_sessions: 150,
            ..Self::default()
        }
    }
}

/// One scenario's fuzz results, summed over its rounds.
#[derive(Clone, Debug, Default)]
pub struct ChaosCell {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: String,
    /// Rounds fuzzed.
    pub rounds: usize,
    /// Sessions opened (admitted) across all rounds.
    pub sessions_run: usize,
    /// Reads compared against the oracle (each issued twice).
    pub reads_checked: usize,
    /// Reads explained only by uncommitted foreign writes.
    pub dirty_reads: usize,
    /// Same-session double reads that disagreed.
    pub non_repeatable_reads: usize,
    /// Final-state or epoch divergences from the serial replay.
    pub lost_updates: usize,
    /// Reads no committed prefix can explain.
    pub torn_reads: usize,
    /// Sessions whose outcome contradicted the oracle (and no fault
    /// fired to excuse it), or accounting that failed to balance.
    pub outcome_mismatches: usize,
    /// Lock-table entries left behind after any round (must be 0).
    pub lock_residue: usize,
    /// Fixed-seed re-runs that were not bit-identical.
    pub replay_divergences: usize,
    /// Outcome counters summed over rounds.
    pub committed: u64,
    /// Aborts (wounds, validation, faults, explicit).
    pub aborted: u64,
    /// Sessions refused at admission.
    pub shed: u64,
    /// Deadline misses.
    pub timed_out: u64,
    /// Injected panics caught and isolated.
    pub panics_isolated: u64,
    /// Shard quarantines entered.
    pub quarantines: u64,
    /// Quarantine ladders completed.
    pub rebuilds: u64,
}

/// One open-loop arrival-rate measurement.
#[derive(Clone, Debug)]
pub struct ArrivalCell {
    /// Offered load as a multiple of the calibrated base rate.
    pub load_factor: f64,
    /// Absolute offered arrival rate, sessions/sec.
    pub offered_sps: f64,
    /// Sessions offered.
    pub attempted: usize,
    /// Sessions committed.
    pub committed: usize,
    /// Sessions whose virtual sojourn exceeded the deadline.
    pub timed_out: usize,
    /// Median sojourn latency of committed sessions, ms.
    pub p50_ms: f64,
    /// 99th-percentile sojourn latency, ms.
    pub p99_ms: f64,
}

/// The full gauntlet output.
#[derive(Clone, Debug)]
pub struct TxnReport {
    /// The configuration the cells were measured under.
    pub config: TxnGauntletConfig,
    /// CPUs available to the measuring process.
    pub host_cpus: usize,
    /// Calibrated closed-loop base rate, sessions/sec.
    pub base_sps: f64,
    /// One cell per scenario.
    pub cells: Vec<ChaosCell>,
    /// One cell per offered load factor.
    pub arrivals: Vec<ArrivalCell>,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn permutation(n: u64, salt: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    for i in (1..data.len()).rev() {
        data.swap(i, (xorshift(&mut state) % (i as u64 + 1)) as usize);
    }
    data
}

/// One committed op in the oracle history; evaporated deletes stay for
/// first-committer-wins validation, exactly like the real log.
#[derive(Clone, Copy)]
enum HistOp {
    Insert(u64),
    Delete { key: u64, hits: bool },
}

impl HistOp {
    fn key(&self) -> u64 {
        match self {
            HistOp::Insert(k) => *k,
            HistOp::Delete { key, .. } => *key,
        }
    }
}

/// Serial per-epoch oracle over a flat multiset (see module docs).
struct Oracle {
    base: Vec<u64>, // sorted
    committed: Vec<(u64, HistOp)>,
    epoch: u64,
}

struct OracleSession {
    snapshot: u64,
    writes: Vec<HistOp>,
}

impl Oracle {
    fn new(data: &[u64]) -> Self {
        let mut base = data.to_vec();
        base.sort_unstable();
        Self {
            base,
            committed: Vec::new(),
            epoch: 0,
        }
    }

    fn begin(&self) -> OracleSession {
        OracleSession {
            snapshot: self.epoch,
            writes: Vec::new(),
        }
    }

    /// The committed view at `snapshot` plus `own`, over `q`.
    fn view(&self, snapshot: u64, own: &[HistOp], q: QueryRange) -> (usize, u64) {
        let lo = self.base.partition_point(|x| *x < q.low);
        let hi = self.base.partition_point(|x| *x < q.high);
        let mut count = (hi - lo) as i64;
        let mut sum = self.base[lo..hi]
            .iter()
            .fold(0u64, |a, k| a.wrapping_add(*k));
        let overlay = self
            .committed
            .iter()
            .filter(|(ep, _)| *ep <= snapshot)
            .map(|(_, op)| op)
            .chain(own.iter());
        for op in overlay {
            match op {
                HistOp::Insert(k) if q.contains(*k) => {
                    count += 1;
                    sum = sum.wrapping_add(*k);
                }
                HistOp::Delete { key, hits: true } if q.contains(*key) => {
                    count -= 1;
                    sum = sum.wrapping_sub(*key);
                }
                _ => {}
            }
        }
        (count.max(0) as usize, sum)
    }

    fn delete_hits(&self, s: &OracleSession, k: u64) -> bool {
        self.view(s.snapshot, &s.writes, QueryRange::new(k, k + 1)).0 > 0
    }

    /// Would this session's commit pass first-committer-wins validation?
    fn would_commit(&self, s: &OracleSession) -> bool {
        !self
            .committed
            .iter()
            .filter(|(ep, _)| *ep > s.snapshot)
            .any(|(_, op)| s.writes.iter().any(|w| w.key() == op.key()))
    }

    /// Applies a session the real manager actually committed.
    fn apply(&mut self, s: OracleSession) -> u64 {
        self.epoch += 1;
        let ep = self.epoch;
        self.committed.extend(s.writes.into_iter().map(|w| (ep, w)));
        ep
    }
}

/// The fault plan for a named scenario; kernel/commit/poison faults
/// target shard 0 so quarantine stays observable and bounded.
fn fault_plan(scenario: &str, trigger: u32) -> FaultPlan {
    match scenario {
        "none" => FaultPlan::disabled(),
        "panic-kernel" => FaultPlan::panic_in_kernel(trigger).on_target(0),
        // The commit site is polled once per shard-0-writing commit —
        // orders of magnitude rarer than kernel cracks — so it arms at
        // the first hit regardless of the configured trigger.
        "panic-commit" => FaultPlan::panic_in_commit(1).on_target(0),
        "poison" => FaultPlan::poison_shard(trigger).on_target(0),
        "overload" => FaultPlan::queue_overload(2).with_repeat(8),
        "delay" => FaultPlan::delay_in_crack(trigger, 1 << 14).on_target(0),
        other => panic!("unknown scenario {other}"),
    }
}

fn serving_for(scenario: &str) -> ServingConfig {
    match scenario {
        // The overload fault clamps effective capacity; shedding (not
        // unconditional admission) is the behavior under test.
        "overload" => ServingConfig::bounded(usize::MAX, AdmissionPolicy::Shed),
        _ => ServingConfig::default(),
    }
}

/// The deterministic trace a round leaves behind, for replay comparison.
#[derive(PartialEq, Debug, Default)]
struct RoundTrace {
    answers: Vec<(usize, u64)>,
    outcomes: Vec<TxnOutcome>,
}

/// Everything one fuzz round contributes to its scenario cell.
#[derive(Default)]
struct RoundResult {
    trace: RoundTrace,
    sessions_run: usize,
    reads_checked: usize,
    dirty_reads: usize,
    non_repeatable_reads: usize,
    lost_updates: usize,
    torn_reads: usize,
    outcome_mismatches: usize,
    lock_residue: usize,
    committed: u64,
    aborted: u64,
    shed: u64,
    timed_out: u64,
    panics_isolated: u64,
    quarantines: u64,
    rebuilds: u64,
}

/// One live fuzzer slot: the real session, its oracle twin, and whether
/// a fault doomed it (comparisons stop, the outcome ladder still runs).
struct Slot {
    session: Session<u64>,
    model: OracleSession,
    doomed: bool,
}

/// Runs one seeded interleaved schedule against one manager + oracle.
fn fuzz_round(cfg: &TxnGauntletConfig, scenario: &str, round_seed: u64) -> RoundResult {
    let data = permutation(cfg.n, round_seed);
    let key_span = 3 * cfg.n / 2;
    let mut oracle = Oracle::new(&data);
    let crack = CrackConfig::default().with_fault(fault_plan(scenario, cfg.fault_trigger));
    let mgr: Arc<TxnManager<u64>> = TxnManager::new(
        data,
        cfg.shards,
        ParallelStrategy::Stochastic,
        crack,
        serving_for(scenario),
        round_seed,
    );

    let mut out = RoundResult::default();
    let mut slots: HashMap<usize, Slot> = HashMap::new();
    let mut locked: HashMap<u64, usize> = HashMap::new();
    let mut state = round_seed | 1;
    // Panic/quarantine counters excuse oracle-contradicting outcomes
    // only when they actually moved.
    let mut last_faults = 0u64;

    let check_read = |slot: &mut Slot,
                          others_uncommitted: &[HistOp],
                          q: QueryRange,
                          oracle: &Oracle,
                          out: &mut RoundResult| {
        let first = match slot.session.read(q) {
            Ok(ans) => ans,
            Err(_) => {
                slot.doomed = true;
                return;
            }
        };
        out.trace.answers.push(first);
        out.reads_checked += 1;
        let second = match slot.session.read(q) {
            Ok(ans) => ans,
            Err(_) => {
                // The repeat read tripped a fault; the session is doomed
                // from here, so there is nothing left to compare.
                slot.doomed = true;
                return;
            }
        };
        if second != first {
            out.non_repeatable_reads += 1;
        }
        let clean = oracle.view(slot.model.snapshot, &slot.model.writes, q);
        if first != clean {
            // Would overlaying uncommitted foreign writes explain it?
            let mut own_plus: Vec<HistOp> = slot.model.writes.clone();
            own_plus.extend_from_slice(others_uncommitted);
            let dirty = oracle.view(slot.model.snapshot, &own_plus, q);
            if first == dirty {
                out.dirty_reads += 1;
            } else {
                out.torn_reads += 1;
            }
        }
    };

    for _ in 0..cfg.steps {
        let r = xorshift(&mut state);
        let sid = (r >> 4) as usize % cfg.sessions;
        let mut slot = match slots.remove(&sid) {
            Some(s) => s,
            None => {
                out.sessions_run += 1;
                match mgr.begin() {
                    Ok(session) => Slot {
                        session,
                        model: oracle.begin(),
                        doomed: false,
                    },
                    Err(refused) => {
                        out.trace.outcomes.push(refused);
                        match refused {
                            TxnOutcome::Shed => {}
                            TxnOutcome::TimedOut => {}
                            _ => out.outcome_mismatches += 1,
                        }
                        continue;
                    }
                }
            }
        };
        match r % 10 {
            0..=4 => {
                let a = xorshift(&mut state) % cfg.n;
                let w = 1 + xorshift(&mut state) % (cfg.n / 8).max(2);
                if !slot.doomed {
                    let others: Vec<HistOp> = slots
                        .values()
                        .flat_map(|s| s.model.writes.iter().copied())
                        .collect();
                    check_read(
                        &mut slot,
                        &others,
                        QueryRange::new(a, a + w),
                        &oracle,
                        &mut out,
                    );
                }
                slots.insert(sid, slot);
            }
            5 | 6 => {
                let k = xorshift(&mut state) % key_span;
                if !slot.doomed && locked.get(&k).is_none_or(|&o| o == sid) {
                    match slot.session.insert(k) {
                        Ok(()) => {
                            slot.model.writes.push(HistOp::Insert(k));
                            locked.insert(k, sid);
                        }
                        Err(_) => slot.doomed = true,
                    }
                }
                slots.insert(sid, slot);
            }
            7 => {
                let k = xorshift(&mut state) % key_span;
                if !slot.doomed && locked.get(&k).is_none_or(|&o| o == sid) {
                    match slot.session.delete(k) {
                        Ok(hit) => {
                            if hit != oracle.delete_hits(&slot.model, k) {
                                out.torn_reads += 1;
                            }
                            slot.model.writes.push(HistOp::Delete { key: k, hits: hit });
                            locked.insert(k, sid);
                        }
                        Err(_) => slot.doomed = true,
                    }
                }
                slots.insert(sid, slot);
            }
            8 => {
                finish_slot(slot, true, &mut oracle, &mgr, &mut out, &mut last_faults);
                locked.retain(|_, o| *o != sid);
            }
            _ => {
                finish_slot(slot, false, &mut oracle, &mgr, &mut out, &mut last_faults);
                locked.retain(|_, o| *o != sid);
            }
        }
    }
    // Drain stragglers in slot order for determinism.
    let mut rest: Vec<usize> = slots.keys().copied().collect();
    rest.sort_unstable();
    for sid in rest {
        let slot = slots.remove(&sid).unwrap();
        finish_slot(slot, true, &mut oracle, &mgr, &mut out, &mut last_faults);
        locked.retain(|_, o| *o != sid);
    }

    // Bookkeeping gates: the lock table must drain; the outcome ledger
    // must balance against the manager's own counters.
    out.lock_residue += mgr.lock_residue();
    let stats = mgr.resilience_stats();
    out.committed = stats.committed;
    out.aborted = stats.aborted;
    out.shed = stats.shed;
    out.timed_out = stats.timed_out;
    out.panics_isolated = stats.panics_isolated;
    out.quarantines = stats.quarantines;
    out.rebuilds = stats.rebuilds;
    if (stats.committed + stats.aborted + stats.shed + stats.timed_out) as usize
        != out.sessions_run
    {
        out.outcome_mismatches += 1;
    }

    // Lost-update sweep: the drained final state must equal the serial
    // replay of exactly the committed history, and the epoch counters
    // must agree.
    if mgr.current_epoch() != oracle.epoch {
        out.lost_updates += 1;
    }
    let mut last = mgr.begin().expect("post-round session");
    let full = QueryRange::new(0, key_span + 1);
    match last.read(full) {
        Ok(got) => {
            let want = oracle.view(oracle.epoch, &[], full);
            if got != want {
                out.lost_updates += 1;
            }
        }
        Err(_) => out.lost_updates += 1,
    }
    last.commit();
    if mgr.check_integrity().is_err() {
        out.lost_updates += 1;
    }
    out
}

/// Ends one slot (commit or abort) and reconciles with the oracle.
fn finish_slot(
    slot: Slot,
    commit: bool,
    oracle: &mut Oracle,
    mgr: &Arc<TxnManager<u64>>,
    out: &mut RoundResult,
    last_faults: &mut u64,
) {
    let Slot {
        session,
        model,
        doomed,
    } = slot;
    if !commit {
        let outcome = session.abort();
        out.trace.outcomes.push(outcome);
        if outcome != (TxnOutcome::Aborted { retryable: false }) {
            out.outcome_mismatches += 1;
        }
        return;
    }
    let would = oracle.would_commit(&model);
    let outcome = session.commit();
    out.trace.outcomes.push(outcome);
    let stats = mgr.resilience_stats();
    let faults_now = stats.panics_isolated + stats.quarantines;
    let fault_moved = faults_now > *last_faults;
    *last_faults = faults_now;
    match outcome {
        TxnOutcome::Committed { epoch } => {
            if doomed || !would {
                out.outcome_mismatches += 1;
            } else if !model.writes.is_empty() {
                let expect = oracle.apply(model);
                if epoch != expect {
                    out.lost_updates += 1;
                }
            } else if epoch != model.snapshot {
                out.outcome_mismatches += 1;
            }
        }
        TxnOutcome::Aborted { retryable } => {
            // Legal when doomed, on a genuine validation conflict, or
            // when a fault fired during this very commit.
            let excused = doomed || !would || fault_moved;
            if !excused || !retryable {
                out.outcome_mismatches += 1;
            }
        }
        TxnOutcome::TimedOut => {
            if !doomed {
                out.outcome_mismatches += 1;
            }
        }
        TxnOutcome::Shed => out.outcome_mismatches += 1,
    }
}

/// One closed-loop session (begin → read → write → commit), the unit
/// the arrival sweep and its calibration time.
fn one_arrival_session(mgr: &Arc<TxnManager<u64>>, i: u64, n: u64) -> TxnOutcome {
    match mgr.begin() {
        Ok(mut s) => {
            let a = (i * 977) % n;
            let _ = s.read(QueryRange::new(a, a + n / 64 + 1));
            let _ = s.insert(n + i);
            let _ = s.delete((i * 613) % n);
            s.commit()
        }
        Err(refused) => refused,
    }
}

/// The open-loop arrival sweep: sessions arrive at `offered_sps` on a
/// virtual clock; a session whose queueing wait already exceeds the
/// deadline is counted as timed out without service (the server is
/// sequential, as on the 1-core measurement hosts).
fn arrival_run(
    cfg: &TxnGauntletConfig,
    load_factor: f64,
    offered_sps: f64,
) -> ArrivalCell {
    let data = permutation(cfg.n, cfg.seed ^ 0xA11);
    let mgr: Arc<TxnManager<u64>> = TxnManager::new(
        data,
        cfg.shards,
        ParallelStrategy::Stochastic,
        CrackConfig::default(),
        ServingConfig::default(),
        cfg.seed,
    );
    let deadline = Duration::from_millis(cfg.deadline_ms).as_secs_f64();
    let mut server_free = 0.0f64;
    let mut committed = 0usize;
    let mut timed_out = 0usize;
    let mut sojourns_ms: Vec<f64> = Vec::new();
    for i in 0..cfg.arrival_sessions {
        let arrival = i as f64 / offered_sps;
        let start = server_free.max(arrival);
        if start - arrival > deadline {
            timed_out += 1;
            continue;
        }
        let t0 = Instant::now();
        let outcome = one_arrival_session(&mgr, i as u64, cfg.n);
        let service = t0.elapsed().as_secs_f64();
        server_free = start + service;
        match outcome {
            TxnOutcome::Committed { .. } => {
                committed += 1;
                sojourns_ms.push((server_free - arrival).max(0.0) * 1_000.0);
            }
            _ => timed_out += 1,
        }
    }
    let (p50, p99) = if sojourns_ms.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            percentile(&mut sojourns_ms, 50.0),
            percentile(&mut sojourns_ms, 99.0),
        )
    };
    ArrivalCell {
        load_factor,
        offered_sps,
        attempted: cfg.arrival_sessions,
        committed,
        timed_out,
        p50_ms: p50,
        p99_ms: p99,
    }
}

impl TxnReport {
    /// Runs the chaos matrix and the arrival sweep.
    pub fn measure(config: &TxnGauntletConfig) -> TxnReport {
        assert!(config.rounds >= 1 && config.steps >= 1, "need a schedule");
        assert!(config.sessions >= 2, "interleaving needs >= 2 sessions");
        assert!(config.shards >= 1 && config.n >= 64, "need a column");
        let mut cells = Vec::new();
        for scenario in &config.scenarios {
            let mut cell = ChaosCell {
                scenario: scenario.to_string(),
                ..ChaosCell::default()
            };
            for round in 0..config.rounds {
                let round_seed = config
                    .seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((round as u64) << 8)
                    ^ (scenario.len() as u64).wrapping_mul(0xABCD);
                let result = fuzz_round(config, scenario, round_seed);
                if round == 0 {
                    // Fixed-seed replay: the whole round, bit-for-bit.
                    let replay = fuzz_round(config, scenario, round_seed);
                    if replay.trace != result.trace {
                        cell.replay_divergences += 1;
                    }
                }
                cell.rounds += 1;
                cell.sessions_run += result.sessions_run;
                cell.reads_checked += result.reads_checked;
                cell.dirty_reads += result.dirty_reads;
                cell.non_repeatable_reads += result.non_repeatable_reads;
                cell.lost_updates += result.lost_updates;
                cell.torn_reads += result.torn_reads;
                cell.outcome_mismatches += result.outcome_mismatches;
                cell.lock_residue += result.lock_residue;
                cell.committed += result.committed;
                cell.aborted += result.aborted;
                cell.shed += result.shed;
                cell.timed_out += result.timed_out;
                cell.panics_isolated += result.panics_isolated;
                cell.quarantines += result.quarantines;
                cell.rebuilds += result.rebuilds;
            }
            cells.push(cell);
        }

        // Calibrate the closed-loop base rate, then sweep offered load.
        let calib = {
            let data = permutation(config.n, config.seed ^ 0xCA11B);
            let mgr: Arc<TxnManager<u64>> = TxnManager::new(
                data,
                config.shards,
                ParallelStrategy::Stochastic,
                CrackConfig::default(),
                ServingConfig::default(),
                config.seed,
            );
            let warm = (config.arrival_sessions / 4).max(20);
            let t0 = Instant::now();
            for i in 0..warm {
                let _ = one_arrival_session(&mgr, i as u64, config.n);
            }
            warm as f64 / t0.elapsed().as_secs_f64().max(1e-9)
        };
        let arrivals = config
            .load_factors
            .iter()
            .map(|&f| arrival_run(config, f, (calib * f).max(1.0)))
            .collect();

        TxnReport {
            config: config.clone(),
            host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            base_sps: calib,
            cells,
            arrivals,
        }
    }

    /// The cell for `scenario`, if it ran.
    pub fn cell(&self, scenario: &str) -> Option<&ChaosCell> {
        self.cells.iter().find(|c| c.scenario == scenario)
    }

    /// Renders the human-readable summary tables.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<14} {:>6} {:>8} {:>6} {:>7} {:>5} {:>5} {:>7} {:>7} {:>6} {:>6} {:>6}",
            "scenario",
            "rounds",
            "reads",
            "dirty",
            "nonrep",
            "lost",
            "torn",
            "commit",
            "abort",
            "shed",
            "t/out",
            "panic"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:<14} {:>6} {:>8} {:>6} {:>7} {:>5} {:>5} {:>7} {:>7} {:>6} {:>6} {:>6}",
                c.scenario,
                c.rounds,
                c.reads_checked,
                c.dirty_reads,
                c.non_repeatable_reads,
                c.lost_updates,
                c.torn_reads,
                c.committed,
                c.aborted,
                c.shed,
                c.timed_out,
                c.panics_isolated,
            );
        }
        let _ = writeln!(
            s,
            "\n{:<8} {:>12} {:>9} {:>9} {:>8} {:>10} {:>10}",
            "load", "offered/s", "attempted", "committed", "t/out", "p50 ms", "p99 ms"
        );
        for a in &self.arrivals {
            let _ = writeln!(
                s,
                "{:<8.2} {:>12.1} {:>9} {:>9} {:>8} {:>10.3} {:>10.3}",
                a.load_factor,
                a.offered_sps,
                a.attempted,
                a.committed,
                a.timed_out,
                a.p50_ms,
                a.p99_ms,
            );
        }
        s
    }

    /// Renders the `scrack-trajectory/v1` document (`BENCH_9.json`).
    pub fn to_json(&self) -> String {
        let mut doc = TrajectoryDoc::new("txn")
            .param("n", Json::UInt(self.config.n))
            .param("rounds", Json::UInt(self.config.rounds as u64))
            .param("steps", Json::UInt(self.config.steps as u64))
            .param("sessions", Json::UInt(self.config.sessions as u64))
            .param("shards", Json::UInt(self.config.shards as u64))
            .param("fault_trigger", Json::UInt(self.config.fault_trigger as u64))
            .param(
                "arrival_sessions",
                Json::UInt(self.config.arrival_sessions as u64),
            )
            .param("deadline_ms", Json::UInt(self.config.deadline_ms))
            .param("seed", Json::UInt(self.config.seed))
            .param("host_cpus", Json::UInt(self.host_cpus as u64))
            .param("base_sps", Json::fixed(self.base_sps, 1))
            .axis(
                "scenarios",
                self.config.scenarios.iter().map(|s| Json::str(*s)).collect(),
            )
            .axis(
                "load_factors",
                self.config
                    .load_factors
                    .iter()
                    .map(|f| Json::fixed(*f, 2))
                    .collect(),
            );
        for c in &self.cells {
            doc.cell(obj(vec![
                ("kind", Json::str("chaos")),
                ("scenario", Json::str(c.scenario.clone())),
                ("rounds", Json::UInt(c.rounds as u64)),
                ("sessions", Json::UInt(c.sessions_run as u64)),
                ("reads_checked", Json::UInt(c.reads_checked as u64)),
                ("dirty_reads", Json::UInt(c.dirty_reads as u64)),
                (
                    "non_repeatable_reads",
                    Json::UInt(c.non_repeatable_reads as u64),
                ),
                ("lost_updates", Json::UInt(c.lost_updates as u64)),
                ("torn_reads", Json::UInt(c.torn_reads as u64)),
                (
                    "outcome_mismatches",
                    Json::UInt(c.outcome_mismatches as u64),
                ),
                ("lock_residue", Json::UInt(c.lock_residue as u64)),
                (
                    "replay_divergences",
                    Json::UInt(c.replay_divergences as u64),
                ),
                ("committed", Json::UInt(c.committed)),
                ("aborted", Json::UInt(c.aborted)),
                ("shed", Json::UInt(c.shed)),
                ("timed_out", Json::UInt(c.timed_out)),
                ("panics_isolated", Json::UInt(c.panics_isolated)),
                ("quarantines", Json::UInt(c.quarantines)),
                ("rebuilds", Json::UInt(c.rebuilds)),
            ]));
        }
        for a in &self.arrivals {
            doc.cell(obj(vec![
                ("kind", Json::str("arrival")),
                ("load_factor", Json::fixed(a.load_factor, 2)),
                ("offered_sps", Json::fixed(a.offered_sps, 1)),
                ("attempted", Json::UInt(a.attempted as u64)),
                ("committed", Json::UInt(a.committed as u64)),
                ("timed_out", Json::UInt(a.timed_out as u64)),
                ("p50_ms", Json::fixed(a.p50_ms, 3)),
                ("p99_ms", Json::fixed(a.p99_ms, 3)),
            ]));
        }
        doc.to_json()
    }
}

/// The `--check` gate: no anomaly, no leak, no unexplained outcome, and
/// each fault scenario must actually bite (otherwise the matrix proves
/// nothing). Timing numbers are reported but never gated — only
/// deterministic counters, so the gate cannot flake on wall time.
pub fn verify_txn(report: &TxnReport) -> Vec<String> {
    let mut failures = Vec::new();
    for scenario in &report.config.scenarios {
        let Some(c) = report.cell(scenario) else {
            failures.push(format!("scenario {scenario}: cell missing"));
            continue;
        };
        for (what, count) in [
            ("dirty reads", c.dirty_reads),
            ("non-repeatable reads", c.non_repeatable_reads),
            ("lost updates", c.lost_updates),
            ("torn reads", c.torn_reads),
            ("outcome mismatches", c.outcome_mismatches),
            ("leaked lock entries", c.lock_residue),
            ("replay divergences", c.replay_divergences),
        ] {
            if count > 0 {
                failures.push(format!("scenario {scenario}: {count} {what}"));
            }
        }
        if c.reads_checked == 0 {
            failures.push(format!("scenario {scenario}: no reads checked"));
        }
        if c.committed == 0 {
            failures.push(format!("scenario {scenario}: nothing ever committed"));
        }
        let bites = match *scenario {
            "panic-kernel" | "panic-commit" => c.panics_isolated > 0,
            "poison" => c.quarantines > 0,
            "overload" => c.shed > 0,
            _ => true,
        };
        if !bites {
            failures.push(format!(
                "scenario {scenario}: fault never fired — the cell proves nothing"
            ));
        }
    }
    for a in &report.arrivals {
        let finished = a.committed + a.timed_out;
        if finished != a.attempted {
            failures.push(format!(
                "arrival x{:.2}: {} sessions attempted but only {} accounted",
                a.load_factor, a.attempted, finished
            ));
        }
        if a.committed == 0 {
            failures.push(format!(
                "arrival x{:.2}: nothing committed",
                a.load_factor
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TxnGauntletConfig {
        TxnGauntletConfig {
            n: 1_500,
            rounds: 2,
            steps: 40,
            arrival_sessions: 40,
            load_factors: vec![0.8, 1.5],
            ..TxnGauntletConfig::default()
        }
    }

    #[test]
    fn tiny_gauntlet_is_clean_and_every_fault_bites() {
        let report = TxnReport::measure(&tiny());
        let failures = verify_txn(&report);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn json_document_is_balanced_and_covers_both_sweeps() {
        let mut cfg = tiny();
        cfg.scenarios = vec!["none", "panic-kernel"];
        let report = TxnReport::measure(&cfg);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"scrack-trajectory/v1\""));
        assert!(json.contains("\"report\": \"txn\""));
        assert!(json.contains("\"kind\": \"chaos\""));
        assert!(json.contains("\"kind\": \"arrival\""));
        assert!(json.contains("\"dirty_reads\": 0"));
        assert!(report.render_table().contains("scenario"));
    }
}
