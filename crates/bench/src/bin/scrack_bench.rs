//! The kernel perf-trajectory reporter.
//!
//! ```text
//! scrack_bench [--sizes N,N,...] [--samples K] [--quick]
//!              [--json PATH] [--check]
//! ```
//!
//! Measures the reorganization kernels (branchy vs branchless) and prints
//! a summary table; `--json PATH` also writes the machine-readable report
//! committed as `BENCH_<pr>.json`. `--check` exits nonzero if any
//! kernel/variant/size cell is missing from the report — the CI
//! bench-smoke gate (coverage only, never a perf threshold: CI boxes are
//! too noisy to gate on speedups).

use scrack_bench::kernels_report::{KernelReport, DEFAULT_SIZES};
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<usize> = DEFAULT_SIZES.to_vec();
    let mut samples = 9usize;
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                i += 1;
                sizes = value_of(&args, i, "--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes integers"))
                    .collect();
            }
            "--samples" => {
                i += 1;
                samples = value_of(&args, i, "--samples")
                    .parse()
                    .expect("--samples takes an integer");
            }
            "--quick" => {
                // Smoke scale: small pieces, few samples — seconds, not
                // minutes, and still one cell per kernel/variant/size.
                sizes = vec![4_096, 65_536];
                samples = 3;
            }
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json").to_string());
            }
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_bench [--sizes N,N,...] [--samples K] \
                     [--quick] [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    assert!(!sizes.is_empty(), "need at least one size");
    eprintln!(
        "measuring {} sizes x {} kernels x 2 variants, {samples} samples each ...",
        sizes.len(),
        scrack_bench::kernels_report::KERNELS.len()
    );
    let report = KernelReport::measure(&sizes, samples);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(lock, "# Kernel bench — median ns/element\n");
    let _ = writeln!(lock, "{}", report.render_table());

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write JSON report");
        let _ = writeln!(lock, "wrote {path}");
    }

    if check {
        let missing = report.missing_cells();
        if !missing.is_empty() {
            eprintln!("coverage check FAILED; missing cells: {missing:?}");
            std::process::exit(1);
        }
        let _ = writeln!(
            lock,
            "coverage check passed: {} cells, all kernel/variant/size \
             combinations present",
            report.cells.len()
        );
    }
}
