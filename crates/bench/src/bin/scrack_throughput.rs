//! The concurrency throughput reporter.
//!
//! ```text
//! scrack_throughput [--threads N,N,...] [--n N] [--queries Q]
//!                   [--batch B] [--samples K] [--index avl|flat|radix]
//!                   [--smoke] [--json PATH] [--check]
//! ```
//!
//! Sweeps `threads × strategy × workload` over the `scrack_parallel`
//! wrappers and prints a summary table; `--json PATH` also writes the
//! machine-readable report committed as `BENCH_6.json`. `--check` exits
//! nonzero if any threads/strategy/workload cell is missing **or** the
//! chunked strategy's threaded replay diverges from its serial twin on
//! a 1/2/4-thread sweep — the CI throughput-smoke gate (coverage and
//! determinism only, never a perf threshold: CI boxes are too noisy to
//! gate on queries/sec).

use scrack_bench::throughput_report::{
    verify_chunked_identity, ThroughputConfig, ThroughputReport,
};
use scrack_bench::trajectory::CommonCli;
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CommonCli::extract(&mut args);
    let mut cfg = ThroughputConfig::default();
    if cli.smoke {
        // Smoke scale: small column, short stream, two thread counts,
        // one sample — seconds, not minutes, and still one cell per
        // threads/strategy/workload combination.
        cfg.n = 50_000;
        cfg.queries = 500;
        cfg.batch = 64;
        cfg.samples = 1;
        cfg.threads = vec![1, 2];
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                cfg.threads = value_of(&args, i, "--threads")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes integers"))
                    .collect();
            }
            "--n" => {
                i += 1;
                cfg.n = value_of(&args, i, "--n").parse().expect("--n takes an integer");
            }
            "--queries" => {
                i += 1;
                cfg.queries = value_of(&args, i, "--queries")
                    .parse()
                    .expect("--queries takes an integer");
            }
            "--batch" => {
                i += 1;
                cfg.batch = value_of(&args, i, "--batch")
                    .parse()
                    .expect("--batch takes an integer");
            }
            "--samples" => {
                i += 1;
                cfg.samples = value_of(&args, i, "--samples")
                    .parse()
                    .expect("--samples takes an integer");
            }
            "--index" => {
                i += 1;
                cfg.index = scrack_core::IndexPolicy::parse(value_of(&args, i, "--index"))
                    .unwrap_or_else(|| {
                        eprintln!("--index takes avl|flat|radix, got {}", args[i]);
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_throughput [--threads N,N,...] [--n N] \
                     [--queries Q] [--batch B] [--samples K] \
                     [--index avl|flat|radix] [--smoke] [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "measuring {} workloads x {} strategies x {:?} threads, \
         N={}, Q={}, batch={}, {} sample(s) each ...",
        scrack_bench::throughput_report::WORKLOADS.len(),
        scrack_bench::throughput_report::STRATEGIES.len(),
        cfg.threads,
        cfg.n,
        cfg.queries,
        cfg.batch,
        cfg.samples,
    );
    let report = ThroughputReport::measure(&cfg);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Throughput bench — median queries/sec ({} host CPUs)\n",
        report.host_cpus
    );
    let _ = writeln!(lock, "{}", report.render_table());

    cli.write_json(&report.to_json(), &mut lock);

    if cli.check {
        let mut failures = report.missing_cells();
        failures.extend(verify_chunked_identity(&cfg));
        scrack_bench::trajectory::finish_check(
            "throughput",
            &failures,
            &format!(
                "coverage check passed: {} cells, all threads/strategy/workload \
                 combinations present; chunked threaded-vs-serial replay \
                 bit-identical over a 1/2/4-thread sweep",
                report.cells.len()
            ),
        );
    }
}
