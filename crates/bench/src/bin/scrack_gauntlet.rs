//! The self-driving gauntlet reporter.
//!
//! ```text
//! scrack_gauntlet [--n N] [--queries Q] [--factor F] [--epoch E]
//!                 [--seed S] [--scenario NAME] [--smoke] [--json PATH]
//!                 [--check]
//! ```
//!
//! Races the self-driving chooser against every static configuration of
//! its action space on every workload scenario — steady generators and
//! adversarial mid-stream phase changes — and prints a summary table;
//! `--json PATH` also writes the machine-readable `scrack-trajectory/v1`
//! document committed as `BENCH_8.json`. `--check` exits nonzero if any
//! scenario is missing, the chooser exceeds the factor of the best
//! static config, any answer diverges from the oracle, or the
//! fixed-seed replay is not bit-identical — the CI gauntlet-smoke gate
//! (the costs are deterministic tuple counts, so this gate never flakes
//! on wall time). `--scenario` (repeatable) restricts the sweep.

use scrack_bench::gauntlet_report::{verify_gauntlet, GauntletConfig, GauntletReport, SCENARIOS};
use scrack_bench::trajectory::CommonCli;
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CommonCli::extract(&mut args);
    let mut cfg = if cli.smoke {
        GauntletConfig::smoke()
    } else {
        GauntletConfig::default()
    };
    let mut scenarios: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                cfg.n = value_of(&args, i, "--n").parse().expect("--n takes an integer");
            }
            "--queries" => {
                i += 1;
                cfg.queries = value_of(&args, i, "--queries")
                    .parse()
                    .expect("--queries takes an integer");
            }
            "--factor" => {
                i += 1;
                cfg.factor = value_of(&args, i, "--factor")
                    .parse()
                    .expect("--factor takes a number");
            }
            "--epoch" => {
                i += 1;
                cfg.epoch_len = value_of(&args, i, "--epoch")
                    .parse()
                    .expect("--epoch takes an integer");
            }
            "--seed" => {
                i += 1;
                cfg.seed = value_of(&args, i, "--seed").parse().expect("--seed takes an integer");
            }
            "--scenario" => {
                i += 1;
                let name = value_of(&args, i, "--scenario");
                let known = SCENARIOS.iter().find(|s| **s == name).unwrap_or_else(|| {
                    eprintln!("unknown scenario {name} (one of {SCENARIOS:?})");
                    std::process::exit(2);
                });
                scenarios.push(known);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_gauntlet [--n N] [--queries Q] [--factor F] \
                     [--epoch E] [--seed S] [--scenario NAME] [--smoke] \
                     [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !scenarios.is_empty() {
        cfg.scenarios = scenarios;
    }

    eprintln!(
        "racing the self-driving chooser on {} scenario(s), N={}, Q={}, \
         epoch={}, gate {}x ...",
        cfg.scenarios.len(),
        cfg.n,
        cfg.queries,
        cfg.epoch_len,
        cfg.factor,
    );
    let report = GauntletReport::measure(&cfg);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Self-driving gauntlet — chooser vs best static config \
         (cost = touched + materialized tuples)\n"
    );
    let _ = writeln!(lock, "{}", report.render_table());
    cli.write_json(&report.to_json(), &mut lock);

    if cli.check {
        let failures = verify_gauntlet(&report);
        scrack_bench::trajectory::finish_check(
            "gauntlet",
            &failures,
            &format!(
                "gauntlet check passed: {} scenarios, chooser within {}x of the \
                 best static config on every cell, zero oracle divergences, \
                 fixed-seed replays bit-identical",
                report.cells.len(),
                cfg.factor
            ),
        );
    }
}
