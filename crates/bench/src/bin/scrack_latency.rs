//! The end-to-end query-latency reporter.
//!
//! ```text
//! scrack_latency [--n N] [--queries Q] [--samples K]
//!                [--index avl|flat|radix] [--smoke] [--json PATH] [--check]
//! ```
//!
//! Sweeps `engine × workload × index policy` over single-threaded query
//! sequences (the paper's central per-query/cumulative-time figure) plus
//! a piece-lookup microbench at fixed crack counts, and prints a summary
//! table; `--json PATH` also writes the machine-readable report
//! committed as `BENCH_4.json`. `--index` restricts the sweep to one
//! policy. `--check` exits nonzero if any engine/workload/policy or
//! lookup cell is missing — the CI latency-smoke gate (coverage only,
//! never a perf threshold: CI boxes are too noisy to gate on latency).

use scrack_bench::latency_report::{LatencyConfig, LatencyReport};
use scrack_core::IndexPolicy;
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LatencyConfig::default();
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                cfg.n = value_of(&args, i, "--n").parse().expect("--n takes an integer");
            }
            "--queries" => {
                i += 1;
                cfg.queries = value_of(&args, i, "--queries")
                    .parse()
                    .expect("--queries takes an integer");
            }
            "--samples" => {
                i += 1;
                cfg.samples = value_of(&args, i, "--samples")
                    .parse()
                    .expect("--samples takes an integer");
            }
            "--index" => {
                i += 1;
                let policy = IndexPolicy::parse(value_of(&args, i, "--index")).unwrap_or_else(|| {
                    eprintln!("--index takes avl|flat|radix, got {}", args[i]);
                    std::process::exit(2);
                });
                cfg.policies = vec![policy];
            }
            "--smoke" => {
                // Smoke scale: small column, short sequence, one sample —
                // seconds, not minutes, and still one cell for every
                // engine/workload/policy combination.
                cfg.n = 50_000;
                cfg.queries = 1_000;
                cfg.samples = 1;
            }
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json").to_string());
            }
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_latency [--n N] [--queries Q] [--samples K] \
                     [--index avl|flat|radix] [--smoke] [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "measuring {} engines x {} workloads x {} index policies, \
         N={}, Q={}, {} sample(s) each ...",
        scrack_bench::latency_report::ENGINES.len(),
        scrack_bench::latency_report::WORKLOADS.len(),
        cfg.policies.len(),
        cfg.n,
        cfg.queries,
        cfg.samples,
    );
    let report = LatencyReport::measure(&cfg);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Query-latency bench — per-query and cumulative time ({} host CPUs)\n",
        report.host_cpus
    );
    let _ = writeln!(lock, "{}", report.render_table());

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write JSON report");
        let _ = writeln!(lock, "wrote {path}");
    }

    if check {
        let missing = report.missing_cells();
        if !missing.is_empty() {
            eprintln!("coverage check FAILED; missing cells: {missing:?}");
            std::process::exit(1);
        }
        let _ = writeln!(
            lock,
            "coverage check passed: {} latency cells + {} lookup cells, all \
             engine/workload/policy combinations present",
            report.cells.len(),
            report.lookup.len()
        );
    }
}
