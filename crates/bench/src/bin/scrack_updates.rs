//! The mixed read/write (updates) reporter.
//!
//! ```text
//! scrack_updates [--n N] [--queries Q] [--rate R] [--samples K]
//!                [--threads N,N,...] [--batch B] [--index avl|flat|radix]
//!                [--smoke] [--json PATH] [--check]
//! ```
//!
//! Sweeps `scenario × engine × update-policy` over `Updatable` engines
//! plus a `BatchScheduler::execute_ops` thread sweep, prints a summary
//! table, and with `--json PATH` writes the machine-readable report
//! committed as `BENCH_5.json`. `--check` exits nonzero if any cell is
//! missing — the CI updates-smoke gate (coverage only, never a perf
//! threshold: CI boxes are too noisy to gate on ops/sec). Cross-policy
//! answer checksums and threaded-vs-serial replay are asserted during
//! measurement itself.

use scrack_bench::updates_report::{UpdatesConfig, UpdatesReport};
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = UpdatesConfig::default();
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                cfg.n = value_of(&args, i, "--n").parse().expect("--n takes an integer");
            }
            "--queries" => {
                i += 1;
                cfg.queries = value_of(&args, i, "--queries")
                    .parse()
                    .expect("--queries takes an integer");
            }
            "--rate" => {
                i += 1;
                cfg.update_rate = value_of(&args, i, "--rate")
                    .parse()
                    .expect("--rate takes a number");
            }
            "--samples" => {
                i += 1;
                cfg.samples = value_of(&args, i, "--samples")
                    .parse()
                    .expect("--samples takes an integer");
            }
            "--threads" => {
                i += 1;
                cfg.threads = value_of(&args, i, "--threads")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes integers"))
                    .collect();
            }
            "--batch" => {
                i += 1;
                cfg.batch = value_of(&args, i, "--batch")
                    .parse()
                    .expect("--batch takes an integer");
            }
            "--index" => {
                i += 1;
                cfg.index = scrack_core::IndexPolicy::parse(value_of(&args, i, "--index"))
                    .unwrap_or_else(|| {
                        eprintln!("--index takes avl|flat|radix, got {}", args[i]);
                        std::process::exit(2);
                    });
            }
            "--smoke" => {
                // Smoke scale: small column, short stream, two thread
                // counts — seconds, not minutes, still one cell per
                // scenario/engine/policy combination.
                cfg.n = 50_000;
                cfg.queries = 300;
                cfg.update_rate = 10.0;
                cfg.samples = 1;
                cfg.threads = vec![1, 2];
                cfg.batch = 64;
            }
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json").to_string());
            }
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_updates [--n N] [--queries Q] [--rate R] \
                     [--samples K] [--threads N,N,...] [--batch B] \
                     [--index avl|flat|radix] [--smoke] [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "measuring {} scenarios x {} engines x 2 update policies + \
         scheduler {:?} threads, N={}, Q={}, rate={}, {} sample(s) each ...",
        scrack_bench::updates_report::SCENARIOS.len(),
        scrack_bench::updates_report::ENGINES.len(),
        cfg.threads,
        cfg.n,
        cfg.queries,
        cfg.update_rate,
        cfg.samples,
    );
    let report = UpdatesReport::measure(&cfg);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Updates bench — mixed read/write serving ({} host CPUs)\n",
        report.host_cpus
    );
    let _ = writeln!(lock, "{}", report.render_table());

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write JSON report");
        let _ = writeln!(lock, "wrote {path}");
    }

    if check {
        let missing = report.missing_cells();
        if !missing.is_empty() {
            eprintln!("coverage check FAILED; missing cells: {missing:?}");
            std::process::exit(1);
        }
        let _ = writeln!(
            lock,
            "coverage check passed: {} cells + {} scheduler cells, all \
             scenario/engine/policy combinations present",
            report.cells.len(),
            report.scheduler.len()
        );
    }
}
