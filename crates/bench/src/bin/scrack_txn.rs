//! The transactional chaos gauntlet reporter.
//!
//! ```text
//! scrack_txn [--n N] [--rounds R] [--steps S] [--sessions K]
//!            [--shards H] [--trigger T] [--seed S] [--scenario NAME]
//!            [--smoke] [--json PATH] [--check]
//! ```
//!
//! Fuzzes interleaved multi-session schedules against the serial
//! per-epoch oracle under every fault scenario, classifying divergences
//! into the four snapshot-isolation anomalies (dirty read,
//! non-repeatable read, lost update, torn read), then sweeps an
//! open-loop session arrival process. `--json PATH` writes the
//! machine-readable `scrack-trajectory/v1` document committed as
//! `BENCH_9.json`. `--check` exits nonzero if any anomaly survives, any
//! lock leaks, any session escapes the outcome ladder, any fixed-seed
//! replay diverges, or any armed fault fails to fire — the CI
//! txn-smoke gate (counters only, so it never flakes on wall time).

use scrack_bench::trajectory::CommonCli;
use scrack_bench::txn_report::{verify_txn, TxnGauntletConfig, TxnReport, SCENARIOS};
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CommonCli::extract(&mut args);
    let mut cfg = if cli.smoke {
        TxnGauntletConfig::smoke()
    } else {
        TxnGauntletConfig::default()
    };
    let mut scenarios: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                cfg.n = value_of(&args, i, "--n").parse().expect("--n takes an integer");
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = value_of(&args, i, "--rounds")
                    .parse()
                    .expect("--rounds takes an integer");
            }
            "--steps" => {
                i += 1;
                cfg.steps = value_of(&args, i, "--steps")
                    .parse()
                    .expect("--steps takes an integer");
            }
            "--sessions" => {
                i += 1;
                cfg.sessions = value_of(&args, i, "--sessions")
                    .parse()
                    .expect("--sessions takes an integer");
            }
            "--shards" => {
                i += 1;
                cfg.shards = value_of(&args, i, "--shards")
                    .parse()
                    .expect("--shards takes an integer");
            }
            "--trigger" => {
                i += 1;
                cfg.fault_trigger = value_of(&args, i, "--trigger")
                    .parse()
                    .expect("--trigger takes an integer");
            }
            "--seed" => {
                i += 1;
                cfg.seed = value_of(&args, i, "--seed").parse().expect("--seed takes an integer");
            }
            "--scenario" => {
                i += 1;
                let name = value_of(&args, i, "--scenario");
                let known = SCENARIOS.iter().find(|s| **s == name).unwrap_or_else(|| {
                    eprintln!("unknown scenario {name} (one of {SCENARIOS:?})");
                    std::process::exit(2);
                });
                scenarios.push(known);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_txn [--n N] [--rounds R] [--steps S] \
                     [--sessions K] [--shards H] [--trigger T] [--seed S] \
                     [--scenario NAME] [--smoke] [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !scenarios.is_empty() {
        cfg.scenarios = scenarios;
    }

    eprintln!(
        "fuzzing {} scenario(s) x {} rounds x {} steps over {} session slots, \
         N={}, then sweeping {} arrival rates ...",
        cfg.scenarios.len(),
        cfg.rounds,
        cfg.steps,
        cfg.sessions,
        cfg.n,
        cfg.load_factors.len(),
    );
    let report = TxnReport::measure(&cfg);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Transactional chaos gauntlet — interleaving fuzzer x fault matrix \
         vs the serial per-epoch oracle\n"
    );
    let _ = writeln!(lock, "{}", report.render_table());
    cli.write_json(&report.to_json(), &mut lock);

    if cli.check {
        let failures = verify_txn(&report);
        scrack_bench::trajectory::finish_check(
            "txn",
            &failures,
            &format!(
                "txn check passed: {} scenarios clean — zero dirty/non-repeatable/\
                 lost/torn anomalies, zero leaked locks, every session in exactly \
                 one outcome, fixed-seed replays bit-identical, every armed fault \
                 fired",
                report.cells.len()
            ),
        );
    }
}
