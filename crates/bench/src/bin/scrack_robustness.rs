//! The fault-injection gauntlet reporter.
//!
//! ```text
//! scrack_robustness [--n N] [--queries Q] [--batch B] [--shards S]
//!                   [--capacity C] [--loads F,F,...] [--samples K]
//!                   [--index avl|flat|radix] [--min-recovery R]
//!                   [--smoke] [--json PATH] [--check]
//! ```
//!
//! Sweeps `fault × offered load` over the resilient serving path
//! (`BatchScheduler::execute_resilient`) and prints a summary table;
//! `--json PATH` also writes the machine-readable report committed as
//! `BENCH_7.json`. `--check` exits nonzero if the gauntlet fails: a
//! missing cell, broken accounting, an oracle-incorrect answer, a
//! planned fault that left no signature, or post-fault throughput below
//! `--min-recovery` (default 0.9) of the unfaulted baseline at the same
//! load — the CI robustness-smoke gate. Recovery ratios are formed from
//! *paired* samples (each sample runs the faulted and unfaulted streams
//! back-to-back, best pair kept), which cancels the slow host drift that
//! would otherwise make a throughput-ratio gate flaky on a shared CI
//! box.

use scrack_bench::robustness_report::{verify_gauntlet, RobustnessConfig, RobustnessReport};
use scrack_bench::trajectory::CommonCli;
use scrack_bench::value_of;
use std::io::Write as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cli = CommonCli::extract(&mut args);
    let mut cfg = RobustnessConfig::default();
    if cli.smoke {
        // Smoke scale: small column, short stream — seconds, not
        // minutes, and still one cell per fault/load combination with
        // every planned fault actually firing. The stream stays long
        // enough that the recovery window (final third of the batches)
        // has a stable median.
        cfg.n = 30_000;
        cfg.queries = 1_536;
        cfg.batch = 64;
        cfg.shards = 4;
        cfg.queue_capacity = 16;
        cfg.fault_trigger = 8;
        // Smoke batches route ~16 queries per shard; a clamp of 4 sheds
        // through the retry budget the way the default clamp of 8 does
        // against full-scale batches.
        cfg.overload_capacity = 4;
    }
    let mut min_recovery = 0.9f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                cfg.n = value_of(&args, i, "--n").parse().expect("--n takes an integer");
            }
            "--queries" => {
                i += 1;
                cfg.queries = value_of(&args, i, "--queries")
                    .parse()
                    .expect("--queries takes an integer");
            }
            "--batch" => {
                i += 1;
                cfg.batch = value_of(&args, i, "--batch")
                    .parse()
                    .expect("--batch takes an integer");
            }
            "--shards" => {
                i += 1;
                cfg.shards = value_of(&args, i, "--shards")
                    .parse()
                    .expect("--shards takes an integer");
            }
            "--capacity" => {
                i += 1;
                cfg.queue_capacity = value_of(&args, i, "--capacity")
                    .parse()
                    .expect("--capacity takes an integer");
            }
            "--loads" => {
                i += 1;
                cfg.load_factors = value_of(&args, i, "--loads")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--loads takes numbers"))
                    .collect();
            }
            "--samples" => {
                i += 1;
                cfg.samples = value_of(&args, i, "--samples")
                    .parse()
                    .expect("--samples takes an integer");
            }
            "--min-recovery" => {
                i += 1;
                min_recovery = value_of(&args, i, "--min-recovery")
                    .parse()
                    .expect("--min-recovery takes a number");
            }
            "--index" => {
                i += 1;
                cfg.index = scrack_core::IndexPolicy::parse(value_of(&args, i, "--index"))
                    .unwrap_or_else(|| {
                        eprintln!("--index takes avl|flat|radix, got {}", args[i]);
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: scrack_robustness [--n N] [--queries Q] [--batch B] \
                     [--shards S] [--capacity C] [--loads F,F,...] \
                     [--samples K] [--index avl|flat|radix] [--min-recovery R] \
                     [--smoke] [--json PATH] [--check]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "running the gauntlet: {} faults x {:?} load factors, \
         N={}, Q={}, batch={}, {} shards, capacity {} ...",
        scrack_bench::robustness_report::FAULTS.len(),
        cfg.load_factors,
        cfg.n,
        cfg.queries,
        cfg.batch,
        cfg.shards,
        cfg.queue_capacity,
    );
    let report = RobustnessReport::measure(&cfg);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(
        lock,
        "# Robustness gauntlet — base capacity {:.0} q/s ({} host CPUs)\n",
        report.base_qps, report.host_cpus
    );
    let _ = writeln!(lock, "{}", report.render_table());

    cli.write_json(&report.to_json(), &mut lock);

    if cli.check {
        let failures = verify_gauntlet(&report, min_recovery);
        scrack_bench::trajectory::finish_check(
            "robustness",
            &failures,
            &format!(
                "gauntlet passed: {} cells, every query accounted, every answer \
                 oracle-correct, every planned fault fired and recovered to at \
                 least {:.0}% of the unfaulted baseline",
                report.cells.len(),
                min_recovery * 100.0
            ),
        );
    }
}
