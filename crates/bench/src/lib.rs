//! Shared helpers for the Criterion benchmarks.
//!
//! The benches live in `benches/`:
//!
//! * `partition` — the reorganization kernel primitives;
//! * `kernels` — branchy vs branchless kernel variants, per size and
//!   selectivity;
//! * `index` — cracker-index operations, AVL vs flat representation;
//! * `engines` — whole-select costs per strategy;
//! * `figures` — scaled-down regenerations of the paper's figures, so
//!   `cargo bench` exercises every experiment path end to end.
//!
//! The `scrack_bench` binary (`src/bin/scrack_bench.rs`) runs the
//! [`kernels_report`] harness, the `scrack_throughput` binary
//! (`src/bin/scrack_throughput.rs`) the [`throughput_report`] harness,
//! the `scrack_latency` binary (`src/bin/scrack_latency.rs`) the
//! [`latency_report`] harness, the `scrack_updates` binary
//! (`src/bin/scrack_updates.rs`) the [`updates_report`] mixed
//! read/write harness, and the `scrack_robustness` binary
//! (`src/bin/scrack_robustness.rs`) the [`robustness_report`]
//! fault-injection gauntlet, and the `scrack_txn` binary
//! (`src/bin/scrack_txn.rs`) the [`txn_report`] transactional chaos
//! gauntlet; all write machine-readable `BENCH_*.json` perf baselines.

#![forbid(unsafe_code)]

pub mod gauntlet_report;
pub mod kernels_report;
pub mod latency_report;
pub mod robustness_report;
pub mod throughput_report;
pub mod trajectory;
pub mod txn_report;
pub mod updates_report;

use scrack_types::QueryRange;
use scrack_workloads::{WorkloadKind, WorkloadSpec};

/// CLI helper shared by the reporter binaries: the flag's value operand,
/// or a usage error (exit 2) if it is missing.
pub fn value_of<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    args.get(i).map(String::as_str).unwrap_or_else(|| {
        eprintln!("{flag} requires a value (try --help)");
        std::process::exit(2);
    })
}

/// Deterministic data for benches: a permutation of `0..n`.
pub fn bench_data(n: u64) -> Vec<u64> {
    scrack_workloads::data::unique_permutation(n, 0xBE7C)
}

/// A standard query set for engine benches.
pub fn bench_queries(kind: WorkloadKind, n: u64, q: usize) -> Vec<QueryRange> {
    WorkloadSpec::new(kind, n, q, 0xBE7C).generate()
}
