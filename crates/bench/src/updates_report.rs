//! The mixed read/write harness: update-grade serving, as data.
//!
//! The kernel harness tracks ns/element, the throughput harness
//! queries/sec, the latency harness per-query tails; this module tracks
//! the last unmeasured pillar — **sustained ops/sec under interleaved
//! updates** (the paper's §5/Fig. 15 scenario at LFHV/HFLV scale). It
//! sweeps `scenario × engine × update-policy` over
//! [`scrack_updates::Updatable`] engines driven by
//! [`MixedWorkloadSpec`] streams and emits a stable JSON
//! document (`BENCH_5.json` in the repo root, regenerated via
//! `cargo run --release -p scrack_bench --bin scrack_updates --
//! --json BENCH_5.json --check`).
//!
//! Two correctness gates run *inside* the measurement:
//!
//! * per scenario × engine, the per-element and batched update policies
//!   must produce **bit-identical answer checksums** (the tentpole
//!   contract, enforced at bench time exactly like the throughput
//!   harness's cross-strategy checksum);
//! * the scheduler section replays every mixed batch through
//!   `BatchScheduler::execute_ops` threaded *and* `execute_ops_serial`,
//!   asserting identical results.
//!
//! The headline number is `speedup`: per-element wall time over batched
//! wall time for the same cell — the measured payoff of the
//! merge-ripple. CI runs `--smoke --check` as a coverage gate (cells
//! only; never a perf threshold on shared runners).

use scrack_core::{EngineKind, IndexPolicy, UpdatePolicy};
use scrack_parallel::{BatchOp, BatchScheduler, ParallelStrategy};
use scrack_updates::build_update_engine;
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{MixedOp, MixedWorkloadSpec, UpdateKeyDist, WorkloadKind};
use std::time::Instant;

/// The engines the sweep covers (Fig. 15's pair).
pub const ENGINES: [&str; 2] = ["crack", "mdd1r"];

/// The mixed-workload scenarios the sweep covers.
pub const SCENARIOS: [&str; 3] = ["uniform", "hotspot", "append-lfhv"];

/// Scale and sweep settings for one harness run.
#[derive(Clone, Debug)]
pub struct UpdatesConfig {
    /// Column size / key domain `N`.
    pub n: u64,
    /// Queries per cell run.
    pub queries: usize,
    /// Updates per query on average (`50.0` at 2k queries = the 100k
    /// update load of the acceptance cell).
    pub update_rate: f64,
    /// Runs per cell; the reported numbers are their medians.
    pub samples: usize,
    /// Thread counts for the scheduler section.
    pub threads: Vec<usize>,
    /// Ops per scheduler batch.
    pub batch: usize,
    /// RNG seed for data and workloads.
    pub seed: u64,
    /// Cracker-index representation the engines run on.
    pub index: IndexPolicy,
}

impl Default for UpdatesConfig {
    fn default() -> Self {
        Self {
            n: 1_000_000,
            queries: 2_000,
            update_rate: 50.0,
            samples: 1,
            threads: vec![1, 2, 4],
            batch: 256,
            seed: 0xBE7C,
            index: IndexPolicy::default(),
        }
    }
}

/// One `(scenario, engine, update_policy)` measurement.
#[derive(Clone, Debug)]
pub struct UpdatesCell {
    /// Workload scenario (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Engine (one of [`ENGINES`]).
    pub engine: &'static str,
    /// Update policy label (`per-element` or `batched`).
    pub update_policy: &'static str,
    /// Median wall seconds for the full interleaved run.
    pub wall_s: f64,
    /// Median ops (queries + updates) per second.
    pub ops_per_sec: f64,
    /// Updates the stream carried (all merge by stream end via a flush).
    pub updates: usize,
    /// Order-independent answer fingerprint, equal across policies.
    pub checksum: u64,
}

/// One scheduler-section measurement: mixed batches, threaded.
#[derive(Clone, Debug)]
pub struct SchedulerCell {
    /// Shard/worker thread count.
    pub threads: usize,
    /// Median ops per second through `execute_ops`.
    pub ops_per_sec: f64,
}

/// The full harness output.
#[derive(Clone, Debug)]
pub struct UpdatesReport {
    /// The configuration the cells were measured under.
    pub config: UpdatesConfig,
    /// CPUs available to the measuring process.
    pub host_cpus: usize,
    /// All engine cells, scenario-major.
    pub cells: Vec<UpdatesCell>,
    /// Batched-over-per-element wall-time speedups, per scenario/engine.
    pub speedups: Vec<(String, f64)>,
    /// The `BatchScheduler::execute_ops` sweep (uniform scenario).
    pub scheduler: Vec<SchedulerCell>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// The mixed stream for a named scenario.
fn scenario_spec(name: &str, cfg: &UpdatesConfig) -> MixedWorkloadSpec {
    let base = MixedWorkloadSpec::fig15(WorkloadKind::Random, cfg.n, cfg.queries, cfg.seed)
        .with_update_rate(cfg.update_rate);
    match name {
        // Fig. 15 generalized: uniform keys, HF bursts, insert-biased.
        "uniform" => base.with_burst(100).with_insert_fraction(0.6),
        // Same load concentrated on 2% of the domain.
        "hotspot" => base
            .with_burst(100)
            .with_insert_fraction(0.6)
            .with_keys(UpdateKeyDist::Hotspot {
                center: 0.5,
                width: 0.02,
            }),
        // Low-frequency/high-volume appends over a sequential read walk.
        "append-lfhv" => MixedWorkloadSpec::fig15(
            WorkloadKind::Sequential,
            cfg.n,
            cfg.queries,
            cfg.seed,
        )
        .with_update_rate(cfg.update_rate)
        .with_burst(1_000)
        .with_insert_fraction(0.8)
        .with_keys(UpdateKeyDist::Append),
        other => panic!("unknown scenario {other}"),
    }
}

fn engine_kind(name: &str) -> EngineKind {
    match name {
        "crack" => EngineKind::Crack,
        "mdd1r" => EngineKind::Mdd1r,
        other => panic!("unknown engine {other}"),
    }
}

/// One timed interleaved run; returns `(wall_seconds, checksum)`.
///
/// The checksum folds every query's `(count, key_sum)` plus the final
/// flushed column length, so policies must agree on every answer *and*
/// on the merged end state.
fn run_once(
    engine: &str,
    policy: UpdatePolicy,
    data: &[u64],
    ops: &[MixedOp],
    cfg: &UpdatesConfig,
) -> (f64, u64) {
    let config = scrack_core::CrackConfig::default()
        .with_index(cfg.index)
        .with_update(policy);
    let mut eng = build_update_engine::<u64>(engine_kind(engine), data.to_vec(), config, cfg.seed);
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for op in ops {
        match *op {
            MixedOp::Query(q) => {
                let out = scrack_core::Engine::select(&mut eng, q);
                checksum = checksum
                    .wrapping_add(out.len() as u64)
                    .wrapping_add(out.key_checksum(scrack_core::Engine::data(&eng)));
            }
            MixedOp::Insert(k) => eng.insert(k),
            MixedOp::Delete(k) => eng.delete(k),
        }
    }
    eng.flush();
    let wall = t0.elapsed().as_secs_f64();
    (wall, checksum.wrapping_add(scrack_core::Engine::data(&eng).len() as u64))
}

/// One timed scheduler run over batched mixed ops; returns the
/// threaded path's wall seconds after asserting its per-op results are
/// bit-identical to an untimed `execute_ops_serial` replay.
fn run_scheduler_once(
    threads: usize,
    data: &[u64],
    ops: &[BatchOp<u64>],
    cfg: &UpdatesConfig,
) -> f64 {
    let config = scrack_core::CrackConfig::default().with_index(cfg.index);
    let mut par = BatchScheduler::new(
        data.to_vec(),
        threads,
        ParallelStrategy::Stochastic,
        config,
        cfg.seed,
    );
    let mut ser = BatchScheduler::new(
        data.to_vec(),
        threads,
        ParallelStrategy::Stochastic,
        config,
        cfg.seed,
    );
    let t0 = Instant::now();
    let mut threaded_results = Vec::new();
    for chunk in ops.chunks(cfg.batch) {
        threaded_results.push(par.execute_ops(chunk));
    }
    let wall = t0.elapsed().as_secs_f64();
    let serial_results: Vec<_> = ops.chunks(cfg.batch).map(|c| ser.execute_ops_serial(c)).collect();
    assert_eq!(
        threaded_results, serial_results,
        "t{threads}: threaded mixed batches diverged from serial replay"
    );
    wall
}

fn to_batch_ops(ops: &[MixedOp]) -> Vec<BatchOp<u64>> {
    ops.iter()
        .map(|op| match *op {
            MixedOp::Query(q) => BatchOp::Select(q),
            MixedOp::Insert(k) => BatchOp::Insert(k),
            MixedOp::Delete(k) => BatchOp::Delete(k),
        })
        .collect()
}

impl UpdatesReport {
    /// Runs the harness: every scenario × engine × update policy plus
    /// the scheduler sweep, `config.samples` timed runs each.
    pub fn measure(config: &UpdatesConfig) -> UpdatesReport {
        assert!(config.samples > 0, "need at least one sample");
        assert!(config.queries > 0, "need at least one query");
        assert!(config.batch > 0, "need a positive batch size");
        assert!(
            !config.threads.is_empty() && config.threads.iter().all(|t| *t > 0),
            "need at least one nonzero thread count"
        );
        let data = unique_permutation::<u64>(config.n, config.seed);
        let mut cells = Vec::new();
        let mut speedups = Vec::new();
        for scenario in SCENARIOS {
            let ops = scenario_spec(scenario, config).generate();
            let updates = ops
                .iter()
                .filter(|op| !matches!(op, MixedOp::Query(_)))
                .count();
            for engine in ENGINES {
                let mut wall_by_policy = Vec::new();
                let mut checksum_seen: Option<u64> = None;
                for policy in UpdatePolicy::ALL {
                    let mut walls = Vec::with_capacity(config.samples);
                    let mut checksum = 0u64;
                    for _ in 0..config.samples {
                        let (wall, sum) = run_once(engine, policy, &data, &ops, config);
                        walls.push(wall);
                        checksum = sum;
                        // Answers must agree across update policies —
                        // any divergence is a correctness bug, caught
                        // at bench time.
                        let seen = *checksum_seen.get_or_insert(sum);
                        assert_eq!(
                            seen, sum,
                            "{scenario}/{engine}/{policy}: answer checksum diverged"
                        );
                    }
                    let wall_s = median(walls);
                    wall_by_policy.push(wall_s);
                    cells.push(UpdatesCell {
                        scenario,
                        engine,
                        update_policy: policy.label(),
                        wall_s,
                        ops_per_sec: ops.len() as f64 / wall_s.max(1e-12),
                        updates,
                        checksum,
                    });
                }
                speedups.push((
                    format!("{scenario}/{engine}"),
                    wall_by_policy[0] / wall_by_policy[1].max(1e-12),
                ));
            }
        }
        // Scheduler sweep on the uniform scenario's stream.
        let sched_ops = to_batch_ops(&scenario_spec("uniform", config).generate());
        let scheduler = config
            .threads
            .iter()
            .map(|&threads| {
                let walls: Vec<f64> = (0..config.samples)
                    .map(|_| run_scheduler_once(threads, &data, &sched_ops, config))
                    .collect();
                SchedulerCell {
                    threads,
                    ops_per_sec: sched_ops.len() as f64 / median(walls).max(1e-12),
                }
            })
            .collect();
        UpdatesReport {
            config: config.clone(),
            host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            cells,
            speedups,
            scheduler,
        }
    }

    /// The cell for (scenario, engine, policy label), if measured.
    pub fn cell(&self, scenario: &str, engine: &str, policy: &str) -> Option<&UpdatesCell> {
        self.cells.iter().find(|c| {
            c.scenario == scenario && c.engine == engine && c.update_policy == policy
        })
    }

    /// Every scenario/engine/policy combination (and scheduler thread
    /// count) missing from the report (empty = full coverage). The CI
    /// updates-smoke step gates on this.
    pub fn missing_cells(&self) -> Vec<String> {
        let mut missing = Vec::new();
        for scenario in SCENARIOS {
            for engine in ENGINES {
                for policy in UpdatePolicy::ALL {
                    if self.cell(scenario, engine, policy.label()).is_none() {
                        missing.push(format!("{scenario}/{engine}/{policy}"));
                    }
                }
            }
        }
        for &threads in &self.config.threads {
            if !self.scheduler.iter().any(|c| c.threads == threads) {
                missing.push(format!("scheduler/t={threads}"));
            }
        }
        missing
    }

    /// Serializes the report as JSON (hand-rolled, as the workspace
    /// builds offline without serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"scrack-updates-bench/v1\",\n");
        s.push_str(&format!("  \"n\": {},\n", self.config.n));
        s.push_str(&format!("  \"queries\": {},\n", self.config.queries));
        s.push_str(&format!("  \"update_rate\": {},\n", self.config.update_rate));
        s.push_str(&format!("  \"samples\": {},\n", self.config.samples));
        s.push_str(&format!("  \"batch_size\": {},\n", self.config.batch));
        s.push_str(&format!("  \"index_policy\": \"{}\",\n", self.config.index));
        s.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        let threads: Vec<String> = self.config.threads.iter().map(|t| t.to_string()).collect();
        s.push_str(&format!("  \"threads\": [{}],\n", threads.join(", ")));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"engine\": \"{}\", \"update_policy\": \"{}\", \
                 \"wall_s\": {:.4}, \"ops_per_sec\": {:.1}, \"updates\": {}, \
                 \"checksum\": {}}}{}\n",
                c.scenario,
                c.engine,
                c.update_policy,
                c.wall_s,
                c.ops_per_sec,
                c.updates,
                c.checksum,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"speedups_batched_over_per_element\": [\n");
        for (i, (label, speedup)) in self.speedups.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"cell\": \"{label}\", \"speedup\": {speedup:.2}}}{}\n",
                if i + 1 < self.speedups.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"scheduler_mixed_ops\": [\n");
        for (i, c) in self.scheduler.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"threads\": {}, \"ops_per_sec\": {:.1}}}{}\n",
                c.threads,
                c.ops_per_sec,
                if i + 1 < self.scheduler.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// A human-readable summary (markdown).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str("| scenario | engine | update policy | wall (s) | ops/sec | updates |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for c in &self.cells {
            s.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.0} | {} |\n",
                c.scenario, c.engine, c.update_policy, c.wall_s, c.ops_per_sec, c.updates
            ));
        }
        s.push_str("\n| cell | batched speedup |\n|---|---|\n");
        for (label, speedup) in &self.speedups {
            s.push_str(&format!("| {label} | {speedup:.2}x |\n"));
        }
        s.push_str("\n| scheduler threads | mixed ops/sec |\n|---|---|\n");
        for c in &self.scheduler {
            s.push_str(&format!("| {} | {:.0} |\n", c.threads, c.ops_per_sec));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> UpdatesConfig {
        UpdatesConfig {
            n: 4_000,
            queries: 60,
            update_rate: 5.0,
            samples: 1,
            threads: vec![1, 2],
            batch: 32,
            seed: 7,
            index: IndexPolicy::default(),
        }
    }

    #[test]
    fn covers_every_cell_with_finite_numbers() {
        let r = UpdatesReport::measure(&tiny_config());
        assert_eq!(
            r.cells.len(),
            SCENARIOS.len() * ENGINES.len() * UpdatePolicy::ALL.len()
        );
        assert!(r.missing_cells().is_empty(), "{:?}", r.missing_cells());
        for c in &r.cells {
            assert!(c.wall_s.is_finite() && c.wall_s >= 0.0, "{c:?}");
            assert!(c.ops_per_sec.is_finite() && c.ops_per_sec > 0.0, "{c:?}");
            assert_eq!(c.updates, 300, "{c:?}");
        }
        assert_eq!(r.speedups.len(), SCENARIOS.len() * ENGINES.len());
        assert_eq!(r.scheduler.len(), 2);
    }

    #[test]
    fn checksums_agree_across_policies_per_cell() {
        let r = UpdatesReport::measure(&tiny_config());
        for scenario in SCENARIOS {
            for engine in ENGINES {
                let a = r.cell(scenario, engine, "per-element").unwrap();
                let b = r.cell(scenario, engine, "batched").unwrap();
                assert_eq!(a.checksum, b.checksum, "{scenario}/{engine}");
            }
        }
    }

    #[test]
    fn json_is_structurally_sound_and_complete() {
        let r = UpdatesReport::measure(&tiny_config());
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "schema",
            "n",
            "queries",
            "update_rate",
            "cells",
            "speedups_batched_over_per_element",
            "scheduler_mixed_ops",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for name in SCENARIOS.iter().chain(ENGINES.iter()) {
            assert!(json.contains(name), "missing {name}");
        }
        assert!(!json.contains(",\n  ]"), "trailing comma before ]");
        assert!(!json.contains(",\n}"), "trailing comma before }}");
    }
}
