//! The kernel perf-trajectory harness: branchy vs branchless, as data.
//!
//! Criterion benches print to a terminal; later PRs need the numbers as a
//! machine-readable baseline. This module measures the three
//! reorganization primitives in both kernel variants across piece sizes
//! and emits a stable JSON document (`BENCH_<pr>.json` in the repo root,
//! regenerated via `cargo run --release -p scrack_bench --bin
//! scrack_bench -- --json BENCH_2.json`). Each cell is the **median**
//! ns/element over a fixed number of samples — medians because a shared
//! CI box's tail noise would otherwise dominate a mean.

use crate::bench_data;
use scrack_partition::{
    crack_in_three, crack_in_three_branchless, crack_in_two, crack_in_two_branchless,
    scan_filter, scan_filter_branchless, Fringe,
};
use scrack_types::{QueryRange, Stats};
use std::time::Instant;

/// The measured primitives, in report order.
pub const KERNELS: [&str; 3] = ["crack_in_two", "crack_in_three", "scan_filter"];

/// The kernel variants every primitive is measured in.
pub const VARIANTS: [&str; 2] = ["branchy", "branchless"];

/// Default piece sizes: L2-ish, the paper's piece scale, and a
/// several-×-LLC piece where memory behavior dominates.
pub const DEFAULT_SIZES: [usize; 3] = [65_536, 1_048_576, 4_194_304];

/// One (kernel, variant, size) measurement.
#[derive(Clone, Debug)]
pub struct KernelCell {
    /// Primitive name (one of [`KERNELS`]).
    pub kernel: &'static str,
    /// Variant name (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// Piece size in elements.
    pub n: usize,
    /// Median wall-clock nanoseconds per element.
    pub median_ns_per_elem: f64,
}

/// The full harness output: every kernel/variant/size cell.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Samples per cell (median taken over these).
    pub samples: usize,
    /// Piece sizes measured.
    pub sizes: Vec<usize>,
    /// All cells, kernel-major then size then variant.
    pub cells: Vec<KernelCell>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// Times `op` over `samples` runs (plus one warmup), restoring `scratch`
/// from `data` before each run, and returns the median ns/element.
fn time_kernel<R>(
    data: &[u64],
    scratch: &mut Vec<u64>,
    samples: usize,
    mut op: impl FnMut(&mut [u64]) -> R,
) -> f64 {
    let mut runs = Vec::with_capacity(samples);
    for i in 0..=samples {
        scratch.clear();
        scratch.extend_from_slice(data);
        let t0 = Instant::now();
        let out = op(scratch.as_mut_slice());
        let ns = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        if i > 0 {
            // Run 0 is the warmup: page-faults the scratch buffer in and
            // warms the branch predictor tables.
            runs.push(ns / data.len().max(1) as f64);
        }
    }
    median(runs)
}

impl KernelReport {
    /// Runs the harness: every primitive × variant × size, `samples`
    /// timed runs each.
    pub fn measure(sizes: &[usize], samples: usize) -> KernelReport {
        assert!(samples > 0, "need at least one sample");
        let mut cells = Vec::new();
        for &n in sizes {
            let data = bench_data(n as u64);
            let mut scratch: Vec<u64> = Vec::with_capacity(n + 1);
            let pivot = n as u64 / 2;
            let (a, b) = (n as u64 / 3, 2 * n as u64 / 3);
            // 50% selectivity centered on the middle of the domain: the
            // worst case for the filter branch.
            let q = QueryRange::new(n as u64 / 4, n as u64 / 4 + n as u64 / 2);

            let two_branchy = time_kernel(&data, &mut scratch, samples, |d| {
                crack_in_two(d, pivot, &mut Stats::new())
            });
            let two_branchless = time_kernel(&data, &mut scratch, samples, |d| {
                crack_in_two_branchless(d, pivot, &mut Stats::new())
            });
            let three_branchy = time_kernel(&data, &mut scratch, samples, |d| {
                crack_in_three(d, a, b, &mut Stats::new())
            });
            let three_branchless = time_kernel(&data, &mut scratch, samples, |d| {
                crack_in_three_branchless(d, a, b, &mut Stats::new())
            });
            let mut out: Vec<u64> = Vec::new();
            let scan_branchy = time_kernel(&data, &mut scratch, samples, |d| {
                out.clear();
                scan_filter(d, Fringe::Both(q), &mut out, &mut Stats::new())
            });
            let scan_branchless = time_kernel(&data, &mut scratch, samples, |d| {
                out.clear();
                scan_filter_branchless(d, Fringe::Both(q), &mut out, &mut Stats::new())
            });

            for (kernel, variant, ns) in [
                ("crack_in_two", "branchy", two_branchy),
                ("crack_in_two", "branchless", two_branchless),
                ("crack_in_three", "branchy", three_branchy),
                ("crack_in_three", "branchless", three_branchless),
                ("scan_filter", "branchy", scan_branchy),
                ("scan_filter", "branchless", scan_branchless),
            ] {
                cells.push(KernelCell {
                    kernel,
                    variant,
                    n,
                    median_ns_per_elem: ns,
                });
            }
        }
        KernelReport {
            samples,
            sizes: sizes.to_vec(),
            cells,
        }
    }

    /// The cell for (kernel, variant, n), if measured.
    pub fn cell(&self, kernel: &str, variant: &str, n: usize) -> Option<&KernelCell> {
        self.cells
            .iter()
            .find(|c| c.kernel == kernel && c.variant == variant && c.n == n)
    }

    /// `branchy / branchless` median ratio (>1 means branchless wins).
    pub fn speedup(&self, kernel: &str, n: usize) -> Option<f64> {
        let branchy = self.cell(kernel, "branchy", n)?.median_ns_per_elem;
        let branchless = self.cell(kernel, "branchless", n)?.median_ns_per_elem;
        (branchless > 0.0).then(|| branchy / branchless)
    }

    /// Every kernel/variant/size combination missing from the report
    /// (empty = full coverage). The CI bench-smoke step gates on this.
    pub fn missing_cells(&self) -> Vec<String> {
        let mut missing = Vec::new();
        for kernel in KERNELS {
            for variant in VARIANTS {
                for &n in &self.sizes {
                    if self.cell(kernel, variant, n).is_none() {
                        missing.push(format!("{kernel}/{variant}/n={n}"));
                    }
                }
            }
        }
        missing
    }

    /// Serializes the report as JSON (hand-rolled: the workspace builds
    /// offline, so no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"scrack-kernel-bench/v1\",\n");
        s.push_str(&format!("  \"samples\": {},\n", self.samples));
        let sizes: Vec<String> = self.sizes.iter().map(|n| n.to_string()).collect();
        s.push_str(&format!("  \"sizes\": [{}],\n", sizes.join(", ")));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"n\": {}, \
                 \"median_ns_per_elem\": {:.4}}}{}\n",
                c.kernel,
                c.variant,
                c.n,
                c.median_ns_per_elem,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"speedups\": [\n");
        let mut lines = Vec::new();
        for kernel in KERNELS {
            for &n in &self.sizes {
                if let Some(x) = self.speedup(kernel, n) {
                    lines.push(format!(
                        "    {{\"kernel\": \"{kernel}\", \"n\": {n}, \
                         \"branchy_over_branchless\": {x:.3}}}"
                    ));
                }
            }
        }
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }

    /// A human-readable summary table (markdown).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str("| kernel | n | branchy ns/elem | branchless ns/elem | speedup |\n");
        s.push_str("|---|---|---|---|---|\n");
        for kernel in KERNELS {
            for &n in &self.sizes {
                let branchy = self.cell(kernel, "branchy", n);
                let branchless = self.cell(kernel, "branchless", n);
                if let (Some(a), Some(b)) = (branchy, branchless) {
                    s.push_str(&format!(
                        "| {kernel} | {n} | {:.2} | {:.2} | {:.2}x |\n",
                        a.median_ns_per_elem,
                        b.median_ns_per_elem,
                        self.speedup(kernel, n).unwrap_or(f64::NAN)
                    ));
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> KernelReport {
        KernelReport::measure(&[512, 1024], 1)
    }

    #[test]
    fn covers_every_kernel_variant_size_cell() {
        let r = tiny_report();
        assert_eq!(r.cells.len(), KERNELS.len() * VARIANTS.len() * 2);
        assert!(r.missing_cells().is_empty(), "{:?}", r.missing_cells());
        for c in &r.cells {
            assert!(
                c.median_ns_per_elem.is_finite() && c.median_ns_per_elem >= 0.0,
                "{c:?}"
            );
        }
    }

    #[test]
    fn json_is_structurally_sound_and_complete() {
        let r = tiny_report();
        let json = r.to_json();
        // Balanced structure (no string literals contain braces/brackets).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "unbalanced brackets"
        );
        for key in ["schema", "samples", "sizes", "cells", "speedups"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for kernel in KERNELS {
            assert!(json.contains(kernel), "missing {kernel}");
        }
        for variant in VARIANTS {
            assert!(json.contains(variant), "missing {variant}");
        }
        // No trailing commas before closers (the classic hand-rolled-JSON
        // mistake).
        assert!(!json.contains(",\n  ]"), "trailing comma before ]");
        assert!(!json.contains(",\n}"), "trailing comma before }}");
    }

    #[test]
    fn speedup_is_ratio_of_medians() {
        let mut r = tiny_report();
        for c in &mut r.cells {
            c.median_ns_per_elem = match c.variant {
                "branchy" => 3.0,
                _ => 2.0,
            };
        }
        assert!((r.speedup("crack_in_two", 512).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
