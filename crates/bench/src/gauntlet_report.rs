//! The self-driving gauntlet: chooser vs best static config, every
//! workload, adversarial phase changes included — as data.
//!
//! PR 8's claim is that a [`SelfDrivingEngine`] choosing its own
//! configuration online stays competitive with the best *statically*
//! chosen configuration — without being told the workload, and even when
//! the workload changes out from under it mid-stream. This module is the
//! proof harness. Per scenario it:
//!
//! 1. generates one deterministic op stream (queries, or mixed
//!    read/write);
//! 2. replays it through **every** static arm of
//!    [`ConfigSpace::default_space`] on factory engines, recording the
//!    cumulative §3 cost (touched + materialized tuples — deterministic
//!    and machine-independent, so the gate never flakes on wall time);
//! 3. replays it through the self-driving chooser **twice** with the
//!    same seed;
//! 4. asserts: the chooser's total cost is within
//!    [`factor`](GauntletConfig::factor) (default 2×) of the best static
//!    arm's; every answer — static and chooser, across every config
//!    switch — matches a sorted-multiset oracle; and the two chooser
//!    runs are **bit-identical** (answers, action log, switch log,
//!    `Stats`).
//!
//! The scenario axis crosses the steady generators (random, sequential,
//! skew, periodic, the SkyServer trace, a Fig. 15 mixed read/write
//! stream) with the [`PhasedWorkload`] adversaries: the
//! random→sequential flip, hotspot migration, and update-burst onset.
//! Per-cell **regret curves** (cumulative chooser cost / cumulative
//! best-static cost at 16 checkpoints) go into the emitted
//! [`scrack-trajectory/v1`](crate::trajectory) document — committed as
//! `BENCH_8.json`, regenerated via `cargo run --release -p scrack_bench
//! --bin scrack_gauntlet -- --json BENCH_8.json`.

use crate::trajectory::{obj, Json, TrajectoryDoc};
use scrack_chooser::{switch_seed, ConfigSpace, SelfDrivingEngine};
use scrack_core::{CrackConfig, Engine, EngineKind};
use scrack_types::{QueryRange, Stats};
use scrack_updates::{build_update_engine, Updatable, UpdateEngine};
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{
    skyserver_trace, MixedOp, MixedWorkloadSpec, PhasedWorkload, SkyServerConfig, WorkloadKind,
};

/// Every scenario the full gauntlet sweeps: the steady generators, then
/// the adversarial phase changes.
pub const SCENARIOS: [&str; 9] = [
    "random",
    "sequential",
    "skew",
    "periodic",
    "skyserver",
    "mixed",
    "flip",
    "hotspot",
    "burst",
];

/// The smoke subset: one steady baseline plus two phase-change cells
/// (the CI gate's scope).
pub const SMOKE_SCENARIOS: [&str; 3] = ["random", "flip", "burst"];

/// Checkpoints per regret curve.
pub const CHECKPOINTS: usize = 16;

/// Scale and sweep settings for one gauntlet run.
#[derive(Clone, Debug)]
pub struct GauntletConfig {
    /// Column size / key domain `N`.
    pub n: u64,
    /// Queries per scenario stream.
    pub queries: usize,
    /// The gate: chooser total cost must stay within `factor ×` the best
    /// static arm's.
    pub factor: f64,
    /// Chooser decision epoch length (queries per decision).
    pub epoch_len: u64,
    /// RNG seed for data, workloads, and the chooser.
    pub seed: u64,
    /// Scenarios to run (each one of [`SCENARIOS`]).
    pub scenarios: Vec<&'static str>,
}

impl Default for GauntletConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            queries: 2_048,
            factor: 2.0,
            epoch_len: 128,
            seed: 0x5D_E1F,
            scenarios: SCENARIOS.to_vec(),
        }
    }
}

impl GauntletConfig {
    /// CI scale: small keyspace, short streams, the smoke scenario
    /// subset — seconds, not minutes.
    pub fn smoke() -> Self {
        Self {
            n: 20_000,
            queries: 768,
            epoch_len: 64,
            scenarios: SMOKE_SCENARIOS.to_vec(),
            ..Self::default()
        }
    }
}

/// One scenario's measurement.
#[derive(Clone, Debug)]
pub struct GauntletCell {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Queries in the stream.
    pub queries: usize,
    /// Updates (inserts + deletes) in the stream.
    pub updates: usize,
    /// Chooser total §3 cost (touched + materialized, all segments).
    pub chooser_cost: u64,
    /// The cheapest static arm's total cost.
    pub best_static_cost: u64,
    /// That arm's label (e.g. `MDD1R/auto/flat/batched`).
    pub best_static: String,
    /// The most expensive static arm's total cost (the price of guessing
    /// the config wrong).
    pub worst_static_cost: u64,
    /// `chooser_cost / best_static_cost`.
    pub cost_ratio: f64,
    /// Whether the ratio is within the configured factor.
    pub within_factor: bool,
    /// Answers (any run) that diverged from the multiset oracle — must
    /// be 0.
    pub oracle_failures: usize,
    /// Whether the two same-seed chooser runs were bit-identical
    /// (answers, action log, switch log, `Stats`).
    pub replay_identical: bool,
    /// Whether every deterministic data-driven midpoint arm
    /// (DDM/DD1M/MDD1M) in the static race replayed bit-identically —
    /// answers and `Stats` — when run twice on the same stream. These
    /// engines carry no RNG, so anything but `true` is a determinism
    /// bug; vacuously `true` if the space holds no midpoint arm.
    pub midpoint_replay_identical: bool,
    /// Config switches the chooser performed.
    pub switches: usize,
    /// Distinct arms the chooser pulled at least once.
    pub arms_explored: usize,
}

/// The full gauntlet output.
#[derive(Clone, Debug)]
pub struct GauntletReport {
    /// The configuration the cells were measured under.
    pub config: GauntletConfig,
    /// Labels of the static arms every cell raced against.
    pub arms: Vec<String>,
    /// All cells, in scenario order.
    pub cells: Vec<GauntletCell>,
    /// Per-scenario regret curves: `(query index, cumulative chooser
    /// cost / cumulative best-static cost)` at [`CHECKPOINTS`] points.
    pub curves: Vec<(&'static str, Vec<(u64, f64)>)>,
}

/// A sorted multiset of keys: the update-aware exact-answer oracle.
/// Mirrors the engines' semantics — inserts add one instance, deletes
/// remove one instance (absent keys evaporate).
#[derive(Clone, Debug)]
struct Multiset {
    keys: Vec<u64>,
}

impl Multiset {
    fn new(data: &[u64]) -> Self {
        let mut keys = data.to_vec();
        keys.sort_unstable();
        Self { keys }
    }

    fn insert(&mut self, key: u64) {
        let at = self.keys.partition_point(|k| *k < key);
        self.keys.insert(at, key);
    }

    fn delete(&mut self, key: u64) {
        let at = self.keys.partition_point(|k| *k < key);
        if self.keys.get(at) == Some(&key) {
            self.keys.remove(at);
        }
    }

    fn answer(&self, q: QueryRange) -> (usize, u64) {
        let lo = self.keys.partition_point(|k| *k < q.low);
        let hi = self.keys.partition_point(|k| *k < q.high);
        let sum = self.keys[lo..hi].iter().fold(0u64, |a, k| a.wrapping_add(*k));
        (hi - lo, sum)
    }
}

/// The op stream for a named scenario. Deterministic per seed.
pub fn scenario_stream(scenario: &str, n: u64, queries: usize, seed: u64) -> Vec<MixedOp> {
    match scenario {
        "random" => PhasedWorkload::steady(WorkloadKind::Random, n, queries, seed).generate(),
        "sequential" => {
            PhasedWorkload::steady(WorkloadKind::Sequential, n, queries, seed).generate()
        }
        "skew" => PhasedWorkload::steady(WorkloadKind::Skew, n, queries, seed).generate(),
        "periodic" => PhasedWorkload::steady(WorkloadKind::Periodic, n, queries, seed).generate(),
        "skyserver" => skyserver_trace(SkyServerConfig::new(n, queries, seed))
            .into_iter()
            .map(MixedOp::Query)
            .collect(),
        "mixed" => MixedWorkloadSpec::fig15(WorkloadKind::Random, n, queries, seed).generate(),
        "flip" => PhasedWorkload::flip(n, queries, seed).generate(),
        "hotspot" => PhasedWorkload::hotspot_migration(n, queries, seed).generate(),
        "burst" => PhasedWorkload::update_burst(WorkloadKind::Random, n, queries, seed).generate(),
        other => panic!("unknown scenario {other}"),
    }
}

/// What both engine shapes expose to the replay loop.
trait Serves {
    fn serve(&mut self, q: QueryRange) -> (usize, u64);
    fn add(&mut self, key: u64);
    fn remove(&mut self, key: u64);
    fn stats(&self) -> Stats;
}

impl Serves for Updatable<Box<dyn UpdateEngine<u64>>, u64> {
    fn serve(&mut self, q: QueryRange) -> (usize, u64) {
        let out = self.select(q);
        (out.len(), out.key_checksum(self.data()))
    }

    fn add(&mut self, key: u64) {
        self.insert(key);
    }

    fn remove(&mut self, key: u64) {
        self.delete(key);
    }

    fn stats(&self) -> Stats {
        Engine::stats(self)
    }
}

impl Serves for SelfDrivingEngine<u64> {
    fn serve(&mut self, q: QueryRange) -> (usize, u64) {
        let out = self.select(q);
        (out.len(), out.key_checksum(self.data()))
    }

    fn add(&mut self, key: u64) {
        self.insert(key);
    }

    fn remove(&mut self, key: u64) {
        self.delete(key);
    }

    fn stats(&self) -> Stats {
        Engine::stats(self)
    }
}

/// One replayed stream's trace.
struct RunTrace {
    /// `(count, key checksum)` per query, in stream order.
    answers: Vec<(usize, u64)>,
    /// Cumulative §3 cost after each query.
    cum_cost: Vec<u64>,
    /// Answers that diverged from the oracle.
    oracle_failures: usize,
}

impl RunTrace {
    fn total_cost(&self) -> u64 {
        self.cum_cost.last().copied().unwrap_or(0)
    }
}

fn cost_of(stats: Stats) -> u64 {
    stats.touched + stats.materialized
}

/// Replays `ops` against `target`, verifying every answer against a
/// fresh multiset oracle seeded from `data`.
fn run_stream(target: &mut dyn Serves, ops: &[MixedOp], data: &[u64]) -> RunTrace {
    let mut oracle = Multiset::new(data);
    let mut trace = RunTrace {
        answers: Vec::new(),
        cum_cost: Vec::new(),
        oracle_failures: 0,
    };
    for op in ops {
        match op {
            MixedOp::Query(q) => {
                let got = target.serve(*q);
                if got != oracle.answer(*q) {
                    trace.oracle_failures += 1;
                }
                trace.answers.push(got);
                trace.cum_cost.push(cost_of(target.stats()));
            }
            MixedOp::Insert(key) => {
                target.add(*key);
                oracle.insert(*key);
            }
            MixedOp::Delete(key) => {
                target.remove(*key);
                oracle.delete(*key);
            }
        }
    }
    trace
}

impl GauntletReport {
    /// Runs the gauntlet (see module docs).
    pub fn measure(config: &GauntletConfig) -> GauntletReport {
        assert!(config.queries > 0, "need a stream");
        assert!(config.factor > 1.0, "the gate factor must exceed 1.0");
        assert!(!config.scenarios.is_empty(), "need at least one scenario");
        let space = ConfigSpace::default_space();
        let base = CrackConfig::default();
        let data = unique_permutation::<u64>(config.n, config.seed);
        let mut cells = Vec::new();
        let mut curves = Vec::new();
        for &scenario in &config.scenarios {
            let ops = scenario_stream(scenario, config.n, config.queries, config.seed);
            let updates = ops
                .iter()
                .filter(|op| !matches!(op, MixedOp::Query(_)))
                .count();

            // Every static arm races on the same stream, built with the
            // chooser's segment-0 seed so the comparison is apples to
            // apples.
            let mut static_traces = Vec::with_capacity(space.len());
            let mut midpoint_replay_identical = true;
            for arm in space.arms() {
                let build = || {
                    build_update_engine(
                        arm.engine,
                        data.clone(),
                        arm.crack_config(base),
                        switch_seed(config.seed, 0),
                    )
                };
                let mut engine = build();
                let trace = run_stream(&mut engine, &ops, &data);
                // The deterministic midpoint arms carry no RNG, so a
                // second run over the same stream must be bit-identical
                // — the family's replay gate, checked right here in the
                // race.
                if matches!(
                    arm.engine,
                    EngineKind::Ddm | EngineKind::Dd1m | EngineKind::Mdd1m
                ) {
                    let mut twin = build();
                    let twin_trace = run_stream(&mut twin, &ops, &data);
                    midpoint_replay_identical &= trace.answers == twin_trace.answers
                        && Serves::stats(&engine) == Serves::stats(&twin);
                }
                static_traces.push(trace);
            }
            let best_i = (0..static_traces.len())
                .min_by_key(|i| static_traces[*i].total_cost())
                .expect("non-empty space");
            let best = &static_traces[best_i];
            let worst_cost = static_traces
                .iter()
                .map(RunTrace::total_cost)
                .max()
                .expect("non-empty space");

            // The chooser, twice with the same seed: the second run is
            // the determinism gate.
            let chooser = |_: ()| {
                let mut e =
                    SelfDrivingEngine::new_default(data.clone(), base, config.seed)
                        .with_epoch_len(config.epoch_len);
                let trace = run_stream(&mut e, &ops, &data);
                (e, trace)
            };
            let (e1, t1) = chooser(());
            let (e2, t2) = chooser(());
            let replay_identical = t1.answers == t2.answers
                && e1.action_log() == e2.action_log()
                && e1.switch_log() == e2.switch_log()
                && Engine::stats(&e1) == Engine::stats(&e2);

            let chooser_cost = t1.total_cost();
            let best_cost = best.total_cost();
            let cost_ratio = chooser_cost as f64 / best_cost.max(1) as f64;
            let oracle_failures = t1.oracle_failures
                + t2.oracle_failures
                + static_traces.iter().map(|t| t.oracle_failures).sum::<usize>();

            // Regret trajectory at evenly spaced checkpoints.
            let nq = t1.cum_cost.len();
            let points: Vec<(u64, f64)> = (1..=CHECKPOINTS)
                .map(|i| {
                    let at = (i * nq / CHECKPOINTS).max(1) - 1;
                    let ratio = t1.cum_cost[at] as f64 / best.cum_cost[at].max(1) as f64;
                    (at as u64, ratio)
                })
                .collect();
            curves.push((scenario, points));

            cells.push(GauntletCell {
                scenario,
                queries: nq,
                updates,
                chooser_cost,
                best_static_cost: best_cost,
                best_static: space.arm(best_i).label(),
                worst_static_cost: worst_cost,
                cost_ratio,
                within_factor: cost_ratio <= config.factor,
                oracle_failures,
                replay_identical,
                midpoint_replay_identical,
                switches: e1.switch_log().len(),
                arms_explored: e1.arm_pulls().iter().filter(|p| **p > 0).count(),
            });
        }
        GauntletReport {
            config: config.clone(),
            arms: space.arms().iter().map(|a| a.label()).collect(),
            cells,
            curves,
        }
    }

    /// The cell for a scenario, if measured.
    pub fn cell(&self, scenario: &str) -> Option<&GauntletCell> {
        self.cells.iter().find(|c| c.scenario == scenario)
    }

    /// Every configured scenario missing from the report (empty = full
    /// coverage).
    pub fn missing_cells(&self) -> Vec<String> {
        self.config
            .scenarios
            .iter()
            .filter(|s| self.cell(s).is_none())
            .map(|s| s.to_string())
            .collect()
    }

    /// Serializes the report as a `scrack-trajectory/v1` document with
    /// one regret curve per scenario.
    pub fn to_json(&self) -> String {
        let mut doc = TrajectoryDoc::new("gauntlet")
            .param("n", Json::UInt(self.config.n))
            .param("queries", Json::UInt(self.config.queries as u64))
            .param("factor", Json::fixed(self.config.factor, 2))
            .param("epoch_len", Json::UInt(self.config.epoch_len))
            .param("seed", Json::UInt(self.config.seed))
            .axis(
                "scenarios",
                self.config.scenarios.iter().map(|s| Json::str(*s)).collect(),
            )
            .axis("arms", self.arms.iter().map(Json::str).collect());
        for c in &self.cells {
            doc.cell(obj(vec![
                ("scenario", Json::str(c.scenario)),
                ("queries", Json::UInt(c.queries as u64)),
                ("updates", Json::UInt(c.updates as u64)),
                ("chooser_cost", Json::UInt(c.chooser_cost)),
                ("best_static_cost", Json::UInt(c.best_static_cost)),
                ("best_static", Json::str(&c.best_static)),
                ("worst_static_cost", Json::UInt(c.worst_static_cost)),
                ("cost_ratio", Json::fixed(c.cost_ratio, 3)),
                ("within_factor", Json::Bool(c.within_factor)),
                ("oracle_failures", Json::UInt(c.oracle_failures as u64)),
                ("replay_identical", Json::Bool(c.replay_identical)),
                (
                    "midpoint_replay_identical",
                    Json::Bool(c.midpoint_replay_identical),
                ),
                ("switches", Json::UInt(c.switches as u64)),
                ("arms_explored", Json::UInt(c.arms_explored as u64)),
            ]));
        }
        for (scenario, points) in &self.curves {
            doc.curve(format!("regret:{scenario}"), points.clone());
        }
        doc.to_json()
    }

    /// A human-readable summary table (markdown).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "| scenario | chooser cost | best static | best cost | worst cost | \
             ratio | switches | replay |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|\n");
        for c in &self.cells {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.2}x | {} | {} |\n",
                c.scenario,
                c.chooser_cost,
                c.best_static,
                c.best_static_cost,
                c.worst_static_cost,
                c.cost_ratio,
                c.switches,
                if c.replay_identical { "identical" } else { "DIVERGED" },
            ));
        }
        s
    }
}

/// The gauntlet gate: every configured scenario measured; per cell, the
/// chooser within the configured factor of the best static config, zero
/// oracle divergences, and a bit-identical fixed-seed replay. Returns
/// every violation (empty = green); the CI `scrack_gauntlet --smoke
/// --check` step gates on this.
pub fn verify_gauntlet(report: &GauntletReport) -> Vec<String> {
    let mut failures = report.missing_cells();
    for c in &report.cells {
        if !c.within_factor {
            failures.push(format!(
                "{}: chooser at {:.2}x of best static '{}' (limit {:.2}x)",
                c.scenario, c.cost_ratio, c.best_static, report.config.factor
            ));
        }
        if c.oracle_failures > 0 {
            failures.push(format!(
                "{}: {} oracle-incorrect answers",
                c.scenario, c.oracle_failures
            ));
        }
        if !c.replay_identical {
            failures.push(format!("{}: fixed-seed replay diverged", c.scenario));
        }
        if !c.midpoint_replay_identical {
            failures.push(format!(
                "{}: a deterministic midpoint arm diverged between two runs",
                c.scenario
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> GauntletConfig {
        GauntletConfig {
            n: 4_000,
            queries: 384,
            // Debug-scale streams are too short to amortize exploration
            // rebuilds; the release-scale BENCH_8.json run carries the
            // real 2x gate.
            factor: 50.0,
            epoch_len: 32,
            seed: 11,
            scenarios: SMOKE_SCENARIOS.to_vec(),
        }
    }

    #[test]
    fn gauntlet_is_correct_and_deterministic_at_tiny_scale() {
        let r = GauntletReport::measure(&tiny_config());
        assert_eq!(r.cells.len(), SMOKE_SCENARIOS.len());
        assert!(r.missing_cells().is_empty());
        for c in &r.cells {
            assert_eq!(c.oracle_failures, 0, "{}: every answer exact", c.scenario);
            assert!(c.replay_identical, "{}: replay must be identical", c.scenario);
            assert!(
                c.midpoint_replay_identical,
                "{}: midpoint arms must replay bit-identically",
                c.scenario
            );
            assert!(c.best_static_cost > 0 && c.chooser_cost > 0, "{c:?}");
            assert!(
                c.best_static_cost <= c.worst_static_cost,
                "best/worst ordering: {c:?}"
            );
        }
        let failures = verify_gauntlet(&r);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn update_scenarios_carry_updates_and_read_only_ones_do_not() {
        let r = GauntletReport::measure(&tiny_config());
        assert_eq!(r.cell("random").unwrap().updates, 0);
        assert_eq!(r.cell("flip").unwrap().updates, 0);
        assert!(r.cell("burst").unwrap().updates > 0);
    }

    #[test]
    fn every_scenario_generates_the_right_query_count() {
        for scenario in SCENARIOS {
            let ops = scenario_stream(scenario, 2_000, 128, 3);
            let queries = ops.iter().filter(|o| matches!(o, MixedOp::Query(_))).count();
            assert_eq!(queries, 128, "{scenario}");
            assert_eq!(
                ops,
                scenario_stream(scenario, 2_000, 128, 3),
                "{scenario}: stream must be deterministic"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_rejected() {
        scenario_stream("nope", 1_000, 10, 1);
    }

    #[test]
    fn multiset_oracle_tracks_updates_exactly() {
        let mut m = Multiset::new(&[5, 1, 3]);
        assert_eq!(m.answer(QueryRange::new(0, 10)), (3, 9));
        m.insert(3); // duplicate instance
        assert_eq!(m.answer(QueryRange::new(3, 4)), (2, 6));
        m.delete(3); // removes one instance
        assert_eq!(m.answer(QueryRange::new(3, 4)), (1, 3));
        m.delete(99); // absent key evaporates
        assert_eq!(m.answer(QueryRange::new(0, 10)), (3, 9));
    }

    #[test]
    fn json_has_cells_and_regret_curves() {
        let r = GauntletReport::measure(&tiny_config());
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"scrack-trajectory/v1\""));
        assert!(json.contains("\"report\": \"gauntlet\""));
        for key in [
            "factor",
            "epoch_len",
            "scenarios",
            "arms",
            "cost_ratio",
            "within_factor",
            "replay_identical",
            "midpoint_replay_identical",
            "curves",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for scenario in SMOKE_SCENARIOS {
            assert!(json.contains(&format!("regret:{scenario}")), "{scenario}");
        }
    }
}
