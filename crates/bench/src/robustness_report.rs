//! The fault-injection gauntlet: open-loop latency vs offered load,
//! crossed with injected faults, as data.
//!
//! The throughput harness ([`crate::throughput_report`]) measures the
//! serving stack on its best day; this module measures its worst —
//! PR 7's resilient [`BatchScheduler`] path
//! (`execute_resilient`) under an **open-loop arrival process** with
//! deterministic faults injected mid-stream. Per `(offered load, fault)`
//! cell it reports:
//!
//! * `p50/p99/p999_ms` — per-query sojourn latency (completion −
//!   arrival) of answered queries, in milliseconds. Arrivals are
//!   open-loop: query `i` arrives at `i / offered_qps` seconds whether or
//!   not the server has caught up, so an overloaded server shows
//!   unbounded queueing delay exactly as a real open system would.
//!   Service times are measured on the wall clock; queueing is replayed
//!   through a virtual clock (`start = max(server_free, arrival)`), so
//!   the harness never sleeps to simulate idle arrival gaps.
//! * `shed_rate` plus the full `answered/shed/timed_out` accounting —
//!   the no-silent-drops contract, asserted per cell.
//! * fault counters (`panics_isolated`, `quarantined`, `rebuilt`) proving
//!   the planned fault actually fired and was recovered.
//! * `recovery_qps` and `recovery_ratio` — median per-batch service
//!   throughput over the **final third** of the stream, and its ratio to
//!   the unfaulted stream at the same offered load. Each sample runs the
//!   faulted and unfaulted streams back-to-back and the ratio keeps the
//!   best paired sample, so one-sided host noise and slow drift cancel.
//!   The gauntlet requires post-fault throughput to recover to within
//!   10% of the unfaulted baseline ([`verify_gauntlet`], the CI
//!   `--check` gate).
//!
//! Offered loads are expressed as multiples of the measured unfaulted
//! closed-loop capacity (`base_qps`), so the sweep lands under, near, and
//! over saturation on any host. Every answered query is checked against a
//! sorted-prefix-sum oracle; a single wrong aggregate fails the cell.
//! The baseline is committed as `BENCH_7.json`, a
//! [`scrack-trajectory/v1`](crate::trajectory) document (regenerated via
//! `cargo run --release -p scrack_bench --bin scrack_robustness --
//! --json BENCH_7.json`).

use crate::trajectory::{median, obj, percentile, Json, TrajectoryDoc};
use scrack_core::{CrackConfig, FaultPlan, IndexPolicy};
use scrack_parallel::{
    AdmissionPolicy, BatchScheduler, ParallelStrategy, QueryOutcome, ServingConfig,
};
use scrack_types::QueryRange;
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{WorkloadKind, WorkloadSpec};
use std::time::Instant;

/// The fault-injection cells the sweep covers.
pub const FAULTS: [&str; 4] = ["none", "panic", "poison", "overload"];

/// Default offered loads, as multiples of the measured unfaulted
/// closed-loop capacity: under, near, and past saturation.
pub const DEFAULT_LOAD_FACTORS: [f64; 3] = [0.5, 0.9, 1.3];

/// Scale and sweep settings for one gauntlet run.
#[derive(Clone, Debug)]
pub struct RobustnessConfig {
    /// Column size / key domain `N`.
    pub n: u64,
    /// Queries per cell run.
    pub queries: usize,
    /// Queries per scheduler batch.
    pub batch: usize,
    /// Scheduler shard count.
    pub shards: usize,
    /// Per-shard admission-queue capacity (queries per wave).
    pub queue_capacity: usize,
    /// Shed-retry budget per query.
    pub max_retries: u32,
    /// Offered loads as multiples of the measured base capacity.
    pub load_factors: Vec<f64>,
    /// Fault trigger count (cracks for `panic`, shard-0 selects for
    /// `poison`).
    pub fault_trigger: u32,
    /// Queue capacity the `overload` fault clamps shards to while it
    /// lasts (the first third of the stream's batches).
    pub overload_capacity: usize,
    /// Runs per cell; the recovery throughput is the **best** tail over
    /// the samples. Interference on a shared box is one-sided (it only
    /// slows a run down), so best-of-k estimates true capacity and keeps
    /// the recovery ratio stable enough to gate on.
    pub samples: usize,
    /// RNG seed for data and workloads.
    pub seed: u64,
    /// Cracker-index representation the shards run on.
    pub index: IndexPolicy,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            n: 200_000,
            queries: 4_096,
            batch: 128,
            shards: 4,
            queue_capacity: 64,
            max_retries: 2,
            load_factors: DEFAULT_LOAD_FACTORS.to_vec(),
            fault_trigger: 16,
            overload_capacity: 8,
            samples: 3,
            seed: 0x0B_0B,
            index: IndexPolicy::default(),
        }
    }
}

/// One `(offered load, fault)` measurement.
#[derive(Clone, Debug)]
pub struct RobustnessCell {
    /// Fault injected (one of [`FAULTS`]).
    pub fault: &'static str,
    /// Offered load as a multiple of `base_qps`.
    pub load_factor: f64,
    /// Absolute offered arrival rate, queries/sec.
    pub offered_qps: f64,
    /// Median sojourn latency of answered queries, ms.
    pub p50_ms: f64,
    /// 99th-percentile sojourn latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile sojourn latency, ms.
    pub p999_ms: f64,
    /// Queries answered (oracle-verified).
    pub answered: usize,
    /// Queries shed by admission control (accounted, never dropped).
    pub shed: usize,
    /// Queries that missed their deadline (0 here: the open-loop harness
    /// runs without deadline budgets).
    pub timed_out: usize,
    /// Shed queries as a fraction of the stream.
    pub shed_rate: f64,
    /// Worker panics caught and isolated during the run.
    pub panics_isolated: u64,
    /// Shard quarantines entered during the run.
    pub quarantined: u64,
    /// Shard index rebuilds completed during the run.
    pub rebuilt: u64,
    /// Answered queries whose aggregates diverged from the oracle
    /// (must be 0; recorded so the JSON is self-auditing).
    pub oracle_failures: usize,
    /// Median per-batch service throughput over the final third of the
    /// stream, queries/sec — best over the samples.
    pub recovery_qps: f64,
    /// Post-fault tail throughput relative to the unfaulted stream at
    /// the same offered load: the best *paired* sample ratio, where each
    /// sample runs the faulted and unfaulted streams back-to-back so
    /// slow host drift cancels. `None` for the unfaulted cells.
    pub recovery_ratio: Option<f64>,
}

/// The full gauntlet output.
#[derive(Clone, Debug)]
pub struct RobustnessReport {
    /// The configuration the cells were measured under.
    pub config: RobustnessConfig,
    /// CPUs available to the measuring process.
    pub host_cpus: usize,
    /// Measured unfaulted closed-loop capacity, queries/sec — the unit
    /// the offered loads are multiples of.
    pub base_qps: f64,
    /// All cells, fault-major then load factor.
    pub cells: Vec<RobustnessCell>,
}

/// Sorted keys + prefix key sums: O(log n) exact range aggregates.
struct Oracle {
    keys: Vec<u64>,
    prefix: Vec<u64>,
}

impl Oracle {
    fn new(data: &[u64]) -> Self {
        let mut keys = data.to_vec();
        keys.sort_unstable();
        let mut prefix = Vec::with_capacity(keys.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &k in &keys {
            acc = acc.wrapping_add(k);
            prefix.push(acc);
        }
        Self { keys, prefix }
    }

    fn answer(&self, q: QueryRange) -> (usize, u64) {
        let lo = self.keys.partition_point(|k| *k < q.low);
        let hi = self.keys.partition_point(|k| *k < q.high);
        (hi - lo, self.prefix[hi].wrapping_sub(self.prefix[lo]))
    }
}

/// The fault plan for a named cell. Panic and poison target shard 0 and
/// fire once the trigger count of cracks/selects accrues (early in the
/// stream); overload clamps every shard's queue for the first third of
/// the batches, then clears.
fn fault_plan(fault: &str, cfg: &RobustnessConfig) -> FaultPlan {
    let overload_batches = (cfg.queries.div_ceil(cfg.batch) / 3).max(1) as u32;
    match fault {
        "none" => FaultPlan::disabled(),
        "panic" => FaultPlan::panic_in_kernel(cfg.fault_trigger).on_target(0),
        "poison" => FaultPlan::poison_shard(cfg.fault_trigger).on_target(0),
        "overload" => {
            FaultPlan::queue_overload(cfg.overload_capacity).with_repeat(overload_batches)
        }
        other => panic!("unknown fault {other}"),
    }
}

/// Raw per-run numbers before they are folded into a cell.
struct RunOutcome {
    answered: usize,
    shed: usize,
    timed_out: usize,
    oracle_failures: usize,
    /// Sojourn latencies (completion − arrival) of answered queries, ms.
    latencies_ms: Vec<f64>,
    /// Wall service seconds and query count per batch, in stream order.
    batches: Vec<(f64, usize)>,
    stats: scrack_parallel::ResilienceStats,
}

/// One open-loop run: the full query stream through a fresh resilient
/// scheduler at `offered_qps`, with `plan` armed.
fn run_once(
    cfg: &RobustnessConfig,
    data: &[u64],
    queries: &[QueryRange],
    oracle: &Oracle,
    plan: FaultPlan,
    offered_qps: f64,
) -> RunOutcome {
    let crack_config = CrackConfig::default().with_index(cfg.index).with_fault(plan);
    let mut sched = BatchScheduler::new(
        data.to_vec(),
        cfg.shards,
        ParallelStrategy::Stochastic,
        crack_config,
        cfg.seed,
    );
    let serving = ServingConfig::bounded(cfg.queue_capacity, AdmissionPolicy::Shed)
        .with_max_retries(cfg.max_retries);

    let mut out = RunOutcome {
        answered: 0,
        shed: 0,
        timed_out: 0,
        oracle_failures: 0,
        latencies_ms: Vec::with_capacity(queries.len()),
        batches: Vec::with_capacity(queries.len().div_ceil(cfg.batch)),
        stats: Default::default(),
    };
    // Virtual queueing clock, seconds since stream start. A batch is
    // dispatched when its last query has arrived and the server is free.
    let mut server_free = 0.0f64;
    let mut qi0 = 0usize;
    for chunk in queries.chunks(cfg.batch) {
        let last_arrival = (qi0 + chunk.len()) as f64 / offered_qps;
        let start = server_free.max(last_arrival);
        let t0 = Instant::now();
        let report = sched.execute_resilient(chunk, &serving);
        let service = t0.elapsed().as_secs_f64();
        let completion = start + service;
        server_free = completion;
        out.batches.push((service, chunk.len()));
        for (j, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                QueryOutcome::Answered { count, key_sum, .. } => {
                    out.answered += 1;
                    if (*count, *key_sum) != oracle.answer(chunk[j]) {
                        out.oracle_failures += 1;
                    }
                    let arrival = (qi0 + j + 1) as f64 / offered_qps;
                    out.latencies_ms.push((completion - arrival).max(0.0) * 1_000.0);
                }
                QueryOutcome::Shed { .. } => out.shed += 1,
                QueryOutcome::TimedOut => out.timed_out += 1,
            }
        }
        qi0 += chunk.len();
    }
    out.stats = sched.resilience_stats();
    out
}

/// Median per-batch service throughput (queries/sec) over the final
/// third of the stream — the post-fault steady state.
fn final_third_qps(batches: &[(f64, usize)]) -> f64 {
    let tail = &batches[batches.len() - (batches.len() / 3).max(1)..];
    median(
        tail.iter()
            .map(|&(secs, count)| count as f64 / secs.max(1e-9))
            .collect(),
    )
}

impl RobustnessReport {
    /// Runs the gauntlet: calibrate unfaulted capacity, then sweep
    /// `fault × load factor`, each cell [`RobustnessConfig::samples`]
    /// full open-loop streams.
    pub fn measure(config: &RobustnessConfig) -> RobustnessReport {
        assert!(config.queries > 0 && config.batch > 0, "need a stream");
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.queue_capacity >= 1, "capacity must admit something");
        assert!(
            !config.load_factors.is_empty()
                && config.load_factors.iter().all(|f| *f > 0.0 && f.is_finite()),
            "need positive finite load factors"
        );
        assert!(config.samples >= 1, "need at least one sample per cell");
        let data = unique_permutation::<u64>(config.n, config.seed);
        let queries =
            WorkloadSpec::new(WorkloadKind::Random, config.n, config.queries, config.seed)
                .with_selectivity((config.n / 1_000).max(10))
                .generate();
        let oracle = Oracle::new(&data);

        // Calibration: unfaulted, arrivals effectively instantaneous, so
        // the run is closed-loop and total service time measures capacity.
        // Best of `samples` runs — interference only slows a run down.
        let base_qps = (0..config.samples)
            .map(|_| {
                let calib = run_once(
                    config,
                    &data,
                    &queries,
                    &oracle,
                    FaultPlan::disabled(),
                    f64::INFINITY,
                );
                let total: f64 = calib.batches.iter().map(|(s, _)| s).sum();
                queries.len() as f64 / total.max(1e-9)
            })
            .fold(0.0f64, f64::max);

        // Per (load, sample), run the unfaulted stream and every fault
        // stream back-to-back, and form the recovery ratio within the
        // sample — pairing in time cancels the slow drift (thermal,
        // scheduler steal) that dominates cross-run comparisons on a
        // shared box. Everything but timing is deterministic across
        // samples (same seed, data, stream, fault plan): outcome counts
        // come from the last run, latencies pool over all runs, the
        // recovery throughput keeps the best tail, and the recovery
        // ratio keeps the best *paired* sample.
        let mut cells = Vec::new();
        for &load_factor in &config.load_factors {
            let offered_qps = base_qps * load_factor;
            let mut latencies_ms: Vec<Vec<f64>> = vec![Vec::new(); FAULTS.len()];
            let mut tails: Vec<Vec<f64>> = vec![Vec::new(); FAULTS.len()];
            let mut runs: Vec<Option<RunOutcome>> = (0..FAULTS.len()).map(|_| None).collect();
            for _ in 0..config.samples {
                for (fi, fault) in FAULTS.iter().enumerate() {
                    let plan = fault_plan(fault, config);
                    let r = run_once(config, &data, &queries, &oracle, plan, offered_qps);
                    latencies_ms[fi].extend_from_slice(&r.latencies_ms);
                    tails[fi].push(final_third_qps(&r.batches));
                    runs[fi] = Some(r);
                }
            }
            for (fi, fault) in FAULTS.iter().enumerate() {
                let run = runs[fi].take().expect("samples >= 1");
                let lat = &mut latencies_ms[fi];
                let (p50, p99, p999) = if lat.is_empty() {
                    (0.0, 0.0, 0.0)
                } else {
                    (
                        percentile(lat, 50.0),
                        percentile(lat, 99.0),
                        percentile(lat, 99.9),
                    )
                };
                let recovery_ratio = (*fault != "none").then(|| {
                    tails[fi]
                        .iter()
                        .zip(&tails[0])
                        .map(|(f, n)| f / n.max(1e-9))
                        .fold(0.0f64, f64::max)
                });
                cells.push(RobustnessCell {
                    fault,
                    load_factor,
                    offered_qps,
                    p50_ms: p50,
                    p99_ms: p99,
                    p999_ms: p999,
                    answered: run.answered,
                    shed: run.shed,
                    timed_out: run.timed_out,
                    shed_rate: run.shed as f64 / queries.len() as f64,
                    panics_isolated: run.stats.panics_isolated,
                    quarantined: run.stats.quarantines,
                    rebuilt: run.stats.rebuilds,
                    oracle_failures: run.oracle_failures,
                    recovery_qps: tails[fi].iter().copied().fold(0.0f64, f64::max),
                    recovery_ratio,
                });
            }
        }
        // Fault-major cell order, matching FAULTS, for stable output.
        cells.sort_by_key(|c| FAULTS.iter().position(|f| *f == c.fault));
        RobustnessReport {
            config: config.clone(),
            host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            base_qps,
            cells,
        }
    }

    /// The cell for (fault, load factor), if measured.
    pub fn cell(&self, fault: &str, load_factor: f64) -> Option<&RobustnessCell> {
        self.cells
            .iter()
            .find(|c| c.fault == fault && c.load_factor == load_factor)
    }

    /// Every fault/load combination missing from the report (empty =
    /// full coverage).
    pub fn missing_cells(&self) -> Vec<String> {
        let mut missing = Vec::new();
        for fault in FAULTS {
            for &load in &self.config.load_factors {
                if self.cell(fault, load).is_none() {
                    missing.push(format!("{fault}/x{load}"));
                }
            }
        }
        missing
    }

    /// Serializes the report as a `scrack-trajectory/v1` document (see
    /// [`crate::trajectory`]; hand-rolled, as the workspace builds
    /// offline without serde).
    pub fn to_json(&self) -> String {
        let mut doc = TrajectoryDoc::new("robustness")
            .param("n", Json::UInt(self.config.n))
            .param("queries", Json::UInt(self.config.queries as u64))
            .param("batch_size", Json::UInt(self.config.batch as u64))
            .param("shards", Json::UInt(self.config.shards as u64))
            .param("queue_capacity", Json::UInt(self.config.queue_capacity as u64))
            .param("max_retries", Json::UInt(self.config.max_retries as u64))
            .param("fault_trigger", Json::UInt(self.config.fault_trigger as u64))
            .param(
                "overload_capacity",
                Json::UInt(self.config.overload_capacity as u64),
            )
            .param("samples", Json::UInt(self.config.samples as u64))
            .param("index_policy", Json::str(self.config.index.to_string()))
            .param("host_cpus", Json::UInt(self.host_cpus as u64))
            .param("base_qps", Json::fixed(self.base_qps, 1))
            .axis("faults", FAULTS.iter().map(|f| Json::str(*f)).collect())
            .axis(
                "load_factors",
                self.config.load_factors.iter().map(|f| Json::fixed(*f, 2)).collect(),
            );
        for c in &self.cells {
            doc.cell(obj(vec![
                ("fault", Json::str(c.fault)),
                ("load_factor", Json::fixed(c.load_factor, 2)),
                ("offered_qps", Json::fixed(c.offered_qps, 1)),
                ("p50_ms", Json::fixed(c.p50_ms, 3)),
                ("p99_ms", Json::fixed(c.p99_ms, 3)),
                ("p999_ms", Json::fixed(c.p999_ms, 3)),
                ("answered", Json::UInt(c.answered as u64)),
                ("shed", Json::UInt(c.shed as u64)),
                ("timed_out", Json::UInt(c.timed_out as u64)),
                ("shed_rate", Json::fixed(c.shed_rate, 4)),
                ("panics_isolated", Json::UInt(c.panics_isolated)),
                ("quarantined", Json::UInt(c.quarantined)),
                ("rebuilt", Json::UInt(c.rebuilt)),
                ("oracle_failures", Json::UInt(c.oracle_failures as u64)),
                ("recovery_qps", Json::fixed(c.recovery_qps, 1)),
                (
                    "recovery_ratio",
                    Json::opt(c.recovery_ratio.map(|r| Json::fixed(r, 3))),
                ),
            ]));
        }
        doc.to_json()
    }

    /// A human-readable summary table (markdown).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "| fault | load | p50 (ms) | p99 (ms) | p99.9 (ms) | shed | \
             panics | quar. | recovery |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for c in &self.cells {
            let ratio = c
                .recovery_ratio
                .map_or_else(|| "—".to_string(), |r| format!("{:.0}%", r * 100.0));
            s.push_str(&format!(
                "| {} | {:.1}x | {:.2} | {:.2} | {:.2} | {:.1}% | {} | {} | {} |\n",
                c.fault,
                c.load_factor,
                c.p50_ms,
                c.p99_ms,
                c.p999_ms,
                c.shed_rate * 100.0,
                c.panics_isolated,
                c.quarantined,
                ratio
            ));
        }
        s
    }
}

/// The gauntlet gate: every cell present; per cell, exact accounting
/// (`answered + shed + timed_out == queries`) and zero oracle failures;
/// each fault's signature counters present (a panic was isolated, a
/// shard was quarantined and rebuilt, overload shed work); and post-fault
/// throughput recovered to at least `min_recovery` of the unfaulted
/// baseline at the same offered load. Returns every violation found
/// (empty = green); the CI `scrack_robustness --smoke --check` step
/// gates on this with `min_recovery = 0.9` — the acceptance bar of
/// "recovers to within 10%".
pub fn verify_gauntlet(report: &RobustnessReport, min_recovery: f64) -> Vec<String> {
    let mut failures = report.missing_cells();
    let total = report.config.queries;
    for c in &report.cells {
        let tag = format!("{}/x{}", c.fault, c.load_factor);
        if c.answered + c.shed + c.timed_out != total {
            failures.push(format!(
                "{tag}: accounting broken ({} + {} + {} != {total})",
                c.answered, c.shed, c.timed_out
            ));
        }
        if c.oracle_failures > 0 {
            failures.push(format!("{tag}: {} oracle-incorrect answers", c.oracle_failures));
        }
        match c.fault {
            "panic" => {
                if c.panics_isolated == 0 {
                    failures.push(format!("{tag}: planned panic never fired"));
                }
                if c.quarantined == 0 || c.rebuilt == 0 {
                    failures.push(format!("{tag}: panic recovery incomplete"));
                }
            }
            "poison" if c.quarantined == 0 || c.rebuilt == 0 => {
                failures.push(format!("{tag}: planned poison never quarantined"));
            }
            "overload" if c.shed == 0 => {
                failures.push(format!("{tag}: planned overload never shed"));
            }
            _ => {}
        }
        if let Some(ratio) = c.recovery_ratio {
            if ratio < min_recovery {
                failures.push(format!(
                    "{tag}: post-fault throughput at {:.0}% of baseline (< {:.0}%)",
                    ratio * 100.0,
                    min_recovery * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RobustnessConfig {
        RobustnessConfig {
            n: 6_000,
            queries: 256,
            batch: 32,
            shards: 4,
            queue_capacity: 16,
            max_retries: 2,
            load_factors: vec![0.5, 1.3],
            fault_trigger: 4,
            overload_capacity: 2,
            samples: 1,
            seed: 7,
            index: IndexPolicy::default(),
        }
    }

    #[test]
    fn gauntlet_covers_every_cell_with_exact_accounting() {
        let r = RobustnessReport::measure(&tiny_config());
        assert_eq!(r.cells.len(), FAULTS.len() * 2);
        assert!(r.missing_cells().is_empty());
        for c in &r.cells {
            assert_eq!(
                c.answered + c.shed + c.timed_out,
                256,
                "{}/{}: every query accounted",
                c.fault,
                c.load_factor
            );
            assert_eq!(c.oracle_failures, 0, "{}/{}", c.fault, c.load_factor);
        }
        // Tiny debug-build runs are too noisy for the 10% recovery bar;
        // correctness and fault-signature checks must still be clean.
        let failures: Vec<String> = verify_gauntlet(&r, 0.0);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn faults_leave_their_signatures() {
        let r = RobustnessReport::measure(&tiny_config());
        let panic_cell = r.cell("panic", 0.5).expect("panic cell");
        assert!(panic_cell.panics_isolated >= 1, "{panic_cell:?}");
        assert!(panic_cell.quarantined >= 1 && panic_cell.rebuilt >= 1);
        let poison_cell = r.cell("poison", 0.5).expect("poison cell");
        assert!(poison_cell.quarantined >= 1 && poison_cell.rebuilt >= 1);
        let overload_cell = r.cell("overload", 0.5).expect("overload cell");
        assert!(overload_cell.shed > 0, "{overload_cell:?}");
        let clean = r.cell("none", 0.5).expect("none cell");
        assert_eq!(clean.shed, 0, "unfaulted under-load run sheds nothing");
        assert_eq!(clean.panics_isolated + clean.quarantined, 0);
    }

    #[test]
    fn recovery_tail_helper_is_exact() {
        // Final third of 6 batches = last 2; each serves 10 queries in
        // 0.1s and 0.2s → 100 and 50 q/s, median 75.
        let batches: Vec<(f64, usize)> = vec![
            (1.0, 10),
            (1.0, 10),
            (1.0, 10),
            (1.0, 10),
            (0.1, 10),
            (0.2, 10),
        ];
        assert_eq!(final_third_qps(&batches), 75.0);
    }

    #[test]
    fn oracle_matches_brute_force() {
        let data = unique_permutation::<u64>(500, 11);
        let oracle = Oracle::new(&data);
        for q in [
            QueryRange { low: 0, high: 500 },
            QueryRange { low: 100, high: 101 },
            QueryRange { low: 250, high: 250 },
            QueryRange { low: 37, high: 411 },
        ] {
            let count = data.iter().filter(|k| q.contains(**k)).count();
            let sum = data
                .iter()
                .filter(|k| q.contains(**k))
                .fold(0u64, |a, k| a.wrapping_add(*k));
            assert_eq!(oracle.answer(q), (count, sum), "{q:?}");
        }
    }

    #[test]
    fn json_is_structurally_sound_and_complete() {
        let r = RobustnessReport::measure(&tiny_config());
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"scrack-trajectory/v1\""));
        assert!(json.contains("\"report\": \"robustness\""));
        for key in [
            "base_qps",
            "faults",
            "load_factors",
            "cells",
            "p999_ms",
            "shed_rate",
            "panics_isolated",
            "recovery_ratio",
            "oracle_failures",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for fault in FAULTS {
            assert!(json.contains(fault), "missing {fault}");
        }
        assert!(!json.contains(",\n  ]"), "trailing comma before ]");
        assert!(!json.contains(",\n}"), "trailing comma before }}");
    }
}
