//! The concurrency throughput harness: queries/sec vs threads, as data.
//!
//! The kernel harness ([`crate::kernels_report`]) tracks single-threaded
//! ns/element; this module tracks the ROADMAP's other axis — sustained
//! **query throughput** under concurrent execution. It sweeps
//! `threads × strategy × workload` over the `scrack_parallel` wrappers
//! and emits a stable [`scrack-trajectory/v1`](crate::trajectory)
//! document (`BENCH_6.json` in the repo root, superseding PR 3's
//! `BENCH_3.json`; regenerated via `cargo run --release -p scrack_bench
//! --bin scrack_throughput -- --json BENCH_6.json`).
//!
//! Per cell the harness reports:
//!
//! * `qps_median` — median queries/sec over the sample runs (medians for
//!   the same reason as the kernel harness: shared-box tail noise);
//! * `p99_latency_us` — the 99th-percentile latency of one *unit of
//!   work* in microseconds. For the `batch` and `chunked` strategies the
//!   unit is one batch (one `execute` call); for `piecelock` and
//!   `shared` it is one query;
//! * `scaling_efficiency` — `qps(T) / (T * qps(1))` against the same
//!   strategy/workload's single-thread cell (1.0 = perfect scaling;
//!   absent when the sweep has no `T = 1` baseline). Recorded together
//!   with `host_cpus`: efficiency on a 1-core host measures overhead,
//!   not speedup.
//!
//! All strategies run MDD1R-style stochastic cracking (the paper's
//! robust engine) under the session's
//! [`KernelPolicy`](scrack_core::KernelPolicy); answers are the
//! same `(count, key_sum)` aggregates the parallel crate's tests pin
//! against the scan oracle. [`verify_chunked_identity`] additionally
//! sweeps the chunked strategy over 1/2/4 threads asserting the
//! threaded and serial replays stay bit-identical (answers *and*
//! `Stats`) — the CI `--check` gate.

use crate::trajectory::{median, obj, percentile, Json, TrajectoryDoc};
use scrack_core::{CrackConfig, IndexPolicy};
use scrack_parallel::{
    BatchScheduler, ChunkedCracker, ParallelStrategy, PieceLockedCracker, SharedCracker,
};
use scrack_types::QueryRange;
use scrack_workloads::data::unique_permutation;
use scrack_workloads::{WorkloadKind, WorkloadSpec};
use std::sync::Arc;
use std::time::Instant;

/// The concurrent execution strategies the sweep covers.
pub const STRATEGIES: [&str; 4] = ["batch", "chunked", "piecelock", "shared"];

/// The workload patterns the sweep covers (Fig. 7 names).
pub const WORKLOADS: [&str; 3] = ["random", "sequential", "skew"];

/// Default thread counts.
pub const DEFAULT_THREADS: [usize; 3] = [1, 2, 4];

/// Scale and sweep settings for one harness run.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Column size / key domain `N`.
    pub n: u64,
    /// Queries per (strategy, workload, threads, sample) run.
    pub queries: usize,
    /// Batch size for the `batch` strategy.
    pub batch: usize,
    /// Runs per cell; the reported qps is their median.
    pub samples: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// RNG seed for data and workloads.
    pub seed: u64,
    /// Cracker-index representation the wrappers' columns run on.
    pub index: IndexPolicy,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            n: 1_000_000,
            queries: 5_000,
            batch: 256,
            samples: 3,
            threads: DEFAULT_THREADS.to_vec(),
            seed: 0xBE7C,
            index: IndexPolicy::default(),
        }
    }
}

/// One `(threads, strategy, workload)` measurement.
#[derive(Clone, Debug)]
pub struct ThroughputCell {
    /// Worker/shard thread count.
    pub threads: usize,
    /// Execution strategy (one of [`STRATEGIES`]).
    pub strategy: &'static str,
    /// Workload pattern (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// Median queries per second across samples.
    pub qps_median: f64,
    /// Median (across samples) of the per-run p99 unit-of-work latency,
    /// in microseconds (see module docs for the unit per strategy).
    pub p99_latency_us: f64,
    /// `qps(T) / (T * qps(1))` against this strategy/workload's
    /// single-thread cell; `None` when the sweep has no `T = 1` baseline.
    pub scaling_efficiency: Option<f64>,
}

/// The full harness output: every threads/strategy/workload cell.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// The configuration the cells were measured under.
    pub config: ThroughputConfig,
    /// CPUs available to the measuring process (context for the sweep).
    pub host_cpus: usize,
    /// All cells, workload-major then strategy then threads.
    pub cells: Vec<ThroughputCell>,
}

fn workload_kind(name: &str) -> WorkloadKind {
    match name {
        "random" => WorkloadKind::Random,
        "sequential" => WorkloadKind::Sequential,
        "skew" => WorkloadKind::Skew,
        other => panic!("unknown workload {other}"),
    }
}

/// Query volume after which the harness's chunked columns
/// partition-merge: a quarter of the stream, so every measured run
/// exercises both the chunk phase and the merged (sharded) phase.
fn chunked_merge_after(queries: usize) -> usize {
    (queries / 4).max(1)
}

/// One timed run; returns `(wall_seconds, unit_latencies_ns, checksum)`.
fn run_once(
    strategy: &str,
    threads: usize,
    data: &[u64],
    queries: &[QueryRange],
    batch: usize,
    seed: u64,
    index: IndexPolicy,
) -> (f64, Vec<f64>, u64) {
    let config = CrackConfig::default().with_index(index);
    match strategy {
        "batch" => {
            let mut sched = BatchScheduler::new(
                data.to_vec(),
                threads,
                ParallelStrategy::Stochastic,
                config,
                seed,
            );
            let mut latencies = Vec::with_capacity(queries.len().div_ceil(batch));
            let mut checksum = 0u64;
            let t0 = Instant::now();
            for chunk in queries.chunks(batch) {
                let b0 = Instant::now();
                let results = sched.execute(chunk);
                latencies.push(b0.elapsed().as_nanos() as f64);
                for (c, s) in results {
                    checksum = checksum.wrapping_add(c as u64).wrapping_add(s);
                }
            }
            (t0.elapsed().as_secs_f64(), latencies, checksum)
        }
        "chunked" => {
            let mut cc = ChunkedCracker::new(
                data.to_vec(),
                threads,
                ParallelStrategy::Stochastic,
                config,
                seed,
            )
            .with_merge_after(chunked_merge_after(queries.len()));
            let mut latencies = Vec::with_capacity(queries.len().div_ceil(batch));
            let mut checksum = 0u64;
            let t0 = Instant::now();
            for chunk in queries.chunks(batch) {
                let b0 = Instant::now();
                let results = cc.execute(chunk);
                latencies.push(b0.elapsed().as_nanos() as f64);
                for (c, s) in results {
                    checksum = checksum.wrapping_add(c as u64).wrapping_add(s);
                }
            }
            (t0.elapsed().as_secs_f64(), latencies, checksum)
        }
        "piecelock" => {
            let plc = Arc::new(PieceLockedCracker::new(
                data.to_vec(),
                ParallelStrategy::Stochastic,
                config,
                seed,
            ));
            run_query_threads(threads, queries, move |q| plc.select_aggregate(q))
        }
        "shared" => {
            let sc = Arc::new(SharedCracker::new(
                data.to_vec(),
                ParallelStrategy::Stochastic,
                config,
                seed,
            ));
            run_query_threads(threads, queries, move |q| sc.select_aggregate(q))
        }
        other => panic!("unknown strategy {other}"),
    }
}

/// Drives `select` from `threads` workers over a strided split of
/// `queries`, timing each query individually.
fn run_query_threads(
    threads: usize,
    queries: &[QueryRange],
    select: impl Fn(QueryRange) -> (usize, u64) + Send + Sync,
) -> (f64, Vec<f64>, u64) {
    let select = &select;
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut checksum = 0u64;
                    for q in queries.iter().skip(t).step_by(threads) {
                        let q0 = Instant::now();
                        let (c, s) = select(*q);
                        latencies.push(q0.elapsed().as_nanos() as f64);
                        checksum = checksum.wrapping_add(c as u64).wrapping_add(s);
                    }
                    (latencies, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut checksum = 0u64;
    for (lat, sum) in per_thread {
        latencies.extend(lat);
        checksum = checksum.wrapping_add(sum);
    }
    (wall, latencies, checksum)
}

impl ThroughputReport {
    /// Runs the harness: every workload × strategy × thread count,
    /// `config.samples` timed runs each (plus checksum cross-checks:
    /// every strategy must agree on the total result checksum per
    /// workload).
    pub fn measure(config: &ThroughputConfig) -> ThroughputReport {
        assert!(config.samples > 0, "need at least one sample");
        assert!(config.batch > 0, "need a positive batch size");
        assert!(config.queries > 0, "need at least one query");
        assert!(
            !config.threads.is_empty() && config.threads.iter().all(|t| *t > 0),
            "need at least one nonzero thread count"
        );
        let data = unique_permutation::<u64>(config.n, config.seed);
        let mut cells = Vec::new();
        for workload in WORKLOADS {
            let queries =
                WorkloadSpec::new(workload_kind(workload), config.n, config.queries, config.seed)
                    .with_selectivity((config.n / 1_000).max(10))
                    .generate();
            let mut checksum_seen: Option<u64> = None;
            for strategy in STRATEGIES {
                for &threads in &config.threads {
                    let mut qps_runs = Vec::with_capacity(config.samples);
                    let mut p99_runs = Vec::with_capacity(config.samples);
                    for sample in 0..config.samples {
                        let (wall, mut latencies, checksum) = run_once(
                            strategy,
                            threads,
                            &data,
                            &queries,
                            config.batch,
                            config.seed.wrapping_add(sample as u64),
                            config.index,
                        );
                        // Stochastic pivots differ per strategy/seed, but
                        // the *answers* may not: any checksum divergence
                        // is a correctness bug, caught here at bench time.
                        let seen = *checksum_seen.get_or_insert(checksum);
                        assert_eq!(
                            seen, checksum,
                            "{workload}/{strategy}/t{threads}: result checksum diverged"
                        );
                        qps_runs.push(queries.len() as f64 / wall.max(1e-12));
                        p99_runs.push(percentile(&mut latencies, 99.0) / 1_000.0);
                    }
                    cells.push(ThroughputCell {
                        threads,
                        strategy,
                        workload,
                        qps_median: median(qps_runs),
                        p99_latency_us: median(p99_runs),
                        scaling_efficiency: None,
                    });
                }
            }
        }
        // Scaling efficiency against each strategy/workload's T = 1 cell.
        for i in 0..cells.len() {
            let base = cells
                .iter()
                .find(|b| {
                    b.threads == 1
                        && b.strategy == cells[i].strategy
                        && b.workload == cells[i].workload
                })
                .map(|b| b.qps_median);
            cells[i].scaling_efficiency = base.map(|base_qps| {
                cells[i].qps_median / (cells[i].threads as f64 * base_qps.max(1e-12))
            });
        }
        ThroughputReport {
            config: config.clone(),
            host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            cells,
        }
    }

    /// The cell for (threads, strategy, workload), if measured.
    pub fn cell(&self, threads: usize, strategy: &str, workload: &str) -> Option<&ThroughputCell> {
        self.cells
            .iter()
            .find(|c| c.threads == threads && c.strategy == strategy && c.workload == workload)
    }

    /// Every threads/strategy/workload combination missing from the
    /// report (empty = full coverage). The CI throughput-smoke step
    /// gates on this.
    pub fn missing_cells(&self) -> Vec<String> {
        let mut missing = Vec::new();
        for workload in WORKLOADS {
            for strategy in STRATEGIES {
                for &threads in &self.config.threads {
                    if self.cell(threads, strategy, workload).is_none() {
                        missing.push(format!("{workload}/{strategy}/t={threads}"));
                    }
                }
            }
        }
        missing
    }

    /// Serializes the report as a `scrack-trajectory/v1` document (see
    /// [`crate::trajectory`]; hand-rolled, as the workspace builds
    /// offline without serde).
    pub fn to_json(&self) -> String {
        let mut doc = TrajectoryDoc::new("throughput")
            .param("n", Json::UInt(self.config.n))
            .param("queries", Json::UInt(self.config.queries as u64))
            .param("batch_size", Json::UInt(self.config.batch as u64))
            .param("samples", Json::UInt(self.config.samples as u64))
            .param("index_policy", Json::str(self.config.index.to_string()))
            .param("host_cpus", Json::UInt(self.host_cpus as u64))
            .axis(
                "threads",
                self.config.threads.iter().map(|t| Json::UInt(*t as u64)).collect(),
            )
            .axis("strategies", STRATEGIES.iter().map(|s| Json::str(*s)).collect())
            .axis("workloads", WORKLOADS.iter().map(|w| Json::str(*w)).collect());
        for c in &self.cells {
            doc.cell(obj(vec![
                ("workload", Json::str(c.workload)),
                ("strategy", Json::str(c.strategy)),
                ("threads", Json::UInt(c.threads as u64)),
                ("qps_median", Json::fixed(c.qps_median, 1)),
                ("p99_latency_us", Json::fixed(c.p99_latency_us, 2)),
                (
                    "scaling_efficiency",
                    Json::opt(c.scaling_efficiency.map(|e| Json::fixed(e, 3))),
                ),
            ]));
        }
        doc.to_json()
    }

    /// A human-readable summary table (markdown).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "| workload | strategy | threads | queries/sec | p99 latency (µs) | scaling eff. |\n",
        );
        s.push_str("|---|---|---|---|---|---|\n");
        for c in &self.cells {
            let efficiency = c
                .scaling_efficiency
                .map_or_else(|| "—".to_string(), |e| format!("{e:.2}"));
            s.push_str(&format!(
                "| {} | {} | {} | {:.0} | {:.1} | {} |\n",
                c.workload, c.strategy, c.threads, c.qps_median, c.p99_latency_us, efficiency
            ));
        }
        s
    }
}

/// Thread counts [`verify_chunked_identity`] sweeps.
pub const IDENTITY_SWEEP: [usize; 3] = [1, 2, 4];

/// The determinism gate for the chunked strategy: for each thread count
/// in [`IDENTITY_SWEEP`], replays the random workload through a
/// work-stealing [`ChunkedCracker`] and a serial twin (same chunk count,
/// same seed, same merge point) batch by batch, asserting answers and
/// [`Stats`](scrack_types::Stats) stay **bit-identical** across the
/// partition-merge. Returns every divergence found (empty = pass); the
/// CI `scrack_throughput --smoke --check` step gates on this.
pub fn verify_chunked_identity(config: &ThroughputConfig) -> Vec<String> {
    let data = unique_permutation::<u64>(config.n, config.seed);
    let queries = WorkloadSpec::new(WorkloadKind::Random, config.n, config.queries, config.seed)
        .with_selectivity((config.n / 1_000).max(10))
        .generate();
    let crack_config = CrackConfig::default().with_index(config.index);
    let mut failures = Vec::new();
    for threads in IDENTITY_SWEEP {
        let mut par = ChunkedCracker::new(
            data.clone(),
            threads,
            ParallelStrategy::Stochastic,
            crack_config,
            config.seed,
        )
        .with_merge_after(chunked_merge_after(queries.len()));
        let mut ser = ChunkedCracker::new(
            data.clone(),
            threads,
            ParallelStrategy::Stochastic,
            crack_config,
            config.seed,
        )
        .with_merge_after(chunked_merge_after(queries.len()));
        for (bi, chunk) in queries.chunks(config.batch).enumerate() {
            if par.execute(chunk) != ser.execute_serial(chunk) {
                failures.push(format!("chunked t={threads} batch {bi}: answers diverged"));
            }
        }
        if par.stats() != ser.stats() {
            failures.push(format!("chunked t={threads}: Stats diverged"));
        }
        if par.has_merged() != ser.has_merged() {
            failures.push(format!("chunked t={threads}: merge points diverged"));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ThroughputConfig {
        ThroughputConfig {
            n: 4_000,
            queries: 120,
            batch: 32,
            samples: 1,
            threads: vec![1, 2],
            seed: 7,
            index: IndexPolicy::default(),
        }
    }

    #[test]
    fn covers_every_cell_with_finite_numbers() {
        let r = ThroughputReport::measure(&tiny_config());
        assert_eq!(r.cells.len(), WORKLOADS.len() * STRATEGIES.len() * 2);
        assert!(r.missing_cells().is_empty(), "{:?}", r.missing_cells());
        for c in &r.cells {
            assert!(c.qps_median.is_finite() && c.qps_median > 0.0, "{c:?}");
            assert!(c.p99_latency_us.is_finite() && c.p99_latency_us >= 0.0, "{c:?}");
        }
    }

    #[test]
    fn json_is_structurally_sound_and_complete() {
        let r = ThroughputReport::measure(&tiny_config());
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"scrack-trajectory/v1\""));
        assert!(json.contains("\"report\": \"throughput\""));
        for key in [
            "n",
            "queries",
            "batch_size",
            "samples",
            "host_cpus",
            "threads",
            "strategies",
            "workloads",
            "cells",
            "scaling_efficiency",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for name in STRATEGIES.iter().chain(WORKLOADS.iter()) {
            assert!(json.contains(name), "missing {name}");
        }
        assert!(!json.contains(",\n  ]"), "trailing comma before ]");
        assert!(!json.contains(",\n}"), "trailing comma before }}");
    }

    #[test]
    fn scaling_efficiency_is_one_at_a_single_thread() {
        let r = ThroughputReport::measure(&tiny_config());
        for c in &r.cells {
            let eff = c.scaling_efficiency.expect("T=1 baseline in the sweep");
            assert!(eff.is_finite() && eff > 0.0, "{c:?}");
            if c.threads == 1 {
                assert!((eff - 1.0).abs() < 1e-9, "T=1 must be its own baseline: {c:?}");
            }
        }
    }

    #[test]
    fn chunked_identity_gate_passes() {
        let cfg = tiny_config();
        let failures = verify_chunked_identity(&cfg);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
