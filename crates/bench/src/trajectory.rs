//! The shared reporter scaffolding: one JSON schema, one CLI shape.
//!
//! Every `scrack_*` reporter binary answers the same kind of question —
//! *sweep a grid of cells, measure each, gate CI on the invariants* —
//! and before this module each grew its own hand-rolled JSON writer and
//! flag parser. This module extracts the common 80%:
//!
//! * [`TrajectoryDoc`] — a builder for the unified
//!   **`scrack-trajectory/v1`** document (see `docs/TRAJECTORY.md`):
//!   an envelope of `report` name, scalar `params`, named sweep `axes`,
//!   one flat object per `cells` entry, and optional `curves` (label +
//!   `[x, y]` points — regret trajectories, latency timelines). The
//!   builder guarantees balanced brackets, no trailing commas, and
//!   fixed float precision, so the shape tests every reporter carries
//!   reduce to "did you put the right keys in".
//! * [`CommonCli`] — the `--smoke --check --json PATH` triple every
//!   reporter supports, extracted from the raw argument list so each
//!   binary parses only its own flags.
//! * [`median`] / [`percentile`] — the nearest-rank order statistics the
//!   timing harnesses share.
//!
//! The throughput, robustness, and gauntlet reporters emit
//! `scrack-trajectory/v1`; the older kernel/latency/updates reports
//! predate the schema and keep their bespoke documents until their next
//! regeneration.

use std::fmt::Write as _;

/// The unified reporter schema identifier.
pub const TRAJECTORY_SCHEMA: &str = "scrack-trajectory/v1";

/// A JSON value with deterministic, diff-stable rendering.
///
/// Floats carry an explicit decimal precision ([`Json::fixed`]) so a
/// regenerated baseline diffs only where a number actually moved.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null` (absent measurements, e.g. a missing baseline ratio).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float rendered with a fixed number of decimal places.
    Fixed(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A float with `places` decimal places.
    pub fn fixed(v: f64, places: usize) -> Json {
        Json::Fixed(v, places)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// `Some` → the value, `None` → `null`.
    pub fn opt(v: Option<Json>) -> Json {
        v.unwrap_or(Json::Null)
    }

    fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Fixed(v, places) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.places$}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{k}\": ");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// An ordered `key: value` list that renders as a JSON object; the unit
/// every cell and param block is built from.
pub fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// One named curve: a label and `[x, y]` sample points.
#[derive(Clone, Debug)]
pub struct Curve {
    label: String,
    points: Vec<(u64, f64)>,
}

/// Builder for a `scrack-trajectory/v1` document.
#[derive(Clone, Debug)]
pub struct TrajectoryDoc {
    report: String,
    params: Vec<(String, Json)>,
    axes: Vec<(String, Json)>,
    cells: Vec<Json>,
    curves: Vec<Curve>,
}

impl TrajectoryDoc {
    /// A new document for the named report family
    /// (`"throughput"`, `"robustness"`, `"gauntlet"`, …).
    pub fn new(report: impl Into<String>) -> Self {
        Self {
            report: report.into(),
            params: Vec::new(),
            axes: Vec::new(),
            cells: Vec::new(),
            curves: Vec::new(),
        }
    }

    /// Records one scalar configuration parameter.
    pub fn param(mut self, key: &str, value: Json) -> Self {
        self.params.push((key.to_string(), value));
        self
    }

    /// Records one sweep axis (the full set of values a cell dimension
    /// ranges over — coverage checks compare cells against these).
    pub fn axis(mut self, name: &str, values: Vec<Json>) -> Self {
        self.axes.push((name.to_string(), Json::Arr(values)));
        self
    }

    /// Appends one measured cell (a flat object).
    pub fn cell(&mut self, cell: Json) {
        self.cells.push(cell);
    }

    /// Appends one curve (omitted from the document when none exist).
    pub fn curve(&mut self, label: impl Into<String>, points: Vec<(u64, f64)>) {
        self.curves.push(Curve {
            label: label.into(),
            points,
        });
    }

    /// Renders the document. Top-level keys one per line, each cell and
    /// curve on its own line — the layout the committed `BENCH_*.json`
    /// baselines use, so regenerations diff line-per-cell.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{TRAJECTORY_SCHEMA}\",");
        let _ = writeln!(s, "  \"report\": \"{}\",", self.report);
        s.push_str("  \"params\": ");
        Json::Obj(self.params.clone()).render(&mut s);
        s.push_str(",\n  \"axes\": ");
        Json::Obj(self.axes.clone()).render(&mut s);
        s.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            cell.render(&mut s);
        }
        s.push_str("\n  ]");
        if !self.curves.is_empty() {
            s.push_str(",\n  \"curves\": [");
            for (i, c) in self.curves.iter().enumerate() {
                s.push_str(if i > 0 { ",\n    " } else { "\n    " });
                let points = Json::Arr(
                    c.points
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::UInt(x), Json::fixed(y, 4)]))
                        .collect(),
                );
                obj(vec![("label", Json::str(&c.label)), ("points", points)]).render(&mut s);
            }
            s.push_str("\n  ]");
        }
        s.push_str("\n}\n");
        s
    }
}

/// The CLI flags every reporter binary shares.
#[derive(Clone, Debug, Default)]
pub struct CommonCli {
    /// `--smoke`: run at CI scale (seconds, not minutes).
    pub smoke: bool,
    /// `--check`: gate on the report's invariants, exit nonzero on any
    /// violation.
    pub check: bool,
    /// `--json PATH`: also write the machine-readable document.
    pub json: Option<String>,
}

impl CommonCli {
    /// Extracts `--smoke`, `--check`, and `--json PATH` from `args`,
    /// removing them; reporter-specific flags remain for the caller.
    pub fn extract(args: &mut Vec<String>) -> CommonCli {
        let mut cli = CommonCli::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--smoke" => {
                    cli.smoke = true;
                    args.remove(i);
                }
                "--check" => {
                    cli.check = true;
                    args.remove(i);
                }
                "--json" => {
                    args.remove(i);
                    if i >= args.len() {
                        eprintln!("--json requires a value (try --help)");
                        std::process::exit(2);
                    }
                    cli.json = Some(args.remove(i));
                }
                _ => i += 1,
            }
        }
        cli
    }

    /// Writes the JSON document if `--json PATH` was given; reports the
    /// path on `out`.
    pub fn write_json(&self, doc: &str, out: &mut impl std::io::Write) {
        if let Some(path) = &self.json {
            std::fs::write(path, doc).expect("write JSON report");
            let _ = writeln!(out, "wrote {path}");
        }
    }
}

/// Exits 1 with the failure list if any check failed; prints `pass_msg`
/// otherwise. The shared tail of every `--check` gate.
pub fn finish_check(kind: &str, failures: &[String], pass_msg: &str) {
    if !failures.is_empty() {
        eprintln!("{kind} check FAILED ({} violations):", failures.len());
        for f in failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("{pass_msg}");
}

/// The median of `xs` (averaging the middle pair for even lengths).
///
/// # Panics
/// On an empty slice or non-finite values.
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// The `p`-th percentile (nearest-rank) of `xs`, sorting in place.
///
/// # Panics
/// On an empty slice or non-finite values.
pub fn percentile(xs: &mut [f64], p: f64) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> TrajectoryDoc {
        let mut doc = TrajectoryDoc::new("sample")
            .param("n", Json::UInt(1000))
            .param("label", Json::str("a \"quoted\" name"))
            .axis("workloads", vec![Json::str("random"), Json::str("skew")]);
        doc.cell(obj(vec![
            ("workload", Json::str("random")),
            ("cost", Json::fixed(1.23456, 3)),
            ("ratio", Json::Null),
        ]));
        doc.cell(obj(vec![
            ("workload", Json::str("skew")),
            ("cost", Json::fixed(2.0, 3)),
            ("ratio", Json::fixed(0.5, 2)),
        ]));
        doc.curve("regret", vec![(0, 1.0), (64, 1.5)]);
        doc
    }

    #[test]
    fn document_is_balanced_without_trailing_commas() {
        let json = sample_doc().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"), "trailing comma before ]");
        assert!(!json.contains(",]") && !json.contains(",}"), "{json}");
        assert!(json.contains("\"schema\": \"scrack-trajectory/v1\""));
        assert!(json.contains("\"report\": \"sample\""));
        assert!(json.contains("\"cost\": 1.235"), "fixed precision rounds");
        assert!(json.contains("\"ratio\": null"));
        assert!(json.contains("a \\\"quoted\\\" name"), "strings escaped");
        assert!(json.contains("[0, 1.0000], [64, 1.5000]"), "{json}");
    }

    #[test]
    fn curves_are_omitted_when_absent() {
        let mut doc = TrajectoryDoc::new("bare");
        doc.cell(obj(vec![("k", Json::UInt(1))]));
        let json = doc.to_json();
        assert!(!json.contains("curves"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        Json::fixed(f64::NAN, 2).render(&mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn common_cli_extracts_only_shared_flags() {
        let mut args: Vec<String> = ["--n", "500", "--smoke", "--json", "out.json", "--check"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = CommonCli::extract(&mut args);
        assert!(cli.smoke && cli.check);
        assert_eq!(cli.json.as_deref(), Some("out.json"));
        assert_eq!(args, vec!["--n".to_string(), "500".to_string()]);
    }

    #[test]
    fn order_statistics_are_nearest_rank() {
        let mut xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&mut xs, 50.0), 50.0);
        assert_eq!(percentile(&mut xs, 99.0), 99.0);
        assert_eq!(percentile(&mut xs, 99.9), 100.0);
        assert_eq!(percentile(&mut [7.0], 99.9), 7.0);
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
