//! Multi-threaded determinism: the concurrent wrappers must not let
//! thread scheduling leak into their physical cost accounting.
//!
//! This extends the single-threaded determinism suite
//! (`crates/core/tests/determinism.rs`) to the `scrack_parallel` layer:
//! every run here executes real threads, then replays the identical work
//! single-threaded and asserts **bit-identical final [`Stats`]** (and
//! oracle-equal answers) under both the `Branchy` and `Branchless`
//! kernel policies. The pillars:
//!
//! 1. [`BatchScheduler`]: `execute` (work-stealing workers over shard
//!    queues) vs `execute_serial` — per-shard queues are drained in a
//!    fixed order with per-shard RNG streams, so scheduling cannot
//!    matter.
//! 2. [`ShardedCracker`]: the scoped fan-out vs a hand-rolled serial
//!    replay of the same shard split and RNG streams.
//! 3. [`PieceLockedCracker`]: threads confined to key-disjoint regions
//!    (after a deterministic boundary warmup) vs a serial replay of the
//!    same regions — piece locks partition the work, so per-region cost
//!    is interleaving-invariant.
//! 4. [`ChunkedCracker`]: `execute` (work-stealing workers over private
//!    chunks, then merged shards) vs `execute_serial`, with the
//!    partition-merge firing mid-stream on both paths — per-chunk RNG
//!    streams and a query-count merge trigger keep the whole lifecycle
//!    scheduling-invariant.
//!
//! Plus a liveness/atomicity stress for [`SharedCracker`]'s epoch read
//! path: readers on published ranges run concurrently with a cracking
//! writer and must only ever observe oracle-exact views.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, CrackedColumn, IndexPolicy, KernelPolicy, UpdatePolicy};
use scrack_parallel::{
    BatchOp, BatchScheduler, ChunkedCracker, ParallelStrategy, PieceLockedCracker, ShardedCracker,
    SharedCracker,
};
use scrack_types::{QueryRange, Stats};
use std::sync::Arc;

const SEED: u64 = 0x2012_DE7E;

/// A fixed random-order column (keys `0..n`, xorshift Fisher–Yates).
fn column(n: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
    data.iter()
        .filter(|k| q.contains(**k))
        .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
}

/// A deterministic mixed batch confined to keys `[lo, hi)`: narrow
/// selects, wide scans, and the occasional empty range.
fn mixed_batch(lo: u64, hi: u64, count: usize, salt: u64) -> Vec<QueryRange> {
    let span = hi - lo;
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt.wrapping_mul(0x100_0000_01B3);
    (0..count)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let a = lo + state % span;
            let w = match i % 3 {
                0 => 1 + state % 32,        // narrow
                1 => span / 4,              // wide
                _ => 0,                     // empty
            };
            QueryRange::new(a, (a + w).min(hi))
        })
        .collect()
}

const POLICIES: [KernelPolicy; 2] = [KernelPolicy::Branchy, KernelPolicy::Branchless];
const INDEXES: [IndexPolicy; 3] = IndexPolicy::ALL;

#[test]
fn batch_scheduler_threads_match_serial_replay_bitwise() {
    let n = 40_000u64;
    let data = column(n);
    for kernel in POLICIES {
        for index in INDEXES {
            for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
                let config = CrackConfig::default().with_kernel(kernel).with_index(index);
                let mut threaded = BatchScheduler::new(data.clone(), 4, strategy, config, SEED);
                let mut serial = BatchScheduler::new(data.clone(), 4, strategy, config, SEED);
                for round in 0..5u64 {
                    let batch = mixed_batch(0, n, 80, round);
                    let got = threaded.execute(&batch);
                    assert_eq!(
                        got,
                        serial.execute_serial(&batch),
                        "{kernel:?}/{index}/{strategy:?} round {round}: answers diverged"
                    );
                    for (qi, q) in batch.iter().enumerate() {
                        assert_eq!(got[qi], oracle(&data, *q), "round {round} query {qi}");
                    }
                }
                assert_eq!(
                    threaded.stats(),
                    serial.stats(),
                    "{kernel:?}/{index}/{strategy:?}: Stats must be bit-identical"
                );
                threaded.check_integrity().unwrap();
            }
        }
    }
}

/// A deterministic mixed read/write stream confined to keys `[0, hi)`
/// plus an append fringe above it.
fn mixed_op_batch(hi: u64, count: usize, salt: u64) -> Vec<BatchOp<u64>> {
    let mut state = 0x27BB_2EE6_87B0_B0FDu64 ^ salt.wrapping_mul(0x100_0000_01B3);
    (0..count)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = state % (hi + hi / 8);
            match i % 5 {
                0 | 1 => BatchOp::Select(QueryRange::new(state % hi, state % hi + 1 + state % 512)),
                2 => BatchOp::Select(QueryRange::new(0, hi * 2)),
                3 => BatchOp::Insert(k),
                _ => BatchOp::Delete(k),
            }
        })
        .collect()
}

#[test]
fn batch_scheduler_mixed_ops_match_serial_replay_bitwise() {
    // The mixed read/write extension of the pillar above: interleaved
    // inserts/deletes/selects, threaded vs serial, must be bit-identical
    // in answers, Stats, and leftover pending updates — under both
    // kernel policies, both index policies, and both update policies.
    let n = 30_000u64;
    let data = column(n);
    for kernel in POLICIES {
        for index in INDEXES {
            for update in UpdatePolicy::ALL {
                let config = CrackConfig::default()
                    .with_kernel(kernel)
                    .with_index(index)
                    .with_update(update);
                let strategy = ParallelStrategy::Stochastic;
                let mut threaded = BatchScheduler::new(data.clone(), 4, strategy, config, SEED);
                let mut serial = BatchScheduler::new(data.clone(), 4, strategy, config, SEED);
                for round in 0..4u64 {
                    let ops = mixed_op_batch(n, 64, round);
                    assert_eq!(
                        threaded.execute_ops(&ops),
                        serial.execute_ops_serial(&ops),
                        "{kernel:?}/{index}/{update} round {round}: answers diverged"
                    );
                }
                assert_eq!(
                    threaded.stats(),
                    serial.stats(),
                    "{kernel:?}/{index}/{update}: Stats must be bit-identical"
                );
                assert_eq!(threaded.pending_updates(), serial.pending_updates());
                threaded.flush_updates();
                threaded.check_integrity().unwrap();
            }
        }
    }
}

#[test]
fn batch_scheduler_mixed_ops_answers_are_update_policy_invariant() {
    // The tentpole contract at the concurrent layer: per-element ripple
    // and batched merge-ripple must answer identically through the
    // scheduler (Stats legitimately differ — fewer moves is the point).
    let n = 24_000u64;
    let data = column(n);
    let mut runs = Vec::new();
    for update in UpdatePolicy::ALL {
        let config = CrackConfig::default().with_update(update);
        let mut sched =
            BatchScheduler::new(data.clone(), 4, ParallelStrategy::Stochastic, config, SEED);
        let mut answers = Vec::new();
        for round in 0..4u64 {
            answers.push(sched.execute_ops(&mixed_op_batch(n, 96, round)));
        }
        sched.check_integrity().unwrap();
        runs.push(answers);
    }
    assert_eq!(runs[0], runs[1], "answers diverged across update policies");
}

#[test]
fn batch_scheduler_stats_are_index_policy_invariant() {
    // The PR-4 contract lifted to the concurrent layer: the same batched
    // run under `Avl`, `Flat` and `Radix` must produce bit-identical
    // answers AND bit-identical Stats — the index representation is a
    // pure wall-clock knob even across threads.
    let n = 30_000u64;
    let data = column(n);
    for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
        let mut runs = Vec::new();
        for index in INDEXES {
            let config = CrackConfig::default().with_index(index);
            let mut sched = BatchScheduler::new(data.clone(), 4, strategy, config, SEED);
            let mut answers = Vec::new();
            for round in 0..4u64 {
                let batch = mixed_batch(0, n, 64, round);
                answers.push(sched.execute(&batch));
            }
            sched.check_integrity().unwrap();
            runs.push((answers, sched.stats()));
        }
        for (i, run) in runs.iter().enumerate().skip(1) {
            assert_eq!(
                runs[0].0, run.0,
                "{strategy:?}/{}: answers diverged across index policies",
                INDEXES[i]
            );
            assert_eq!(
                runs[0].1, run.1,
                "{strategy:?}/{}: Stats diverged across index policies",
                INDEXES[i]
            );
        }
    }
}

#[test]
fn chunked_cracker_threads_match_serial_replay_bitwise() {
    // The fourth pillar: parallel-chunked cracking must be
    // scheduling-invariant through its whole lifecycle — chunk phase,
    // the partition-merge (fires mid-stream at a fixed query count on
    // both paths), and the merged shard phase.
    let n = 30_000u64;
    let data = column(n);
    for kernel in POLICIES {
        for index in INDEXES {
            for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
                let config = CrackConfig::default().with_kernel(kernel).with_index(index);
                let mut threaded = ChunkedCracker::new(data.clone(), 4, strategy, config, SEED)
                    .with_merge_after(150);
                let mut serial = ChunkedCracker::new(data.clone(), 4, strategy, config, SEED)
                    .with_merge_after(150);
                for round in 0..5u64 {
                    let batch = mixed_batch(0, n, 80, round);
                    let got = threaded.execute(&batch);
                    assert_eq!(
                        got,
                        serial.execute_serial(&batch),
                        "{kernel:?}/{index}/{strategy:?} round {round}: answers diverged"
                    );
                    for (qi, q) in batch.iter().enumerate() {
                        assert_eq!(got[qi], oracle(&data, *q), "round {round} query {qi}");
                    }
                }
                assert!(threaded.has_merged(), "merge must fire mid-stream");
                assert_eq!(threaded.has_merged(), serial.has_merged());
                assert_eq!(
                    threaded.stats(),
                    serial.stats(),
                    "{kernel:?}/{index}/{strategy:?}: Stats must be bit-identical"
                );
                threaded.check_integrity().unwrap();
            }
        }
    }
}

#[test]
fn shared_cracker_readers_never_observe_torn_views_under_writer_contention() {
    // The epoch read path's atomicity contract: while a writer cracks
    // and republishes epochs, readers resolving against published
    // snapshots must only ever see oracle-exact answers — never a
    // half-reorganized view — and must not be serialized behind the
    // writer (they share no lock with reorganization at all).
    let n = 60_000u64;
    let data = column(n);
    let readers = 4u64;
    for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
        let sc = Arc::new(SharedCracker::new(
            data.clone(),
            strategy,
            CrackConfig::default(),
            SEED,
        ));
        // Warm a set of reader ranges so their bounds are published:
        // interior ranges (cracked by the warmup) plus edge-bound ranges
        // (resolvable via the key span from the very first epoch).
        let warmed: Vec<QueryRange> = (0..16u64)
            .map(|i| QueryRange::new(i * 3_000, i * 3_000 + 1_500))
            .chain([QueryRange::new(0, n * 2), QueryRange::new(n / 2, n * 4)])
            .collect();
        let expected: Vec<(usize, u64)> = warmed
            .iter()
            .map(|q| {
                let got = sc.select_aggregate(*q);
                assert_eq!(got, oracle(&data, *q));
                got
            })
            .collect();
        let shared_data = Arc::new(data.clone());
        std::thread::scope(|scope| {
            // One writer cracking fresh ranges the whole time, publishing
            // epoch after epoch underneath the readers.
            let writer_sc = Arc::clone(&sc);
            let writer_data = Arc::clone(&shared_data);
            scope.spawn(move || {
                let mut state = 0xD1CE_BA5E_0000_0001u64;
                for _ in 0..400 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let a = state % (n - 1_000);
                    let q = QueryRange::new(a, a + 1 + state % 900);
                    assert_eq!(
                        writer_sc.select_aggregate(q),
                        oracle(&writer_data, q),
                        "writer answer diverged"
                    );
                }
            });
            // N readers hammering the warmed (published) ranges. A torn
            // or half-reorganized view would break count or checksum.
            for r in 0..readers {
                let reader_sc = Arc::clone(&sc);
                let warmed = warmed.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    for round in 0..300usize {
                        let i = (round + r as usize) % warmed.len();
                        assert_eq!(
                            reader_sc.select_aggregate(warmed[i]),
                            expected[i],
                            "reader {r} round {round}: torn view on {:?}",
                            warmed[i]
                        );
                    }
                });
            }
        });
        sc.check_integrity().unwrap();
    }
}

#[test]
fn sharded_cracker_threads_match_serial_replay_bitwise() {
    let n = 32_000u64;
    let shards = 4usize;
    let data = column(n);
    for kernel in POLICIES {
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let config = CrackConfig::default().with_kernel(kernel);
            let queries = mixed_batch(0, n, 120, 7);

            // Threaded run: every select fans out over `shards` scoped
            // threads inside ShardedCracker.
            let mut sc = ShardedCracker::new(data.clone(), shards, strategy, config, SEED);
            let threaded_answers: Vec<(usize, u64)> =
                queries.iter().map(|q| sc.select_aggregate(*q)).collect();

            // Serial replay: the same chunk split (ShardedCracker's
            // contract: near-equal front-to-back chunks, shard i seeded
            // SEED + i), each shard drained on this thread.
            let per = data.len().div_ceil(shards);
            let mut cols: Vec<(CrackedColumn<u64>, SmallRng)> = data
                .chunks(per)
                .enumerate()
                .map(|(i, chunk)| {
                    (
                        CrackedColumn::new(chunk.to_vec(), config),
                        SmallRng::seed_from_u64(SEED.wrapping_add(i as u64)),
                    )
                })
                .collect();
            let serial_answers: Vec<(usize, u64)> = queries
                .iter()
                .map(|q| {
                    let mut count = 0usize;
                    let mut sum = 0u64;
                    for (col, rng) in &mut cols {
                        let out = match strategy {
                            ParallelStrategy::Crack => col.select_original(*q),
                            ParallelStrategy::Stochastic => col.mdd1r_select(*q, rng),
                        };
                        for e in out.resolve(col.data()) {
                            count += 1;
                            sum = sum.wrapping_add(e);
                        }
                    }
                    (count, sum)
                })
                .collect();

            assert_eq!(
                threaded_answers, serial_answers,
                "{kernel:?}/{strategy:?}: answers diverged"
            );
            for (qi, q) in queries.iter().enumerate() {
                assert_eq!(threaded_answers[qi], oracle(&data, *q), "query {qi}");
            }
            let serial_stats = cols.iter().fold(Stats::new(), |acc, (col, _)| {
                acc + col.stats()
            });
            assert_eq!(
                sc.stats(),
                serial_stats,
                "{kernel:?}/{strategy:?}: Stats must be bit-identical"
            );
        }
    }
}

#[test]
fn piece_locked_regions_match_serial_replay_bitwise() {
    // Thread r owns key region [r*W, (r+1)*W). A deterministic warmup
    // cracks every region boundary first, so piece locks partition the
    // work: thread r only ever touches pieces inside its region, and the
    // total Stats is the (interleaving-invariant) sum of per-region
    // costs. The Crack strategy is used because it is RNG-free; the
    // stochastic path draws from one shared RNG stream, whose handout
    // order legitimately depends on scheduling.
    let n = 32_000u64;
    let regions = 4u64;
    let width = n / regions;
    let data = column(n);
    let batches: Vec<Vec<QueryRange>> = (0..regions)
        .map(|r| mixed_batch(r * width, (r + 1) * width, 100, r))
        .collect();

    for kernel in POLICIES {
        let config = CrackConfig::default().with_kernel(kernel);
        let run = |threaded: bool| -> (Vec<Vec<(usize, u64)>>, Stats) {
            let plc = Arc::new(PieceLockedCracker::new(
                data.clone(),
                ParallelStrategy::Crack,
                config,
                SEED,
            ));
            for r in 1..regions {
                plc.select_aggregate(QueryRange::new(0, r * width));
            }
            let answers: Vec<Vec<(usize, u64)>> = if threaded {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = batches
                        .iter()
                        .map(|batch| {
                            let plc = Arc::clone(&plc);
                            scope.spawn(move || {
                                batch.iter().map(|q| plc.select_aggregate(*q)).collect()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("region worker panicked"))
                        .collect()
                })
            } else {
                batches
                    .iter()
                    .map(|batch| batch.iter().map(|q| plc.select_aggregate(*q)).collect())
                    .collect()
            };
            plc.check_integrity().unwrap();
            (answers, plc.stats())
        };

        let (threaded_answers, threaded_stats) = run(true);
        let (serial_answers, serial_stats) = run(false);
        assert_eq!(threaded_answers, serial_answers, "{kernel:?}: answers diverged");
        assert_eq!(
            threaded_stats, serial_stats,
            "{kernel:?}: Stats must be bit-identical"
        );
        for (r, batch) in batches.iter().enumerate() {
            for (qi, q) in batch.iter().enumerate() {
                assert_eq!(
                    threaded_answers[r][qi],
                    oracle(&data, *q),
                    "region {r} query {qi}"
                );
            }
        }
    }
}
