//! The deterministic fault-injection gauntlet, at integration scale:
//! every fault kind crossed with every admission policy through the
//! resilient serving path, asserting the three contracts of the
//! resilience layer end to end.
//!
//! * **Oracle-correct or accounted.** Under every injected fault, every
//!   query reported `Answered` carries exactly the scan-oracle answer,
//!   and the rest are `Shed` or `TimedOut` — `outcomes.len()` always
//!   equals the batch length, so nothing is ever silently dropped.
//! * **Degradation is observable.** Each planned fault leaves its
//!   signature in the report (`panics_isolated`, `quarantined`,
//!   `rebuilt`, shed counts), so the gauntlet can prove the fault
//!   actually fired rather than vacuously passing.
//! * **Recovery is complete.** After the fault window, every shard is
//!   `Healthy` again and subsequent batches are fully answered with
//!   normal adaptive cracking (crack counts grow again).

use scrack_core::{CrackConfig, FaultPlan};
use scrack_parallel::{
    AdmissionPolicy, BatchScheduler, ParallelStrategy, QueryOutcome, ServingConfig, ShardHealth,
};
use scrack_types::QueryRange;
use std::time::Duration;

const SEED: u64 = 0x2012_DE7E;
const N: u64 = 20_000;

/// A fixed random-order column (keys `0..n`, xorshift Fisher–Yates).
fn column(n: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
    data.iter()
        .filter(|k| q.contains(**k))
        .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
}

/// A deterministic query stream of narrow ranges across the domain.
fn stream(queries: usize) -> Vec<QueryRange> {
    (0..queries as u64)
        .map(|i| {
            let a = (i * 2_654_435_761) % (N - 500);
            QueryRange::new(a, a + 1 + (i * 97) % 400)
        })
        .collect()
}

fn scheduler(shards: usize, plan: FaultPlan) -> BatchScheduler<u64> {
    BatchScheduler::new(
        column(N),
        shards,
        ParallelStrategy::Stochastic,
        CrackConfig::default().with_fault(plan),
        SEED,
    )
}

/// Drives `batches` through the scheduler, asserting the no-silent-drop
/// and oracle contracts on every report; returns totals
/// `(answered, shed, timed_out)`.
fn drive(
    sched: &mut BatchScheduler<u64>,
    data: &[u64],
    queries: &[QueryRange],
    batch: usize,
    serving: &ServingConfig,
) -> (usize, usize, usize) {
    let (mut answered, mut shed, mut timed_out) = (0, 0, 0);
    for chunk in queries.chunks(batch) {
        let report = sched.execute_resilient(chunk, serving);
        assert_eq!(report.outcomes.len(), chunk.len(), "a query went missing");
        for (qi, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                QueryOutcome::Answered { count, key_sum, .. } => {
                    answered += 1;
                    assert_eq!(
                        (*count, *key_sum),
                        oracle(data, chunk[qi]),
                        "query {qi} ({}) wrong under {:?}",
                        chunk[qi],
                        serving.admission
                    );
                }
                QueryOutcome::Shed { .. } => shed += 1,
                QueryOutcome::TimedOut => timed_out += 1,
            }
        }
    }
    (answered, shed, timed_out)
}

/// Every fault kind × every admission policy: admitted answers are
/// oracle-exact, accounting is complete, and the scheduler ends healthy.
#[test]
fn fault_matrix_is_oracle_correct_under_every_admission_policy() {
    let data = column(N);
    let queries = stream(512);
    let plans = [
        ("none", FaultPlan::disabled()),
        ("panic", FaultPlan::panic_in_kernel(6).on_target(0)),
        ("delay", FaultPlan::delay_in_crack(6, 10).on_target(1)),
        ("poison", FaultPlan::poison_shard(4).on_target(2)),
        ("overload", FaultPlan::queue_overload(3).with_repeat(3)),
    ];
    for (fault, plan) in plans {
        for admission in AdmissionPolicy::ALL {
            let serving = ServingConfig::bounded(8, admission).with_max_retries(1);
            let mut sched = scheduler(4, plan);
            let (answered, shed, timed_out) =
                drive(&mut sched, &data, &queries, 64, &serving);
            assert_eq!(
                answered + shed + timed_out,
                queries.len(),
                "{fault}/{admission}: accounting broken"
            );
            assert_eq!(timed_out, 0, "{fault}/{admission}: no deadlines were set");
            if admission != AdmissionPolicy::Shed {
                assert_eq!(shed, 0, "{fault}/{admission}: only Shed may shed");
            }
            let stats = sched.resilience_stats();
            match fault {
                "panic" => {
                    assert!(stats.panics_isolated >= 1, "{admission}: panic never fired");
                    assert!(stats.rebuilds >= 1, "{admission}: no rebuild after panic");
                }
                "poison" => {
                    assert!(stats.quarantines >= 1, "{admission}: poison never fired");
                    assert!(stats.rebuilds >= 1, "{admission}: no rebuild after poison");
                }
                _ => {}
            }
            // Recovery: the fault window is long past; every shard must
            // be healthy and a fresh batch must be fully answered.
            assert!(
                sched.quarantined_shards().is_empty(),
                "{fault}/{admission}: shard still quarantined at end of stream"
            );
            let report = sched.execute_resilient(&queries[..64], &ServingConfig::default());
            assert!(
                report.fully_answered(),
                "{fault}/{admission}: post-fault batch not fully answered"
            );
        }
    }
}

/// The quarantine ladder survives a *delayed* rebuild: with
/// `rebuild_after > 0` the shard serves scans for the configured number
/// of batches (answers still exact), then resumes cracking.
#[test]
fn delayed_rebuild_serves_exact_scans_then_recovers() {
    let data = column(N);
    let queries = stream(320);
    let serving = ServingConfig::default().with_rebuild_after(2);
    let mut sched = scheduler(4, FaultPlan::poison_shard(3).on_target(1));
    let mut seen_quarantined = false;
    for chunk in queries.chunks(64) {
        let report = sched.execute_resilient(chunk, &serving);
        assert!(report.fully_answered(), "scan degradation must stay exact");
        for (qi, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.answer().expect("answered"),
                oracle(&data, chunk[qi]),
                "query {qi} wrong during quarantine window"
            );
        }
        if let ShardHealth::Quarantined { .. } = sched.shard_health(1) {
            seen_quarantined = true;
        }
    }
    assert!(seen_quarantined, "planned poison never quarantined shard 1");
    assert_eq!(
        sched.shard_health(1),
        ShardHealth::Healthy,
        "shard 1 never rebuilt"
    );
    assert!(sched.resilience_stats().rebuilds >= 1);
}

/// Zero-budget deadlines time out whole batches (never partial answers),
/// and the counters account for every query; lifting the deadline
/// restores full service on the same scheduler.
#[test]
fn deadlines_time_out_cleanly_and_service_resumes() {
    let data = column(N);
    let queries = stream(128);
    let mut sched = scheduler(4, FaultPlan::disabled());
    let strict = ServingConfig::default().with_deadline(Duration::from_secs(0));
    let report = sched.execute_resilient(&queries[..64], &strict);
    assert_eq!(report.timed_out, 64, "zero budget must expire everything");
    assert!(report
        .outcomes
        .iter()
        .all(|o| *o == QueryOutcome::TimedOut));
    let relaxed = ServingConfig::default().with_deadline(Duration::from_secs(60));
    let report = sched.execute_resilient(&queries[64..], &relaxed);
    assert!(report.fully_answered(), "generous budget must answer all");
    for (qi, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(
            outcome.answer().expect("answered"),
            oracle(&data, queries[64 + qi]),
            "post-timeout answers must stay exact"
        );
    }
    let stats = sched.resilience_stats();
    assert_eq!((stats.timed_out, stats.answered), (64, 64));
}

/// A repeating panic plan: several isolated panics in one stream, each
/// quarantining and rebuilding, with every answer still exact.
#[test]
fn repeated_panics_are_each_isolated_and_recovered() {
    let data = column(N);
    let queries = stream(384);
    let mut sched = scheduler(4, FaultPlan::panic_in_kernel(5).with_repeat(3).on_target(0));
    let (answered, shed, timed_out) = drive(
        &mut sched,
        &data,
        &queries,
        64,
        &ServingConfig::default(),
    );
    assert_eq!((answered, shed, timed_out), (queries.len(), 0, 0));
    let stats = sched.resilience_stats();
    assert!(
        stats.panics_isolated >= 1 && stats.rebuilds >= stats.quarantines,
        "each quarantine must rebuild: {stats:?}"
    );
    assert!(sched.quarantined_shards().is_empty());
}
