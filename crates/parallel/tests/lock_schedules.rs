//! Seeded-schedule interleaving tests for the lock manager's grant/wake
//! path: threads replay pseudo-random acquire/hold/release scripts while
//! a shared referee checks that no conflicting pair is ever granted
//! simultaneously, every request eventually completes, and the table
//! drains to zero.

use scrack_parallel::{LockManager, LockMode};
use scrack_types::QueryRange;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// One scripted lock request.
#[derive(Clone, Copy, Debug)]
struct Step {
    shard: usize,
    low: u64,
    high: u64,
    mode: LockMode,
    hold_us: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A deterministic per-thread script. Small shard/key domains force
/// heavy overlap so grants genuinely contend.
fn script(seed: u64, steps: usize) -> Vec<Step> {
    let mut state = seed | 1;
    (0..steps)
        .map(|_| {
            let r = xorshift(&mut state);
            let low = r % 8;
            Step {
                shard: (r >> 8) as usize % 2,
                low,
                high: low + 1 + (r >> 16) % 4,
                mode: if (r >> 24).is_multiple_of(3) {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                },
                hold_us: (r >> 32) % 200,
            }
        })
        .collect()
}

/// The referee's record of one currently granted request.
#[derive(Clone, Copy)]
struct Granted {
    owner: u64,
    shard: usize,
    low: u64,
    high: u64,
    mode: LockMode,
}

fn conflicts(a: &Granted, b: &Granted) -> bool {
    a.owner != b.owner
        && a.shard == b.shard
        && a.low < b.high
        && b.low < a.high
        && (a.mode == LockMode::Exclusive || b.mode == LockMode::Exclusive)
}

/// Replays one seed: `threads` workers × `steps` requests each, no
/// budgets (every request must eventually be granted). Returns the
/// total grants the referee witnessed.
fn run_schedule(seed: u64, threads: u64, steps: usize) -> usize {
    let mgr = Arc::new(LockManager::new());
    let referee: Arc<Mutex<Vec<Granted>>> = Arc::new(Mutex::new(Vec::new()));
    let witnessed = Arc::new(Mutex::new(0usize));

    let handles: Vec<_> = (0..threads)
        .map(|owner| {
            let mgr = Arc::clone(&mgr);
            let referee = Arc::clone(&referee);
            let witnessed = Arc::clone(&witnessed);
            thread::spawn(move || {
                for step in script(seed.wrapping_mul(1_000_003).wrapping_add(owner), steps) {
                    let guard = mgr
                        .acquire(
                            owner,
                            step.shard,
                            QueryRange::new(step.low, step.high),
                            step.mode,
                            None,
                        )
                        .expect("no budget: grant is mandatory");
                    let me = Granted {
                        owner,
                        shard: step.shard,
                        low: step.low,
                        high: step.high,
                        mode: step.mode,
                    };
                    {
                        let mut held = referee.lock().unwrap();
                        for other in held.iter() {
                            assert!(
                                !conflicts(&me, other),
                                "conflicting grants held at once: \
                                 {:?} [{},{}) vs owner {} [{},{}) on shard {}",
                                step.mode,
                                step.low,
                                step.high,
                                other.owner,
                                other.low,
                                other.high,
                                step.shard,
                            );
                        }
                        held.push(me);
                        *witnessed.lock().unwrap() += 1;
                    }
                    if step.hold_us > 0 {
                        thread::sleep(Duration::from_micros(step.hold_us));
                    }
                    referee
                        .lock()
                        .unwrap()
                        .retain(|g| !(g.owner == owner && g.low == me.low && g.high == me.high && g.shard == me.shard));
                    drop(guard);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(mgr.residue(), 0, "seed {seed}: table must drain");
    let stats = mgr.stats();
    assert_eq!(
        stats.granted as usize,
        (threads as usize) * steps,
        "seed {seed}: every scripted request must be granted exactly once"
    );
    assert_eq!(stats.timed_out, 0, "seed {seed}: no budget, no timeouts");
    let total = *witnessed.lock().unwrap();
    total
}

#[test]
fn seeded_schedules_never_grant_conflicting_pairs() {
    for seed in [3, 17, 101, 5_077, 90_210] {
        let total = run_schedule(seed, 4, 60);
        assert_eq!(total, 240);
    }
}

#[test]
fn write_heavy_schedules_drain_without_starvation() {
    // All-exclusive scripts on a single shard: maximum queueing pressure
    // on the wake path; completion itself proves no waiter is stranded.
    let mgr = Arc::new(LockManager::new());
    let handles: Vec<_> = (0..4u64)
        .map(|owner| {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let mut state = owner + 11;
                for _ in 0..80 {
                    let low = xorshift(&mut state) % 4;
                    let guard = mgr
                        .acquire(owner, 0, QueryRange::new(low, low + 2), LockMode::Exclusive, None)
                        .unwrap();
                    drop(guard);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mgr.residue(), 0);
    assert_eq!(mgr.stats().granted, 320);
}

#[test]
fn readers_queued_behind_a_writer_all_wake_on_release() {
    let mgr = Arc::new(LockManager::new());
    let writer = mgr
        .acquire(0, 0, QueryRange::new(0, 10), LockMode::Exclusive, None)
        .unwrap();
    let readers: Vec<_> = (1..=6u64)
        .map(|owner| {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let g = mgr
                    .acquire(owner, 0, QueryRange::new(0, 10), LockMode::Shared, None)
                    .unwrap();
                thread::sleep(Duration::from_millis(5));
                drop(g);
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(20));
    assert_eq!(mgr.residue(), 7, "six readers queued behind the writer");
    drop(writer);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(mgr.residue(), 0);
    assert!(mgr.stats().waited >= 6, "all six readers had to wait");
}
