use scrack_core::CrackConfig;
use scrack_parallel::{BatchOp, BatchScheduler, ParallelStrategy};
use scrack_types::QueryRange;

#[test]
fn delete_before_insert_of_absent_key_submission_order() {
    // Column holds keys 0..1000. Key 5000 is absent.
    let data: Vec<u64> = (0..1000).collect();
    let mut sched = BatchScheduler::new(data, 2, ParallelStrategy::Crack, CrackConfig::default(), 1);
    let ops = vec![
        BatchOp::Delete(5000u64),      // absent: should evaporate at its submission point
        BatchOp::Insert(5000u64),      // submitted AFTER the delete
        BatchOp::Select(QueryRange::new(4999, 5001)),
    ];
    let results = sched.execute_ops(&ops);
    // Submission-order semantics (the documented model + ops_oracle): select sees the insert.
    assert_eq!(results[2], (1, 5000), "later select must observe the insert submitted before it");
}
