use scrack_core::CrackConfig;
use scrack_parallel::{BatchOp, BatchScheduler, ParallelStrategy, SharedCracker};
use scrack_types::QueryRange;
use std::sync::Arc;

#[test]
fn delete_before_insert_of_absent_key_submission_order() {
    // Column holds keys 0..1000. Key 5000 is absent.
    let data: Vec<u64> = (0..1000).collect();
    let mut sched = BatchScheduler::new(data, 2, ParallelStrategy::Crack, CrackConfig::default(), 1);
    let ops = vec![
        BatchOp::Delete(5000u64),      // absent: should evaporate at its submission point
        BatchOp::Insert(5000u64),      // submitted AFTER the delete
        BatchOp::Select(QueryRange::new(4999, 5001)),
    ];
    let results = sched.execute_ops(&ops);
    // Submission-order semantics (the documented model + ops_oracle): select sees the insert.
    assert_eq!(results[2], (1, 5000), "later select must observe the insert submitted before it");
}

#[test]
fn edge_bound_queries_never_serialize_behind_the_write_lock() {
    // Repro for the PR-6 read fast-path bug: `view_bounds_ready` only
    // accepted a bound that existed as a crack (`lo_key == Some(bound)`),
    // but MDD1R never cracks on query bounds — so a repeated tail query
    // (`q.high` past the max key) or low-edge query (`q.low` at/below the
    // min key) missed the fast path on EVERY call and serialized all
    // concurrent readers behind the write lock, reorganizing forever.
    // The documented condition (bound outside the key span of its piece
    // edge is also ready) answers these from the published epoch with
    // zero physical work from the very first call.
    let data: Vec<u64> = (0..10_000u64).map(|i| (i * 48_271) % 10_000).collect();
    let sc = Arc::new(SharedCracker::new(
        data,
        ParallelStrategy::Stochastic,
        CrackConfig::default(),
        42,
    ));
    let tail = QueryRange::new(0, 1 << 40); // both bounds outside the key span
    let expect = sc.select_aggregate(tail);
    assert_eq!(expect.0, 10_000);
    assert_eq!(sc.stats().touched, 0, "edge query must not reorganize");

    // Hammer the same edge query from many threads; the whole run must
    // stay on the read path (zero touches — no write lock, no cracking).
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let sc = Arc::clone(&sc);
            scope.spawn(move || {
                for _ in 0..200 {
                    assert_eq!(sc.select_aggregate(tail), expect);
                }
            });
        }
    });
    assert_eq!(
        sc.stats().touched,
        0,
        "repeated edge-bound queries must stay on the epoch read path"
    );
}
