//! Concurrency extensions for cracked columns.
//!
//! §6 of Halim et al. 2012 lists concurrency control as open cracking
//! work: "the physical reorganizations [of concurrent queries] have to be
//! synchronized, possibly with proper fine grained locking". This crate
//! prototypes the two standard answers on top of the stochastic engines:
//!
//! * [`ShardedCracker`] — partition-level parallelism: the column splits
//!   into independent shards, each its own cracker; a select cracks all
//!   shards concurrently (scoped threads) and merges the results. Shards
//!   never contend: reorganization is embarrassingly parallel.
//! * [`SharedCracker`] — an epoch-published cracker column for
//!   concurrent query streams against *one* physical column. Writers
//!   reorganize the live column and periodically publish an immutable
//!   snapshot of the layout; queries whose bounds are resolvable against
//!   the published epoch (existing cracks, or bounds outside the key
//!   span) answer over frozen data and never block on an in-flight
//!   crack. Everything else takes the write lock and cracks
//!   stochastically.
//! * [`PieceLockedCracker`] — §6's "proper fine grained locking": one
//!   lock per piece, so queries in different key regions crack
//!   concurrently, with contention shrinking as the index converges.
//! * [`BatchScheduler`] — throughput execution: batches of queries are
//!   grouped by key region and run partition-parallel over key-disjoint
//!   shards with per-shard work queues (Alvarez et al., DaMoN 2014).
//!   Batches may interleave update ops ([`BatchOp`]): inserts/deletes
//!   key-route to their owning shard and merge on demand through
//!   `scrack_updates`' pending queues.
//! * [`ChunkedCracker`] — parallel-chunked cracking with refined
//!   partition-merge (Alvarez et al., DaMoN 2014): each worker cracks a
//!   private contiguous chunk under its own chunk-local cracker index
//!   (no coordination at all while cracking), reads merge over
//!   chunk-local views, and once query volume accumulates the chunks
//!   partition-merge into key-disjoint shards — converging onto the
//!   [`ShardedCracker`]/[`BatchScheduler`] layout while carrying the
//!   crack structure already earned.
//!
//! Cross-session concurrency control lives in [`lock`]: a
//! shared/exclusive range-[`LockManager`] with FIFO anti-starvation
//! grants, deadline-budgeted waits (timeout-wound deadlock resolution),
//! and RAII guards. [`PieceLockedCracker`] runs its piece latches
//! through it, and the `scrack_txn` session layer uses it for
//! per-key write locks — one locking story.
//!
//! Threaded paths run on [`executor`], a small work-stealing pool that
//! caps live workers at available parallelism and lets idle workers
//! steal queued tasks, so skewed shards or chunks don't idle cores.
//! Tasks can run with per-task panic isolation
//! ([`executor::run_tasks_isolated`]); [`BatchScheduler`]'s
//! fault-hardened entry point (`execute_resilient`, policy surface in
//! [`resilience`]) builds admission control, deadlines, and the
//! quarantine→scan→rebuild degradation ladder on top of it.
//!
//! Every wrapper takes a [`scrack_core::CrackConfig`], so the concurrent
//! paths run the same branchy/branchless reorganization kernels
//! ([`scrack_core::KernelPolicy`]) as the single-threaded engines;
//! `new_default` shims keep the pre-config constructor signatures. All
//! preserve the workspace-wide invariant: results equal the scan oracle
//! under any interleaving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod chunked;
pub mod executor;
pub mod lock;
mod piecelock;
pub mod resilience;
mod sharded;
mod shared;

pub use batch::{BatchOp, BatchScheduler};
pub use chunked::ChunkedCracker;
pub use lock::{LockError, LockGuard, LockManager, LockMode, LockStats};
pub use piecelock::PieceLockedCracker;
pub use resilience::{
    AdmissionPolicy, BatchReport, QueryOutcome, ResilienceStats, ServingConfig, ShardHealth,
};
pub use sharded::{key_disjoint_partitions, ShardedCracker};
pub use shared::SharedCracker;

/// Reorganization strategy run inside the concurrent wrappers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Original cracking.
    Crack,
    /// Stochastic cracking (MDD1R).
    Stochastic,
}
