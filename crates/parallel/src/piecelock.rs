//! Piece-level locking: §6's "proper fine grained locking", implemented.
//!
//! [`SharedCracker`](crate::SharedCracker) serializes every reorganizing
//! query behind one column-wide lock. This module takes the step §6
//! sketches: each *piece* carries its own lock, so queries whose bounds
//! fall into different pieces crack concurrently — and since cracking
//! keeps making pieces smaller, contention falls as the index converges,
//! exactly when throughput matters.
//!
//! # Design
//!
//! The column is stored as a **piece table**: a list of pieces ordered by
//! key range, each owning its elements in a private buffer. A `RwLock`
//! protects only the list (lookups read, splits write). This trades the
//! paper's single dense array for per-piece buffers — the price of
//! fine-grained locking without `unsafe` — while keeping the cost
//! profile: a crack partitions one piece's buffer in place and splits it
//! with a single tail copy (a constant factor on work cracking already
//! does). The in-place partition runs through [`crack_in_two_policy`],
//! so the [`CrackConfig`]'s [`KernelPolicy`](scrack_core::KernelPolicy)
//! selects the branchy or branchless reorganization kernel exactly as in
//! the single-threaded engines.
//!
//! # Locking protocol (deadlock-free)
//!
//! Piece coordination runs through the workspace's [`LockManager`]
//! (see [`crate::lock`]) — one locking story from piece latches to
//! session write locks. Each piece is a lock resource keyed by its
//! immutable lower bound; a **fully covered** piece (read-only: no
//! crack will run) is visited in [`LockMode::Shared`], so concurrent
//! readers of a hot converged region proceed in parallel, while a
//! partially covered piece (about to crack) is taken in
//! [`LockMode::Exclusive`]. The manager's FIFO grants mean a stream of
//! readers cannot starve a queued cracker. The element buffer itself
//! sits in an `RwLock` acquired *after* the manager grant (and released
//! before it), in grant-matching mode — the grant guarantees the data
//! lock is uncontended, the data lock keeps the buffer access safe
//! without `unsafe`.
//!
//! 1. A thread never holds more than one piece grant.
//! 2. Piece grants are never acquired while holding the list lock;
//!    lookups clone the piece handle under the read lock, release it,
//!    then acquire the grant.
//! 3. The list write lock *may* be taken while holding a piece grant
//!    (registering a split). Since no thread ever waits for a grant
//!    while holding a list lock, the wait-for graph stays acyclic.
//!
//! A handle can go stale between lookup and grant (another thread split
//! the piece first); stale handles are detected by re-checking the
//! piece's key bounds under its lock and retried. A piece's lower bound
//! is immutable and splits only narrow its upper bound, so staleness is
//! always observable. A read visit that discovers it must crack after
//! all (its piece is only partially covered) releases its shared grant
//! and re-acquires exclusively — re-validating bounds afterwards, since
//! the piece may have split in the window.
//!
//! # Consistency
//!
//! Aggregates over multiple pieces lock them one at a time. That is
//! consistent because queries never change the *multiset* of keys — only
//! positions — so each key's membership in a range is stable under any
//! interleaving of reorganizations.

use crate::lock::{LockManager, LockMode, LockStats};
use crate::ParallelStrategy;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrack_core::CrackConfig;
use scrack_partition::crack_in_two_policy;
use scrack_types::{Element, QueryRange, Stats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One piece of the cracked column: its key bounds and its elements.
#[derive(Debug)]
struct PieceInner<E> {
    /// Every key `k` in `data` satisfies `lo <= k < hi`. `lo` never
    /// changes after creation; splits narrow `hi`.
    lo: u64,
    hi: u64,
    /// The elements, physically unordered.
    data: Vec<E>,
}

type PieceCell<E> = Arc<RwLock<PieceInner<E>>>;

/// A cracked column with per-piece locks (see module docs).
///
/// The constructor takes a [`CrackConfig`]; its kernel policy picks the
/// reorganization kernel (branchy or branchless) every split runs.
///
/// ```
/// use scrack_core::CrackConfig;
/// use scrack_parallel::{ParallelStrategy, PieceLockedCracker};
/// use scrack_types::QueryRange;
/// use std::sync::Arc;
///
/// let data: Vec<u64> = (0..100_000).rev().collect();
/// let col = Arc::new(PieceLockedCracker::new(
///     data, ParallelStrategy::Stochastic, CrackConfig::default(), 7,
/// ));
/// // Threads working disjoint key regions crack concurrently.
/// let handles: Vec<_> = (0..4u64)
///     .map(|t| {
///         let col = Arc::clone(&col);
///         std::thread::spawn(move || {
///             let base = t * 25_000;
///             let (count, _sum) = col.select_aggregate(QueryRange::new(base, base + 100));
///             assert_eq!(count, 100);
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert!(col.piece_count() > 1);
/// ```
#[derive(Debug)]
pub struct PieceLockedCracker<E: Element> {
    /// Pieces sorted by `lo`. Entry key = the piece's immutable `lo`.
    list: RwLock<Vec<(u64, PieceCell<E>)>>,
    /// The piece-latch protocol: resource = the piece's immutable `lo`.
    locks: Arc<LockManager>,
    /// Owner ids for the lock manager, one per select call.
    next_owner: AtomicU64,
    strategy: ParallelStrategy,
    config: CrackConfig,
    rng: Mutex<SmallRng>,
    stats: Mutex<Stats>,
}

impl<E: Element> PieceLockedCracker<E> {
    /// Wraps `data` for concurrent use; `config.kernel` selects the
    /// reorganization kernel every piece split runs.
    ///
    /// # Panics
    /// If any key equals `u64::MAX` (reserved as the open upper bound).
    pub fn new(data: Vec<E>, strategy: ParallelStrategy, config: CrackConfig, seed: u64) -> Self {
        assert!(
            data.iter().all(|e| e.key() < u64::MAX),
            "u64::MAX keys are reserved"
        );
        let root = Arc::new(RwLock::new(PieceInner {
            lo: 0,
            hi: u64::MAX,
            data,
        }));
        Self {
            list: RwLock::new(vec![(0, root)]),
            locks: Arc::new(LockManager::new()),
            next_owner: AtomicU64::new(0),
            strategy,
            config,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            stats: Mutex::new(Stats::default()),
        }
    }

    /// [`PieceLockedCracker::new`] under [`CrackConfig::default`] — the
    /// pre-config constructor signature, kept as a shim.
    pub fn new_default(data: Vec<E>, strategy: ParallelStrategy, seed: u64) -> Self {
        Self::new(data, strategy, CrackConfig::default(), seed)
    }

    /// Handle (and immutable lower bound — the lock resource key) of the
    /// piece whose key range contains `key`.
    fn lookup(&self, key: u64) -> (u64, PieceCell<E>) {
        let list = self.list.read();
        let idx = list.partition_point(|(lo, _)| *lo <= key) - 1;
        (list[idx].0, Arc::clone(&list[idx].1))
    }

    /// Registers `cell` (with lower bound `lo`) in the list. Called while
    /// holding the *parent* piece's lock, so concurrent lookups of the
    /// moved key range spin on stale handles until this insert lands.
    fn register(&self, lo: u64, cell: PieceCell<E>) {
        let mut list = self.list.write();
        let idx = list.partition_point(|(l, _)| *l <= lo);
        debug_assert!(idx == 0 || list[idx - 1].0 < lo, "duplicate piece bound");
        list.insert(idx, (lo, cell));
    }

    /// Splits the locked piece at `bound`, partitioning its buffer in
    /// place with the configured kernel so keys `< bound` stay and keys
    /// `>= bound` move to a new piece (one tail copy). Returns the number
    /// of elements that moved.
    fn split_at(&self, g: &mut PieceInner<E>, bound: u64) -> usize {
        debug_assert!(g.lo < bound && bound < g.hi, "bound must be interior");
        let mut local = Stats::default();
        let pos = crack_in_two_policy(&mut g.data, bound, self.config.kernel, &mut local);
        let right = g.data.split_off(pos);
        let moved = right.len();
        let cell = Arc::new(RwLock::new(PieceInner {
            lo: bound,
            hi: g.hi,
            data: right,
        }));
        g.hi = bound;
        local.cracks += 1;
        self.register(bound, cell);
        *self.stats.lock() += local;
        moved
    }

    /// Answers `q` with `(count, key_sum)` over the qualifying keys.
    pub fn select_aggregate(&self, q: QueryRange) -> (usize, u64) {
        let mut count = 0usize;
        let mut sum = 0u64;
        self.select_for_each(q, |e| {
            count += 1;
            sum = sum.wrapping_add(e.key());
        });
        (count, sum)
    }

    /// Emits a fully covered piece's elements (the shared, read-only
    /// visit) and accounts the touch cost.
    fn emit_all(&self, data: &[E], f: &mut impl FnMut(E)) {
        let mut stats = Stats::default();
        stats.touched += data.len() as u64;
        for e in data {
            f(*e);
        }
        *self.stats.lock() += stats;
    }

    /// Runs `f` over every qualifying element, cracking en route.
    ///
    /// Walks the key space left to right, holding one piece grant at a
    /// time: fully covered pieces are visited in [`LockMode::Shared`]
    /// (concurrent readers proceed in parallel), partially covered end
    /// pieces upgrade to [`LockMode::Exclusive`] — releasing the shared
    /// grant first and re-validating bounds after, since the piece may
    /// split in the window — and are cracked (query-driven or
    /// stochastically, per the configured strategy) under that grant
    /// only.
    pub fn select_for_each(&self, q: QueryRange, mut f: impl FnMut(E)) {
        if q.is_empty() {
            return;
        }
        self.stats.lock().queries += 1;
        let owner = self.next_owner.fetch_add(1, Ordering::Relaxed);
        let mut cursor = q.low;
        loop {
            let (res_lo, cell) = self.lookup(cursor);
            let res = QueryRange::new(res_lo, res_lo + 1);
            // Optimistic shared visit first; piece latches wait
            // unbounded (the protocol is deadlock-free, so waits always
            // resolve).
            let grant = self
                .locks
                .acquire(owner, 0, res, LockMode::Shared, None)
                .expect("unbounded piece latch cannot time out");
            let g = cell.read();
            if !(g.lo <= cursor && cursor < g.hi) {
                // Stale handle: the piece was split after our lookup.
                continue;
            }
            let piece_hi = g.hi;
            if g.lo >= q.low && piece_hi <= q.high {
                self.emit_all(&g.data, &mut f);
            } else {
                // Partial coverage: this visit will crack. Upgrade by
                // release-and-reacquire, then re-validate.
                drop(g);
                drop(grant);
                let _grant = self
                    .locks
                    .acquire(owner, 0, res, LockMode::Exclusive, None)
                    .expect("unbounded piece latch cannot time out");
                let mut g = cell.write();
                if !(g.lo <= cursor && cursor < g.hi) {
                    continue;
                }
                let piece_hi = g.hi;
                if g.lo >= q.low && piece_hi <= q.high {
                    // Narrowed into full coverage during the upgrade
                    // window — nothing to crack after all.
                    self.emit_all(&g.data, &mut f);
                } else {
                    match self.strategy {
                        ParallelStrategy::Crack => self.crack_partial(&mut g, q, &mut f),
                        ParallelStrategy::Stochastic => self.stochastic_partial(&mut g, q, &mut f),
                    }
                }
                if piece_hi >= q.high {
                    return;
                }
                cursor = piece_hi;
                continue;
            }
            if piece_hi >= q.high {
                return;
            }
            cursor = piece_hi;
        }
    }

    /// Original cracking of a partially covered piece: crack on the
    /// interior bound(s), then emit the qualifying side.
    fn crack_partial(&self, g: &mut PieceInner<E>, q: QueryRange, f: &mut impl FnMut(E)) {
        // Crack on the low bound first (if interior): qualifiers move to
        // the retained left cell's tail... no — they move to the *new
        // right* cell, which we then process under the same parent lock
        // by re-partitioning the local view. To keep single-lock
        // discipline, partition locally instead: emit qualifying keys
        // directly, then register the crack(s).
        let lo_interior = q.low > g.lo;
        let hi_interior = q.high < g.hi;
        let mut stats = Stats::default();
        stats.touched += g.data.len() as u64;
        for e in &g.data {
            stats.comparisons += 2;
            if q.contains(e.key()) {
                f(*e);
            }
        }
        *self.stats.lock() += stats;
        // Physically split on the interior bounds (right-most first so
        // each split sees a piece still containing the next bound).
        if hi_interior {
            self.split_at(g, q.high);
        }
        if lo_interior && q.low < g.hi {
            self.split_at(g, q.low);
        }
    }

    /// Stochastic (MDD1R-flavored) handling of a partially covered piece:
    /// emit qualifiers during the scan, then split on a *random* pivot —
    /// never on the query bounds.
    fn stochastic_partial(&self, g: &mut PieceInner<E>, q: QueryRange, f: &mut impl FnMut(E)) {
        let mut stats = Stats::default();
        stats.touched += g.data.len() as u64;
        for e in &g.data {
            stats.comparisons += 2;
            if q.contains(e.key()) {
                f(*e);
                stats.materialized += 1;
            }
        }
        *self.stats.lock() += stats;
        if g.data.len() > 1 {
            let pivot = {
                let mut rng = self.rng.lock();
                g.data[rng.gen_range(0..g.data.len())].key()
            };
            if g.lo < pivot && pivot < g.hi {
                self.split_at(g, pivot);
            }
        }
    }

    /// Number of pieces (= cracks + 1).
    pub fn piece_count(&self) -> usize {
        self.list.read().len()
    }

    /// Snapshot of the physical cost counters.
    pub fn stats(&self) -> Stats {
        *self.stats.lock()
    }

    /// Snapshot of the piece-latch grant/wait/timeout counters.
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Entries left in the piece-latch table; zero once quiescent (the
    /// no-leaked-locks invariant the gauntlets assert).
    pub fn lock_residue(&self) -> usize {
        self.locks.residue()
    }

    /// Full integrity check (tests; not safe against concurrent writers).
    ///
    /// Verifies: list sorted by `lo`; bounds chain contiguously from 0 to
    /// `u64::MAX`; every key lies within its piece's bounds. Returns the
    /// total element count for multiset checks.
    pub fn check_integrity(&self) -> Result<usize, String> {
        let list = self.list.read();
        let mut expected_lo = 0u64;
        let mut total = 0usize;
        for (i, (lo, cell)) in list.iter().enumerate() {
            let g = cell.read();
            if g.lo != *lo {
                return Err(format!("piece {i}: list key {lo} != piece lo {}", g.lo));
            }
            if g.lo != expected_lo {
                return Err(format!("piece {i}: gap, expected lo {expected_lo}, got {}", g.lo));
            }
            if g.hi <= g.lo {
                return Err(format!("piece {i}: empty key range [{}, {})", g.lo, g.hi));
            }
            for e in &g.data {
                if !(g.lo <= e.key() && e.key() < g.hi) {
                    return Err(format!(
                        "piece {i}: key {} outside [{}, {})",
                        e.key(),
                        g.lo,
                        g.hi
                    ));
                }
            }
            total += g.data.len();
            expected_lo = g.hi;
        }
        if expected_lo != u64::MAX {
            return Err(format!("last piece ends at {expected_lo}, not u64::MAX"));
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 48_271) % n).collect()
    }

    fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
        data.iter()
            .filter(|k| q.contains(**k))
            .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    #[test]
    fn single_threaded_oracle_equivalence_both_strategies() {
        let data = permuted(20_000);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let plc = PieceLockedCracker::new(data.clone(), strategy, CrackConfig::default(), 5);
            for i in 0..200u64 {
                let a = (i * 97) % 19_000;
                let q = QueryRange::new(a, a + 317);
                assert_eq!(plc.select_aggregate(q), oracle(&data, q), "{strategy:?} q{i}");
            }
            let total = plc.check_integrity().unwrap();
            assert_eq!(total, data.len(), "{strategy:?}: multiset size");
            assert!(plc.piece_count() > 1, "{strategy:?}: must have cracked");
        }
    }

    #[test]
    fn kernel_policies_are_bit_identical() {
        // The PR-2 kernel contract at the concurrent layer: branchy and
        // branchless splits produce the same answers, the same piece
        // structure, and the same Stats counters query for query.
        use scrack_core::KernelPolicy;
        let data = permuted(30_000);
        let queries: Vec<QueryRange> = (0..150u64)
            .map(|i| {
                let a = (i * 193) % 28_000;
                QueryRange::new(a, a + 511)
            })
            .collect();
        type Run = (Vec<(usize, u64)>, usize, Stats);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let runs: Vec<Run> =
                [KernelPolicy::Branchy, KernelPolicy::Branchless]
                    .into_iter()
                    .map(|kernel| {
                        let plc = PieceLockedCracker::new(
                            data.clone(),
                            strategy,
                            CrackConfig::default().with_kernel(kernel),
                            5,
                        );
                        let answers = queries.iter().map(|q| plc.select_aggregate(*q)).collect();
                        plc.check_integrity().unwrap();
                        (answers, plc.piece_count(), plc.stats())
                    })
                    .collect();
            assert_eq!(runs[0].0, runs[1].0, "{strategy:?}: answers must match");
            assert_eq!(runs[0].1, runs[1].1, "{strategy:?}: piece counts must match");
            assert_eq!(runs[0].2, runs[1].2, "{strategy:?}: Stats must be bit-identical");
        }
    }

    #[test]
    fn query_spanning_many_pieces() {
        let data = permuted(10_000);
        let plc = PieceLockedCracker::new(data.clone(), ParallelStrategy::Crack, CrackConfig::default(), 5);
        // Create many pieces with narrow queries.
        for i in 0..50u64 {
            plc.select_aggregate(QueryRange::new(i * 200, i * 200 + 10));
        }
        // Then one query that spans nearly all of them.
        let q = QueryRange::new(100, 9_900);
        assert_eq!(plc.select_aggregate(q), oracle(&data, q));
        plc.check_integrity().unwrap();
    }

    #[test]
    fn boundary_queries() {
        let data = permuted(1000);
        let plc = PieceLockedCracker::new(data.clone(), ParallelStrategy::Crack, CrackConfig::default(), 5);
        for q in [
            QueryRange::new(0, 1000),       // everything
            QueryRange::new(0, 1),          // leftmost key
            QueryRange::new(999, 1000),     // rightmost key
            QueryRange::new(500, 500),      // empty
            QueryRange::new(2000, 3000),    // beyond the domain
            QueryRange::new(0, u64::MAX),   // unbounded
        ] {
            assert_eq!(plc.select_aggregate(q), oracle(&data, q), "{q}");
        }
        plc.check_integrity().unwrap();
    }

    #[test]
    fn repeat_query_stops_reorganizing_with_crack_strategy() {
        let data = permuted(5_000);
        let plc = PieceLockedCracker::new(data, ParallelStrategy::Crack, CrackConfig::default(), 5);
        let q = QueryRange::new(1_000, 2_000);
        plc.select_aggregate(q);
        let pieces = plc.piece_count();
        plc.select_aggregate(q);
        assert_eq!(plc.piece_count(), pieces, "repeat must not split further");
    }

    #[test]
    fn duplicates_and_empty_column() {
        let dupes: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let plc = PieceLockedCracker::new(dupes.clone(), ParallelStrategy::Stochastic, CrackConfig::default(), 5);
        for v in 0..10u64 {
            let q = QueryRange::new(v, v + 1);
            assert_eq!(plc.select_aggregate(q), oracle(&dupes, q));
        }
        plc.check_integrity().unwrap();

        let empty = PieceLockedCracker::<u64>::new(vec![], ParallelStrategy::Crack, CrackConfig::default(), 5);
        assert_eq!(empty.select_aggregate(QueryRange::new(0, 100)), (0, 0));
        empty.check_integrity().unwrap();
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_key_rejected() {
        PieceLockedCracker::new(vec![u64::MAX], ParallelStrategy::Crack, CrackConfig::default(), 5);
    }

    #[test]
    fn concurrent_disjoint_regions() {
        // Threads hammer disjoint key regions: after warmup they never
        // contend on the same piece; results must stay exact throughout.
        let n = 64_000u64;
        let data = permuted(n);
        let plc = Arc::new(PieceLockedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        ));
        let data = Arc::new(data);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let plc = Arc::clone(&plc);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                let region = t * 8_000;
                let mut state = 0x9E37_79B9u64 ^ (t + 1);
                for _ in 0..300 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let a = region + state % 7_500;
                    let q = QueryRange::new(a, a + 211);
                    assert_eq!(
                        plc.select_aggregate(q),
                        oracle(&data, q),
                        "thread {t} {q}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let total = plc.check_integrity().unwrap();
        assert_eq!(total, n as usize);
        assert!(plc.piece_count() > 8, "concurrent cracking happened");
        assert_eq!(plc.lock_residue(), 0, "piece-latch table must drain");
        assert!(plc.lock_stats().granted > 0);
    }

    #[test]
    fn concurrent_contended_hot_region() {
        // All threads query the SAME narrow region: maximum contention on
        // one piece, exercising the stale-handle retry path.
        let n = 32_000u64;
        let data = permuted(n);
        let plc = Arc::new(PieceLockedCracker::new(
            data.clone(),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        ));
        let data = Arc::new(data);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let plc = Arc::clone(&plc);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                let mut state = 0xDEAD_BEEFu64 ^ (t + 1);
                for _ in 0..200 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let a = 15_000 + state % 2_000;
                    let q = QueryRange::new(a, a + (state % 97) + 1);
                    assert_eq!(plc.select_aggregate(q), oracle(&data, q));
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let total = plc.check_integrity().unwrap();
        assert_eq!(total, n as usize);
        assert_eq!(plc.lock_residue(), 0, "piece-latch table must drain");
    }
}
