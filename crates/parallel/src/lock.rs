//! A shared/exclusive range-lock manager — the workspace's one locking
//! story for session-level concurrency control.
//!
//! Alvarez et al. ("Main Memory Adaptive Indexing for Multi-core
//! Systems") motivate making piece-level coordination a first-class
//! latch protocol rather than ad-hoc per-piece mutexes. [`LockManager`]
//! is that protocol: a single table of per-resource (shard × key-range)
//! shared/exclusive requests with
//!
//! * **FIFO anti-starvation grants** — a request is granted only when it
//!   conflicts with no *granted* request and no *earlier-queued* waiter,
//!   so a stream of readers can never starve a queued writer;
//! * **wait-timeout with bounded exponential backoff** — waiters sleep
//!   on a condvar in slices that double up to a cap, re-checking
//!   grantability after every wake, and give up with
//!   [`LockError::TimedOut`] once their deadline budget is spent (the
//!   *timeout-wound* deadlock resolution: the victim aborts cleanly and
//!   may retry);
//! * **RAII guards** — a [`LockGuard`] releases its entry and wakes all
//!   waiters on drop, so a panicking (and unwound) holder can never
//!   strand the queue.
//!
//! The manager is deliberately engine-agnostic: resources are
//! `(shard, [low, high))` pairs, where a *point* resource `[k, k+1)`
//! models a single-key write lock and a wider range models a piece or a
//! whole-shard latch. Two requests conflict iff they name the same
//! shard, their ranges overlap, their owners differ, and at least one is
//! [`LockMode::Exclusive`]. Requests by the same owner never conflict
//! with each other, which makes per-owner re-acquisition safe.
//!
//! Internally the table is a `std::sync::Mutex` + `Condvar` (the
//! vendored `parking_lot` facade intentionally omits condition
//! variables); all accesses recover from poisoning, because the
//! surrounding serving stack catches panics and keeps going — a poisoned
//! lock table must degrade to "inspect and continue", never to a second
//! panic.

use scrack_types::QueryRange;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Requested access mode for a lock resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Concurrent readers: compatible with other `Shared` holders.
    Shared,
    /// Single writer: conflicts with every other owner's overlap.
    Exclusive,
}

/// Why an acquisition failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockError {
    /// The deadline budget ran out before the request became grantable.
    ///
    /// This is also how deadlocks resolve (timeout-wound): the victim's
    /// request is removed from the queue, so the cycle breaks and the
    /// survivors make progress.
    TimedOut,
}

/// One request in the lock table, queued in arrival (FIFO) order.
#[derive(Debug)]
struct Entry {
    id: u64,
    owner: u64,
    shard: usize,
    low: u64,
    high: u64,
    mode: LockMode,
    granted: bool,
}

impl Entry {
    fn conflicts(&self, other: &Entry) -> bool {
        self.owner != other.owner
            && self.shard == other.shard
            && self.low < other.high
            && other.low < self.high
            && (self.mode == LockMode::Exclusive || other.mode == LockMode::Exclusive)
    }
}

/// Counters for observability and the zero-residue gauntlet asserts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted (immediately or after waiting).
    pub granted: u64,
    /// Requests that had to wait at least one backoff slice.
    pub waited: u64,
    /// Requests abandoned on deadline (timeout-wound victims).
    pub timed_out: u64,
}

#[derive(Debug, Default)]
struct LockTable {
    entries: Vec<Entry>,
    next_id: u64,
    stats: LockStats,
}

impl LockTable {
    /// FIFO grant rule: grantable iff no conflict with any granted entry
    /// and no conflict with any *earlier* queued entry (granted or not).
    fn grantable(&self, idx: usize) -> bool {
        let e = &self.entries[idx];
        self.entries
            .iter()
            .enumerate()
            .all(|(i, other)| !(other.granted || i < idx) || i == idx || !e.conflicts(other))
    }

    fn position(&self, id: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }
}

/// The shared/exclusive range-lock manager (see module docs).
///
/// Cheap to share: wrap in an [`Arc`] and clone the handle freely.
///
/// ```
/// use scrack_parallel::lock::{LockManager, LockMode};
/// use scrack_types::QueryRange;
/// use std::sync::Arc;
///
/// let mgr = Arc::new(LockManager::new());
/// let a = mgr.acquire(1, 0, QueryRange::new(10, 20), LockMode::Shared, None).unwrap();
/// // A second reader on the same range is granted immediately.
/// let b = mgr.acquire(2, 0, QueryRange::new(10, 20), LockMode::Shared, None).unwrap();
/// drop((a, b));
/// assert_eq!(mgr.residue(), 0);
/// ```
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<LockTable>,
    cv: Condvar,
}

/// Shortest backoff slice while waiting for a grant.
const BACKOFF_MIN: Duration = Duration::from_micros(50);
/// Longest backoff slice; waits double from `BACKOFF_MIN` up to here.
const BACKOFF_MAX: Duration = Duration::from_millis(4);

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    fn table(&self) -> MutexGuard<'_, LockTable> {
        // Poison recovery: the serving stack survives panics, so must we.
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires `mode` on resource `(shard, [range.low, range.high))`
    /// for `owner`, waiting at most `budget` (forever if `None`).
    ///
    /// Waits sleep in bounded exponentially growing condvar slices and
    /// re-check grantability on every wake, so releases propagate
    /// promptly while contended spins stay cheap. On timeout the queued
    /// request is removed (waking anyone queued behind it) and
    /// [`LockError::TimedOut`] is returned — the caller aborts or
    /// retries; nothing is left in the table either way.
    pub fn acquire(
        self: &Arc<Self>,
        owner: u64,
        shard: usize,
        range: QueryRange,
        mode: LockMode,
        budget: Option<Duration>,
    ) -> Result<LockGuard, LockError> {
        let deadline = budget.map(|b| Instant::now() + b);
        let mut t = self.table();
        let id = t.next_id;
        t.next_id += 1;
        t.entries.push(Entry {
            id,
            owner,
            shard,
            low: range.low,
            high: range.high,
            mode,
            granted: false,
        });
        let mut slice = BACKOFF_MIN;
        let mut waited = false;
        loop {
            // Position can shift as earlier entries release or time out.
            let idx = t.position(id).expect("own entry vanished");
            if t.grantable(idx) {
                t.entries[idx].granted = true;
                t.stats.granted += 1;
                if waited {
                    t.stats.waited += 1;
                }
                return Ok(LockGuard {
                    mgr: Arc::clone(self),
                    id,
                    owner,
                    shard,
                });
            }
            waited = true;
            let wait_for = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        let idx = t.position(id).expect("own entry vanished");
                        t.entries.remove(idx);
                        t.stats.timed_out += 1;
                        drop(t);
                        // Our departure may unblock entries queued after us.
                        self.cv.notify_all();
                        return Err(LockError::TimedOut);
                    }
                    slice.min(d - now)
                }
                None => slice,
            };
            let (guard, _) = self
                .cv
                .wait_timeout(t, wait_for)
                .unwrap_or_else(|e| e.into_inner());
            t = guard;
            slice = (slice * 2).min(BACKOFF_MAX);
        }
    }

    /// Releases entry `id` (guard drop path) and wakes all waiters.
    fn release(&self, id: u64) {
        let mut t = self.table();
        if let Some(idx) = t.position(id) {
            t.entries.remove(idx);
        }
        drop(t);
        self.cv.notify_all();
    }

    /// Total entries in the table — granted or queued. Zero after every
    /// well-behaved schedule; the gauntlets assert exactly that.
    pub fn residue(&self) -> usize {
        self.table().entries.len()
    }

    /// Entries (granted or queued) belonging to `owner`.
    pub fn held_by(&self, owner: u64) -> usize {
        self.table().entries.iter().filter(|e| e.owner == owner).count()
    }

    /// Snapshot of the grant/wait/timeout counters.
    pub fn stats(&self) -> LockStats {
        self.table().stats
    }
}

/// RAII grant: releases its table entry and wakes all waiters on drop.
///
/// Guards are the *only* way to hold a lock, so an unwound panic in the
/// holder releases exactly like a normal return — the queue can never be
/// stranded by a crash.
#[derive(Debug)]
pub struct LockGuard {
    mgr: Arc<LockManager>,
    id: u64,
    owner: u64,
    shard: usize,
}

impl LockGuard {
    /// The owner id this grant belongs to.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// The shard this grant covers.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.mgr.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn r(lo: u64, hi: u64) -> QueryRange {
        QueryRange::new(lo, hi)
    }

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let mgr = Arc::new(LockManager::new());
        let s1 = mgr.acquire(1, 0, r(0, 100), LockMode::Shared, None).unwrap();
        let s2 = mgr.acquire(2, 0, r(50, 150), LockMode::Shared, None).unwrap();
        // Overlapping exclusive by a third owner cannot be granted now.
        let err = mgr.acquire(3, 0, r(90, 110), LockMode::Exclusive, Some(Duration::from_millis(5)));
        assert_eq!(err.unwrap_err(), LockError::TimedOut);
        drop(s1);
        drop(s2);
        let x = mgr.acquire(3, 0, r(90, 110), LockMode::Exclusive, None).unwrap();
        drop(x);
        assert_eq!(mgr.residue(), 0);
        assert_eq!(mgr.stats().timed_out, 1);
    }

    #[test]
    fn disjoint_ranges_and_shards_never_conflict() {
        let mgr = Arc::new(LockManager::new());
        let a = mgr.acquire(1, 0, r(0, 10), LockMode::Exclusive, None).unwrap();
        let b = mgr.acquire(2, 0, r(10, 20), LockMode::Exclusive, None).unwrap();
        let c = mgr.acquire(3, 1, r(0, 10), LockMode::Exclusive, None).unwrap();
        drop((a, b, c));
        assert_eq!(mgr.residue(), 0);
    }

    #[test]
    fn same_owner_never_self_conflicts() {
        let mgr = Arc::new(LockManager::new());
        let a = mgr.acquire(7, 0, r(0, 100), LockMode::Exclusive, None).unwrap();
        let b = mgr
            .acquire(7, 0, r(0, 100), LockMode::Exclusive, Some(Duration::from_millis(1)))
            .unwrap();
        drop((a, b));
        assert_eq!(mgr.residue(), 0);
    }

    #[test]
    fn fifo_blocks_late_readers_behind_queued_writer() {
        // Reader holds; writer queues; a LATER reader must not leapfrog
        // the writer (anti-starvation), even though it is compatible with
        // the granted reader.
        let mgr = Arc::new(LockManager::new());
        let s1 = mgr.acquire(1, 0, r(0, 100), LockMode::Shared, None).unwrap();
        let m2 = Arc::clone(&mgr);
        let writer = thread::spawn(move || {
            let g = m2.acquire(2, 0, r(0, 100), LockMode::Exclusive, None).unwrap();
            drop(g);
        });
        // Wait until the writer is queued.
        while mgr.residue() < 2 {
            thread::yield_now();
        }
        // The late reader times out: it is behind the queued writer.
        let late = mgr.acquire(3, 0, r(0, 100), LockMode::Shared, Some(Duration::from_millis(5)));
        assert_eq!(late.unwrap_err(), LockError::TimedOut);
        drop(s1);
        writer.join().unwrap();
        assert_eq!(mgr.residue(), 0);
    }

    #[test]
    fn timeout_wound_breaks_deadlock() {
        // Owner 1 holds A and wants B; owner 2 holds B and wants A.
        // Bounded budgets wound at least one victim; afterwards the
        // table is clean and the survivor (if any) finished.
        let mgr = Arc::new(LockManager::new());
        let a1 = mgr.acquire(1, 0, r(0, 10), LockMode::Exclusive, None).unwrap();
        let b2 = mgr.acquire(2, 0, r(10, 20), LockMode::Exclusive, None).unwrap();
        let m1 = Arc::clone(&mgr);
        let t1 = thread::spawn(move || {
            let got = m1.acquire(1, 0, r(10, 20), LockMode::Exclusive, Some(Duration::from_millis(20)));
            drop(a1);
            got.is_ok()
        });
        let m2 = Arc::clone(&mgr);
        let t2 = thread::spawn(move || {
            let got = m2.acquire(2, 0, r(0, 10), LockMode::Exclusive, Some(Duration::from_millis(20)));
            drop(b2);
            got.is_ok()
        });
        let ok1 = t1.join().unwrap();
        let ok2 = t2.join().unwrap();
        assert!(!(ok1 && ok2), "a true deadlock cannot grant both");
        assert_eq!(mgr.residue(), 0, "no residue after wound + release");
    }

    #[test]
    fn guard_drop_during_unwind_releases() {
        let mgr = Arc::new(LockManager::new());
        let m = Arc::clone(&mgr);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = m.acquire(1, 0, r(0, 10), LockMode::Exclusive, None).unwrap();
            panic!("holder dies");
        }));
        assert!(res.is_err());
        assert_eq!(mgr.residue(), 0, "unwound guard must release");
        let g = mgr.acquire(2, 0, r(0, 10), LockMode::Exclusive, Some(Duration::from_millis(5)));
        assert!(g.is_ok(), "resource usable after holder panic");
    }

    #[test]
    fn contended_writers_all_make_progress() {
        let mgr = Arc::new(LockManager::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let mgr = Arc::clone(&mgr);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let g = mgr.acquire(t, 0, r(40, 60), LockMode::Exclusive, None).unwrap();
                    counter.fetch_add(1, Ordering::SeqCst);
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(mgr.residue(), 0);
        assert_eq!(mgr.stats().granted, 200);
    }
}
