//! Batched, partition-parallel query execution.
//!
//! The wrappers in this crate parallelize *within* one query
//! ([`ShardedCracker`](crate::ShardedCracker)) or serialize concurrent
//! streams behind locks ([`SharedCracker`](crate::SharedCracker),
//! [`PieceLockedCracker`](crate::PieceLockedCracker)). A throughput
//! system gets a third shape: queries arrive in **batches**, and the
//! scheduler routes each query to the data that can answer it. That is
//! the coarse-grained parallel adaptive indexing of Alvarez et al.,
//! *Main Memory Adaptive Indexing for Multi-core Systems* (DaMoN 2014):
//! range-partition the column once, give every partition its own worker
//! and work queue, and let partitions crack independently — no locks on
//! the hot path at all.
//!
//! # Design
//!
//! At construction the column is split into `shard_count` **key-disjoint
//! shards** on quantile bounds (introselect over a scratch copy picks the
//! bounds; the physical split runs the configured
//! [`KernelPolicy`](scrack_core::KernelPolicy) kernel). Each shard owns
//! an independent [`CrackedColumn`] plus its own seeded RNG stream.
//!
//! [`BatchScheduler::execute`] takes a batch of [`QueryRange`]s and
//! 1. **routes**: each query is clipped against every overlapping
//!    shard's key span — the group-by-key-region step; narrow queries
//!    land on exactly one shard;
//! 2. **sorts** each shard's queue by clipped bound (queries touching
//!    the same key region run back to back, cache-warm);
//! 3. **executes** shard queues in parallel on the work-stealing
//!    [`executor`](crate::executor) — shards share nothing, so
//!    reorganization never contends; shards with empty queues spawn no
//!    task, live workers cap at available parallelism, and idle workers
//!    steal queued shards so a skewed batch cannot idle cores;
//! 4. **merges** the per-shard partial aggregates back into one
//!    `(count, key_sum)` per query, in submission order.
//!
//! # Mixed read/write batches
//!
//! [`BatchScheduler::execute_ops`] generalizes the batch to interleaved
//! [`BatchOp`]s: selects route as above, inserts and deletes are
//! **key-routed** to the single shard owning their key and queue into
//! that shard's [`PendingUpdates`] set (the paper's §5 update model,
//! per shard). A select merges the qualifying pending updates of its
//! shard — under the column's configured
//! [`scrack_core::UpdatePolicy`], batched merge-ripple by default —
//! before answering. Op queues preserve submission order (no key-region
//! sort), so each select observes exactly the updates submitted before
//! it, on every shard, under every interleaving.
//!
//! # Determinism
//!
//! Each shard drains its queue in a fixed order with its own RNG, so the
//! work a shard performs is independent of thread scheduling.
//! [`BatchScheduler::execute_serial`] (and
//! [`BatchScheduler::execute_ops_serial`] for mixed batches) replays the
//! identical per-shard queues on the calling thread; results *and*
//! [`Stats`] are bit-identical to the parallel path under any
//! interleaving (pinned by `tests/threaded_determinism.rs`).

use crate::resilience::{
    AdmissionPolicy, BatchReport, QueryOutcome, ResilienceStats, ServingConfig, ShardHealth,
};
use crate::ParallelStrategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, CrackedColumn, FaultInjector, FaultKind};
use scrack_types::{Element, QueryRange, Stats};
use scrack_updates::PendingUpdates;
use std::time::{Duration, Instant};

/// Recently served crack bounds a shard remembers for its post-
/// quarantine rebuild (enough to re-warm the hot key regions, small
/// enough that a rebuild stays O(sample × piece)).
const RECENT_BOUNDS_CAP: usize = 32;

/// One resilient wave's per-query partial aggregates, keyed by query
/// index (`None` = the query's deadline expired before it started).
type WavePartials = Vec<(usize, Option<(usize, u64)>)>;

/// One operation of a mixed read/write batch.
///
/// Updates follow the paper's §5 model inside every shard: they queue on
/// arrival and are merged (per the column's configured
/// [`scrack_core::UpdatePolicy`]) by the first *later* select in the
/// batch stream whose range they qualify for — submission order within a
/// shard is execution order, so a select observes exactly the updates
/// submitted before it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchOp<E> {
    /// A range select; produces a `(count, key_sum)` result.
    Select(QueryRange),
    /// Insert one element; the result slot stays `(0, 0)`.
    Insert(E),
    /// Delete one element with this key (absent keys evaporate); the
    /// result slot stays `(0, 0)`.
    Delete(u64),
}

/// The executor's work list: each live shard paired with its non-empty
/// queue of `(submission index, item)` entries.
type ShardTasks<'a, E, Q> = Vec<(&'a mut BatchShard<E>, &'a Vec<(usize, Q)>)>;

/// One key-range shard: its key span, cracker column, pending-update
/// queue, and RNG stream.
#[derive(Debug)]
struct BatchShard<E: Element> {
    /// Keys `k` of this shard satisfy `span.low <= k < span.high`.
    span: QueryRange,
    col: CrackedColumn<E>,
    pending: PendingUpdates<E>,
    rng: SmallRng,
    /// Position in the degradation ladder (see [`ShardHealth`]).
    health: ShardHealth,
    /// Shard-level fault sites (poison, overload), scoped to this shard.
    fault: FaultInjector,
    /// Ring of recently served crack bounds for the rebuild re-crack.
    recent_bounds: Vec<u64>,
}

impl<E: Element> BatchShard<E> {
    /// Builds one shard; `owner` scopes any planned fault so a targeted
    /// plan arms exactly one shard.
    fn build(span: QueryRange, data: Vec<E>, config: CrackConfig, seed: u64, owner: usize) -> Self {
        let scoped = config.fault.scoped_to(owner);
        BatchShard {
            span,
            col: CrackedColumn::new(data, config.with_fault(scoped)),
            pending: PendingUpdates::new(),
            rng: SmallRng::seed_from_u64(seed),
            health: ShardHealth::Healthy,
            fault: FaultInjector::new(scoped),
            recent_bounds: Vec::new(),
        }
    }
    /// Answers one clipped query against this shard.
    fn select(&mut self, q: QueryRange, strategy: ParallelStrategy) -> (usize, u64) {
        self.pending.merge_qualifying(&mut self.col, q);
        let out = match strategy {
            ParallelStrategy::Crack => self.col.select_original(q),
            ParallelStrategy::Stochastic => self.col.mdd1r_select(q, &mut self.rng),
        };
        out.resolve(self.col.data())
            .fold((0usize, 0u64), |(c, s), e| (c + 1, s.wrapping_add(e.key())))
    }

    /// Drains `queue` in order, answering each clipped query against this
    /// shard; returns `(query_index, count, key_sum)` partials.
    fn drain(
        &mut self,
        queue: &[(usize, QueryRange)],
        strategy: ParallelStrategy,
    ) -> Vec<(usize, usize, u64)> {
        queue
            .iter()
            .map(|&(qi, q)| {
                let (count, sum) = self.select(q, strategy);
                (qi, count, sum)
            })
            .collect()
    }

    /// Scan of the shard's current contents — the quarantine serving
    /// path: no cracking, no index, bit-identical aggregates (they only
    /// depend on the data multiset, which cracking preserves). Merges
    /// any pending updates first so visibility matches the healthy path.
    fn select_scan(&mut self, q: QueryRange) -> (usize, u64) {
        self.pending.merge_all(&mut self.col);
        self.col
            .data()
            .iter()
            .filter(|e| q.contains(e.key()))
            .fold((0usize, 0u64), |(c, s), e| (c + 1, s.wrapping_add(e.key())))
    }

    /// Enters quarantine: the cracker index is discarded (the data
    /// multiset survives — cracking only swaps), pending updates fold
    /// into the base data, and the shard serves scans for
    /// `batches_left` more batches before rebuilding.
    fn quarantine(&mut self, batches_left: u32) {
        self.col.quarantine_rebuild();
        self.pending.merge_all(&mut self.col);
        self.health = ShardHealth::Quarantined { batches_left };
    }

    /// Leaves quarantine: re-cracks the remembered recently-served
    /// bounds so hot key regions are warm again, then resumes adaptive
    /// serving.
    fn rebuild(&mut self) {
        for b in std::mem::take(&mut self.recent_bounds) {
            if self.span.contains(b) {
                self.col.crack_on(b);
            }
        }
        self.health = ShardHealth::Healthy;
    }

    /// Remembers a served query's bounds for the rebuild re-crack.
    fn note_bounds(&mut self, q: QueryRange) {
        for b in [q.low, q.high] {
            if self.recent_bounds.len() == RECENT_BOUNDS_CAP {
                self.recent_bounds.remove(0);
            }
            self.recent_bounds.push(b);
        }
    }

    /// Drains one resilient wave's queue: per query, deadline check,
    /// then the health ladder (poison fault → quarantine; quarantined →
    /// scan; healthy → adaptive select). Returns per-query partials
    /// (`None` = deadline expired) and whether this drain entered
    /// quarantine.
    fn drain_resilient(
        &mut self,
        queue: &[(usize, QueryRange)],
        strategy: ParallelStrategy,
        arrival: Instant,
        deadline: Option<Duration>,
        rebuild_after: u32,
    ) -> (WavePartials, bool) {
        let mut newly_quarantined = false;
        let partials = queue
            .iter()
            .map(|&(qi, q)| {
                if deadline.is_some_and(|d| arrival.elapsed() > d) {
                    return (qi, None);
                }
                if self.health == ShardHealth::Healthy && self.fault.poll(FaultKind::PoisonShard) {
                    self.quarantine(rebuild_after);
                    newly_quarantined = true;
                }
                let ans = match self.health {
                    ShardHealth::Healthy => {
                        self.note_bounds(q);
                        self.select(q, strategy)
                    }
                    ShardHealth::Quarantined { .. } => self.select_scan(q),
                };
                (qi, Some(ans))
            })
            .collect();
        (partials, newly_quarantined)
    }

    /// Drains a mixed op queue in submission order; selects produce
    /// partials, updates queue into the shard's pending set.
    fn drain_ops(
        &mut self,
        queue: &[(usize, BatchOp<E>)],
        strategy: ParallelStrategy,
    ) -> Vec<(usize, usize, u64)> {
        let mut partials = Vec::new();
        for &(qi, op) in queue {
            match op {
                BatchOp::Select(q) => {
                    let (count, sum) = self.select(q, strategy);
                    partials.push((qi, count, sum));
                }
                BatchOp::Insert(e) => self.pending.queue_insert(e),
                BatchOp::Delete(k) => self.pending.queue_delete(k),
            }
        }
        partials
    }
}

/// A batch scheduler over key-range partitioned shards (see module docs).
///
/// ```
/// use scrack_core::CrackConfig;
/// use scrack_parallel::{BatchScheduler, ParallelStrategy};
/// use scrack_types::QueryRange;
///
/// let data: Vec<u64> = (0..50_000).rev().collect();
/// let mut sched = BatchScheduler::new(
///     data, 4, ParallelStrategy::Stochastic, CrackConfig::default(), 7,
/// );
/// let batch: Vec<QueryRange> = (0..64u64)
///     .map(|i| QueryRange::new(i * 700, i * 700 + 350))
///     .collect();
/// let results = sched.execute(&batch);
/// // Per-query results come back in submission order.
/// assert_eq!(results.len(), batch.len());
/// assert_eq!(results[0].0, 350);
/// ```
#[derive(Debug)]
pub struct BatchScheduler<E: Element> {
    shards: Vec<BatchShard<E>>,
    strategy: ParallelStrategy,
    /// Per-shard work queues, kept across batches and refilled in place:
    /// steady-state batches route without allocating.
    queues: Vec<Vec<(usize, QueryRange)>>,
    /// Per-shard mixed-op queues for [`BatchScheduler::execute_ops`],
    /// reused the same way.
    op_queues: Vec<Vec<(usize, BatchOp<E>)>>,
    /// Cumulative counters over every resilient batch served.
    resilience: ResilienceStats,
}

/// Per-query progress through [`BatchScheduler::execute_resilient`]'s
/// admission waves.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Waiting for admission; `retries` shed-retry waves so far.
    Pending { retries: u32 },
    /// Final verdict reached.
    Done(QueryOutcome),
}

impl<E: Element> BatchScheduler<E> {
    /// Range-partitions `data` into (up to) `shard_count` key-disjoint
    /// shards on quantile bounds and prepares one cracker per shard.
    ///
    /// Heavily duplicated keys can collapse adjacent quantiles; equal
    /// bounds merge, so the shard count may come out lower than asked —
    /// key-disjointness is never violated.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn new(
        data: Vec<E>,
        shard_count: usize,
        strategy: ParallelStrategy,
        config: CrackConfig,
        seed: u64,
    ) -> Self {
        // Quantile-bound partitioning (construction-time cost,
        // deliberately not charged to the query Stats) is shared with
        // the other key-routed layers via `key_disjoint_partitions`.
        let shards: Vec<BatchShard<E>> =
            crate::sharded::key_disjoint_partitions(data, shard_count, config.kernel)
                .into_iter()
                .enumerate()
                .map(|(i, (span, part))| {
                    BatchShard::build(span, part, config, seed.wrapping_add(i as u64), i)
                })
                .collect();
        let queues = vec![Vec::new(); shards.len()];
        let op_queues = vec![Vec::new(); shards.len()];
        Self {
            shards,
            strategy,
            queues,
            op_queues,
            resilience: ResilienceStats::default(),
        }
    }

    /// [`BatchScheduler::new`] under [`CrackConfig::default`].
    pub fn new_default(
        data: Vec<E>,
        shard_count: usize,
        strategy: ParallelStrategy,
        seed: u64,
    ) -> Self {
        Self::new(data, shard_count, strategy, CrackConfig::default(), seed)
    }

    /// Number of shards (may be lower than asked; see [`BatchScheduler::new`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The key span `[low, high)` of every shard, in key order. Spans are
    /// disjoint and cover `[0, u64::MAX)`.
    pub fn shard_spans(&self) -> Vec<QueryRange> {
        self.shards.iter().map(|s| s.span).collect()
    }

    /// Fills the reusable per-shard work queues for `batch`: route (clip
    /// against each shard span, dropping empty intersections), then sort
    /// each queue by clipped bounds so a shard works key regions back to
    /// back. The queues are cleared, not reallocated, between batches.
    fn build_queues(&mut self, batch: &[QueryRange]) {
        for queue in &mut self.queues {
            queue.clear();
        }
        for (qi, q) in batch.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            for (si, shard) in self.shards.iter().enumerate() {
                let clipped = q.intersect(&shard.span);
                if !clipped.is_empty() {
                    self.queues[si].push((qi, clipped));
                }
            }
        }
        for queue in &mut self.queues {
            queue.sort_by_key(|&(qi, q)| (q.low, q.high, qi));
        }
    }

    /// Merges per-shard partials into per-query `(count, key_sum)`
    /// results in submission order. Queries with no qualifying tuples
    /// (or empty ranges) come back as `(0, 0)`.
    fn merge(batch_len: usize, partials: Vec<Vec<(usize, usize, u64)>>) -> Vec<(usize, u64)> {
        let mut results = vec![(0usize, 0u64); batch_len];
        for part in partials {
            for (qi, count, sum) in part {
                results[qi].0 += count;
                results[qi].1 = results[qi].1.wrapping_add(sum);
            }
        }
        results
    }

    /// Executes `batch` partition-parallel on the work-stealing
    /// [`executor`](crate::executor): shards with empty queues spawn no
    /// task, live workers cap at available parallelism, and idle workers
    /// steal queued shards, so a skewed batch cannot idle cores. Partials
    /// merge into per-query `(count, key_sum)` results in submission
    /// order.
    pub fn execute(&mut self, batch: &[QueryRange]) -> Vec<(usize, u64)> {
        self.build_queues(batch);
        let strategy = self.strategy;
        let Self { shards, queues, .. } = self;
        let tasks: ShardTasks<'_, E, QueryRange> = shards
            .iter_mut()
            .zip(queues.iter())
            .filter(|(_, queue)| !queue.is_empty())
            .collect();
        let workers = crate::executor::worker_count(tasks.len());
        let partials = crate::executor::run_tasks(workers, tasks, |_, (shard, queue)| {
            shard.drain(queue, strategy)
        });
        Self::merge(batch.len(), partials)
    }

    /// [`BatchScheduler::execute`] on the calling thread: identical
    /// queues drained in shard order. Answers and [`Stats`] are
    /// bit-identical to the parallel path — the determinism oracle.
    pub fn execute_serial(&mut self, batch: &[QueryRange]) -> Vec<(usize, u64)> {
        self.build_queues(batch);
        let strategy = self.strategy;
        let Self { shards, queues, .. } = self;
        let partials: Vec<Vec<(usize, usize, u64)>> = shards
            .iter_mut()
            .zip(queues.iter())
            .map(|(shard, queue)| shard.drain(queue, strategy))
            .collect();
        Self::merge(batch.len(), partials)
    }

    /// Fills the reusable per-shard op queues for a mixed batch: selects
    /// are clipped against every overlapping shard span (as in
    /// [`BatchScheduler::build_queues`]); inserts and deletes are
    /// **key-routed** to the single shard whose span holds their key.
    /// Unlike the query-only path, queues are *not* sorted — submission
    /// order is execution order, so selects observe exactly the updates
    /// submitted before them.
    fn build_op_queues(&mut self, ops: &[BatchOp<E>]) {
        for queue in &mut self.op_queues {
            queue.clear();
        }
        for (qi, op) in ops.iter().enumerate() {
            match *op {
                BatchOp::Select(q) => {
                    if q.is_empty() {
                        continue;
                    }
                    for (si, shard) in self.shards.iter().enumerate() {
                        let clipped = q.intersect(&shard.span);
                        if !clipped.is_empty() {
                            self.op_queues[si].push((qi, BatchOp::Select(clipped)));
                        }
                    }
                }
                BatchOp::Insert(e) => {
                    let si = self.route(e.key());
                    self.op_queues[si].push((qi, *op));
                }
                BatchOp::Delete(k) => {
                    let si = self.route(k);
                    self.op_queues[si].push((qi, *op));
                }
            }
        }
    }

    /// The shard owning `key`. Spans chain contiguously over
    /// `[0, u64::MAX)`, so every key except `u64::MAX` itself is covered;
    /// that one unreachable key maps to the last shard. Any *other* miss
    /// is a span-partitioning bug — fail loudly instead of silently
    /// misrouting the update.
    fn route(&self, key: u64) -> usize {
        match self.shards.iter().position(|s| s.span.contains(key)) {
            Some(si) => si,
            None => {
                debug_assert_eq!(
                    key,
                    u64::MAX,
                    "key {key} not covered by any shard span — partitioning bug"
                );
                self.shards.len() - 1
            }
        }
    }

    /// Executes a mixed read/write batch partition-parallel on the
    /// work-stealing [`executor`](crate::executor) (empty op queues spawn
    /// no task; live workers cap at available parallelism). Each shard
    /// drains its op queue in submission order. Returns one
    /// `(count, key_sum)` per op in submission order; update ops report
    /// `(0, 0)`.
    ///
    /// Updates queue into their shard's pending set and merge on the
    /// first later qualifying select (possibly in a later batch — call
    /// [`BatchScheduler::flush_updates`] to force a checkpoint).
    pub fn execute_ops(&mut self, ops: &[BatchOp<E>]) -> Vec<(usize, u64)> {
        self.build_op_queues(ops);
        let strategy = self.strategy;
        let Self {
            shards, op_queues, ..
        } = self;
        let tasks: ShardTasks<'_, E, BatchOp<E>> = shards
            .iter_mut()
            .zip(op_queues.iter())
            .filter(|(_, queue)| !queue.is_empty())
            .collect();
        let workers = crate::executor::worker_count(tasks.len());
        let partials = crate::executor::run_tasks(workers, tasks, |_, (shard, queue)| {
            shard.drain_ops(queue, strategy)
        });
        Self::merge(ops.len(), partials)
    }

    /// [`BatchScheduler::execute_ops`] on the calling thread: identical
    /// queues drained in shard order. Answers and [`Stats`] are
    /// bit-identical to the parallel path — the determinism oracle for
    /// mixed batches.
    pub fn execute_ops_serial(&mut self, ops: &[BatchOp<E>]) -> Vec<(usize, u64)> {
        self.build_op_queues(ops);
        let strategy = self.strategy;
        let Self {
            shards, op_queues, ..
        } = self;
        let partials: Vec<Vec<(usize, usize, u64)>> = shards
            .iter_mut()
            .zip(op_queues.iter())
            .map(|(shard, queue)| shard.drain_ops(queue, strategy))
            .collect();
        Self::merge(ops.len(), partials)
    }

    /// Updates queued across all shards but not yet merged into a
    /// cracker column.
    pub fn pending_updates(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pending.pending_inserts() + s.pending.pending_deletes())
            .sum()
    }

    /// Merges every pending update in every shard now (a checkpoint),
    /// returning how many were applied.
    pub fn flush_updates(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.pending.merge_all(&mut s.col))
            .sum()
    }

    /// Aggregated physical costs across shards (splitting the column at
    /// construction is not included).
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for shard in &self.shards {
            s += shard.col.stats();
        }
        s
    }

    /// Switches the scheduler's live configuration online: the serving
    /// strategy changes immediately and every shard's column is rebuilt
    /// from its current physical data under `config` — the per-shard
    /// analogue of [`CrackedColumn::quarantine_rebuild`], except the new
    /// config takes effect. Pending updates flush into the data first so
    /// the tuple multiset (and therefore every later answer) transfers
    /// exactly; earned cracks are discarded; shard key spans are
    /// unchanged.
    ///
    /// Per-shard RNG streams and fault scoping re-derive from `seed` and
    /// `config` exactly as at construction, shard health resets to
    /// healthy, and the remembered rebuild bounds clear. Each shard's
    /// [`Stats`] restart at zero; the counters accumulated so far are
    /// returned so callers tracking cumulative cost across
    /// reconfigurations (the self-driving layer) can retire them.
    pub fn reconfigure(
        &mut self,
        strategy: ParallelStrategy,
        config: CrackConfig,
        seed: u64,
    ) -> Stats {
        self.strategy = strategy;
        let mut retired = Stats::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.pending.merge_all(&mut shard.col);
            retired += shard.col.stats();
            let (data, _, _) = shard.col.parts_mut();
            let data = std::mem::take(data);
            let scoped = config.fault.scoped_to(i);
            shard.col = CrackedColumn::new(data, config.with_fault(scoped));
            shard.rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64));
            shard.fault = FaultInjector::new(scoped);
            shard.health = ShardHealth::Healthy;
            shard.recent_bounds.clear();
        }
        retired
    }

    /// Executes `batch` under the fault-hardened serving path: bounded
    /// admission queues, per-query deadlines, per-task panic isolation,
    /// and the quarantine→scan→rebuild degradation ladder.
    ///
    /// The plain [`BatchScheduler::execute`] is the trusted closed-loop
    /// path (unbounded `Admit`, fail-loud on panics) and stays the
    /// determinism oracle; this entry point trades bit-identical `Stats`
    /// for survival, while keeping the two contracts of
    /// [`crate::resilience`]: every submitted query gets exactly one
    /// [`QueryOutcome`], and every `Answered` outcome is oracle-correct
    /// no matter which faults fired.
    ///
    /// Admission runs in **waves**: pending queries route in submission
    /// order, and a query is admitted only if every shard it touches has
    /// queue room (under [`AdmissionPolicy::Admit`] it is admitted
    /// regardless). Non-fitting queries are shed with bounded retries
    /// ([`AdmissionPolicy::Shed`]) or deferred to the next wave
    /// ([`AdmissionPolicy::Block`]). Capacity of at least one guarantees
    /// each wave admits at least the first pending query, so the loop
    /// always terminates.
    ///
    /// A worker panic loses all of that shard's partials for the wave
    /// (its whole task result is discarded), so after quarantining the
    /// shard its *entire* queue is re-answered by scan — each query's
    /// contribution is added exactly once, never double-counted.
    ///
    /// # Panics
    /// If `serving.queue_capacity` is zero.
    pub fn execute_resilient(
        &mut self,
        batch: &[QueryRange],
        serving: &ServingConfig,
    ) -> BatchReport {
        assert!(
            serving.queue_capacity >= 1,
            "admission queue capacity must be at least 1"
        );
        let arrival = Instant::now();
        let strategy = self.strategy;
        let deadline = serving.deadline;
        let rebuild_after = serving.rebuild_after;

        // An overload fault clamps the shard's admission capacity for
        // this whole batch; polled once per shard per batch.
        let caps: Vec<usize> = self
            .shards
            .iter()
            .map(|s| {
                if s.fault.poll(FaultKind::QueueOverload) {
                    s.fault.plan().overload_capacity().unwrap_or(1).max(1)
                } else {
                    serving.queue_capacity
                }
            })
            .collect();

        let mut slots: Vec<Slot> = batch
            .iter()
            .map(|q| {
                if q.is_empty() {
                    Slot::Done(QueryOutcome::Answered {
                        count: 0,
                        key_sum: 0,
                        retries: 0,
                    })
                } else {
                    Slot::Pending { retries: 0 }
                }
            })
            .collect();
        let mut report = BatchReport {
            outcomes: Vec::new(),
            answered: 0,
            shed: 0,
            timed_out: 0,
            panics_isolated: 0,
            quarantined: Vec::new(),
            rebuilt: Vec::new(),
            waves: 0,
            max_queue_depth: 0,
        };

        while slots.iter().any(|s| matches!(s, Slot::Pending { .. })) {
            report.waves += 1;
            // Queries still waiting for admission past their budget time
            // out as a group — they were never started, so no partials.
            if deadline.is_some_and(|d| arrival.elapsed() > d) {
                for slot in &mut slots {
                    if matches!(slot, Slot::Pending { .. }) {
                        *slot = Slot::Done(QueryOutcome::TimedOut);
                    }
                }
                break;
            }

            // Route this wave: pending queries in submission order; a
            // query needs room on *every* shard it touches.
            for queue in &mut self.queues {
                queue.clear();
            }
            let mut admitted: Vec<usize> = Vec::new();
            let mut shed_this_wave: Vec<usize> = Vec::new();
            for (qi, q) in batch.iter().enumerate() {
                if !matches!(slots[qi], Slot::Pending { .. }) {
                    continue;
                }
                let targets: Vec<(usize, QueryRange)> = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter_map(|(si, shard)| {
                        let clipped = q.intersect(&shard.span);
                        (!clipped.is_empty()).then_some((si, clipped))
                    })
                    .collect();
                let fits = targets.iter().all(|&(si, _)| self.queues[si].len() < caps[si]);
                match (fits, serving.admission) {
                    (true, _) | (false, AdmissionPolicy::Admit) => {
                        for (si, clipped) in targets {
                            self.queues[si].push((qi, clipped));
                            report.max_queue_depth =
                                report.max_queue_depth.max(self.queues[si].len());
                        }
                        admitted.push(qi);
                    }
                    (false, AdmissionPolicy::Shed) => shed_this_wave.push(qi),
                    (false, AdmissionPolicy::Block) => {} // next wave
                }
            }
            for queue in &mut self.queues {
                queue.sort_by_key(|&(qi, q)| (q.low, q.high, qi));
            }

            // Execute the wave with panic isolation; fold partials per
            // query and remember deadline expiries.
            let mut acc: Vec<(usize, u64)> = vec![(0, 0); batch.len()];
            let mut timed: Vec<bool> = vec![false; batch.len()];
            {
                let Self { shards, queues, .. } = &mut *self;
                let mut task_sis: Vec<usize> = Vec::new();
                let tasks: ShardTasks<'_, E, QueryRange> = shards
                    .iter_mut()
                    .zip(queues.iter())
                    .enumerate()
                    .filter(|(_, (_, queue))| !queue.is_empty())
                    .map(|(si, t)| {
                        task_sis.push(si);
                        t
                    })
                    .collect();
                let workers = crate::executor::worker_count(tasks.len());
                let results =
                    crate::executor::run_tasks_isolated(workers, tasks, |_, (shard, queue)| {
                        shard.drain_resilient(queue, strategy, arrival, deadline, rebuild_after)
                    });
                for (k, result) in results.into_iter().enumerate() {
                    let si = task_sis[k];
                    match result {
                        Ok((partials, newly_quarantined)) => {
                            if newly_quarantined {
                                report.quarantined.push(si);
                            }
                            for (qi, part) in partials {
                                match part {
                                    Some((c, s)) => {
                                        acc[qi].0 += c;
                                        acc[qi].1 = acc[qi].1.wrapping_add(s);
                                    }
                                    None => timed[qi] = true,
                                }
                            }
                        }
                        Err(_) => {
                            // The task died mid-drain, so *all* its
                            // partials were discarded with it; after
                            // quarantining, re-answering its whole queue
                            // by scan adds each query's contribution
                            // exactly once.
                            report.panics_isolated += 1;
                            report.quarantined.push(si);
                            let shard = &mut shards[si];
                            shard.quarantine(rebuild_after);
                            for &(qi, q) in &queues[si] {
                                if deadline.is_some_and(|d| arrival.elapsed() > d) {
                                    timed[qi] = true;
                                } else {
                                    let (c, s) = shard.select_scan(q);
                                    acc[qi].0 += c;
                                    acc[qi].1 = acc[qi].1.wrapping_add(s);
                                }
                            }
                        }
                    }
                }
            }

            // Verdicts: admitted queries resolve now; shed queries retry
            // until the budget runs out.
            for qi in admitted {
                if let Slot::Pending { retries } = slots[qi] {
                    slots[qi] = Slot::Done(if timed[qi] {
                        QueryOutcome::TimedOut
                    } else {
                        QueryOutcome::Answered {
                            count: acc[qi].0,
                            key_sum: acc[qi].1,
                            retries,
                        }
                    });
                }
            }
            for qi in shed_this_wave {
                if let Slot::Pending { retries } = slots[qi] {
                    slots[qi] = if retries >= serving.max_retries {
                        Slot::Done(QueryOutcome::Shed { retries })
                    } else {
                        Slot::Pending {
                            retries: retries + 1,
                        }
                    };
                }
            }
        }

        // End-of-batch quarantine clock: timers at zero rebuild now, the
        // rest tick down one batch.
        for (si, shard) in self.shards.iter_mut().enumerate() {
            if let ShardHealth::Quarantined { batches_left } = shard.health {
                if batches_left == 0 {
                    shard.rebuild();
                    report.rebuilt.push(si);
                } else {
                    shard.health = ShardHealth::Quarantined {
                        batches_left: batches_left - 1,
                    };
                }
            }
        }

        report.outcomes = slots
            .iter()
            .map(|s| match s {
                Slot::Done(o) => *o,
                Slot::Pending { .. } => unreachable!("wave loop resolves every query"),
            })
            .collect();
        for o in &report.outcomes {
            match o {
                QueryOutcome::Answered { .. } => report.answered += 1,
                QueryOutcome::Shed { .. } => report.shed += 1,
                QueryOutcome::TimedOut => report.timed_out += 1,
            }
        }
        self.resilience.panics_isolated += report.panics_isolated as u64;
        self.resilience.quarantines += report.quarantined.len() as u64;
        self.resilience.rebuilds += report.rebuilt.len() as u64;
        self.resilience.shed += report.shed as u64;
        self.resilience.timed_out += report.timed_out as u64;
        self.resilience.answered += report.answered as u64;
        report
    }

    /// Force-quarantines shard `si` (operator kill switch / tests): its
    /// index is discarded and it serves scans until the rebuild at the
    /// end of the next resilient batch.
    ///
    /// # Panics
    /// If `si` is out of range.
    pub fn quarantine_shard(&mut self, si: usize) {
        self.shards[si].quarantine(0);
        self.resilience.quarantines += 1;
    }

    /// Health of shard `si` in the degradation ladder.
    ///
    /// # Panics
    /// If `si` is out of range.
    pub fn shard_health(&self, si: usize) -> ShardHealth {
        self.shards[si].health
    }

    /// Indices of currently quarantined shards, in shard order.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.health, ShardHealth::Quarantined { .. }))
            .map(|(si, _)| si)
            .collect()
    }

    /// Cumulative resilience counters over this scheduler's lifetime.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    /// Full integrity check (tests only; O(n)): every shard's cracker
    /// invariants hold and every key lies inside its shard's span.
    pub fn check_integrity(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            s.col
                .check_integrity()
                .map_err(|e| format!("shard {i}: {e}"))?;
            if let Some(e) = s.col.data().iter().find(|e| !s.span.contains(e.key())) {
                return Err(format!(
                    "shard {i}: key {} outside span {}",
                    e.key(),
                    s.span
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::KernelPolicy;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 48_271) % n).collect()
    }

    fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
        data.iter()
            .filter(|k| q.contains(**k))
            .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    /// A deterministic mixed batch: narrow point-ish queries, wide spans
    /// crossing shard bounds, and a few empties.
    fn mixed_batch(n: u64, count: usize, salt: u64) -> Vec<QueryRange> {
        let mut state = 0x9E37_79B9u64 ^ salt;
        (0..count)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match i % 4 {
                    0 => {
                        let a = state % n;
                        QueryRange::new(a, a + 1 + state % 64)
                    }
                    1 => {
                        let a = state % (n / 2);
                        QueryRange::new(a, a + n / 3) // spans shards
                    }
                    2 => QueryRange::new(state % n, state % n), // empty
                    _ => {
                        let a = state % n;
                        QueryRange::new(a, a + 1_000)
                    }
                }
            })
            .collect()
    }

    #[test]
    fn batch_results_match_oracle_in_submission_order() {
        let n = 40_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let mut sched =
                BatchScheduler::new(data.clone(), 4, strategy, CrackConfig::default(), 11);
            for round in 0..4u64 {
                let batch = mixed_batch(n, 96, round);
                let results = sched.execute(&batch);
                assert_eq!(results.len(), batch.len());
                for (qi, q) in batch.iter().enumerate() {
                    assert_eq!(
                        results[qi],
                        oracle(&data, *q),
                        "{strategy:?} round {round} query {qi} ({q})"
                    );
                }
            }
            sched.check_integrity().unwrap();
        }
    }

    #[test]
    fn parallel_and_serial_execution_are_bit_identical() {
        let n = 30_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            for kernel in [KernelPolicy::Branchy, KernelPolicy::Branchless] {
                let config = CrackConfig::default().with_kernel(kernel);
                let mut par = BatchScheduler::new(data.clone(), 6, strategy, config, 3);
                let mut ser = BatchScheduler::new(data.clone(), 6, strategy, config, 3);
                for round in 0..3u64 {
                    let batch = mixed_batch(n, 64, round);
                    assert_eq!(
                        par.execute(&batch),
                        ser.execute_serial(&batch),
                        "{strategy:?}/{kernel:?} round {round}: answers"
                    );
                }
                assert_eq!(
                    par.stats(),
                    ser.stats(),
                    "{strategy:?}/{kernel:?}: Stats must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn empty_shard_queues_spawn_no_work_and_change_nothing() {
        // A batch confined to one shard's span leaves the other queues
        // empty; skipping them must leave results and Stats exactly as
        // the serial replay (which never spawned per-shard threads).
        let n = 20_000u64;
        let data = permuted(n);
        let mut par = BatchScheduler::new(
            data.clone(),
            8,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            7,
        );
        let mut ser = BatchScheduler::new(
            data.clone(),
            8,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            7,
        );
        let span = par.shard_spans()[0];
        // All queries inside shard 0 (plus some empties routed nowhere).
        let batch: Vec<QueryRange> = (0..32u64)
            .map(|i| {
                if i % 5 == 4 {
                    QueryRange::new(0, 0) // empty: routed to no shard
                } else {
                    let a = span.low + i * 13 % (span.high - span.low).max(1);
                    QueryRange::new(a, a + 40)
                }
            })
            .collect();
        let rp = par.execute(&batch);
        let rs = ser.execute_serial(&batch);
        assert_eq!(rp, rs, "skipping empty queues must not change answers");
        assert_eq!(par.stats(), ser.stats(), "nor Stats");
        for (qi, q) in batch.iter().enumerate() {
            assert_eq!(rp[qi], oracle(&data, *q), "query {qi}");
        }
    }

    #[test]
    fn route_covers_every_key_and_maps_the_unreachable_max() {
        let sched = BatchScheduler::new(
            permuted(10_000),
            8,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            1,
        );
        let spans = sched.shard_spans();
        for (si, span) in spans.iter().enumerate() {
            assert_eq!(sched.route(span.low), si, "span.low routes to its shard");
            assert_eq!(sched.route(span.high - 1), si, "span end routes to its shard");
        }
        // `u64::MAX` is the one key no half-open span can contain; it
        // belongs to the last (open-ended) shard by convention.
        assert_eq!(sched.route(u64::MAX), spans.len() - 1);
    }

    #[test]
    fn shard_spans_are_disjoint_and_cover_the_key_space() {
        let sched = BatchScheduler::new(
            permuted(10_000),
            8,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            1,
        );
        let spans = sched.shard_spans();
        assert_eq!(spans.len(), sched.shard_count());
        assert_eq!(spans[0].low, 0);
        assert_eq!(spans.last().unwrap().high, u64::MAX);
        for w in spans.windows(2) {
            assert_eq!(w[0].high, w[1].low, "spans must chain contiguously");
            assert!(w[0].low < w[0].high, "spans must be nonempty");
        }
        sched.check_integrity().unwrap();
    }

    #[test]
    fn duplicate_heavy_data_collapses_shards_but_stays_exact() {
        // 10 distinct keys over 4000 tuples: most quantile bounds
        // coincide, so shards merge; answers must stay oracle-equal.
        let data: Vec<u64> = (0..4_000).map(|i| i % 10).collect();
        let mut sched = BatchScheduler::new(
            data.clone(),
            8,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            2,
        );
        assert!(sched.shard_count() <= 8);
        let batch: Vec<QueryRange> = (0..10u64).map(|v| QueryRange::new(v, v + 1)).collect();
        let results = sched.execute(&batch);
        for (qi, q) in batch.iter().enumerate() {
            assert_eq!(results[qi], oracle(&data, *q), "query {qi}");
        }
        sched.check_integrity().unwrap();
    }

    #[test]
    fn single_shard_empty_column_and_empty_batch() {
        let mut one = BatchScheduler::new(
            permuted(1_000),
            1,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            1,
        );
        assert_eq!(one.shard_count(), 1);
        assert_eq!(one.execute(&[QueryRange::new(0, 1_000)]), vec![(1_000, 499_500)]);
        assert_eq!(one.execute(&[]), Vec::new());

        let mut empty: BatchScheduler<u64> =
            BatchScheduler::new(vec![], 4, ParallelStrategy::Crack, CrackConfig::default(), 1);
        assert_eq!(empty.execute(&[QueryRange::new(0, 10)]), vec![(0, 0)]);
        empty.check_integrity().unwrap();
    }

    #[test]
    fn more_shards_than_elements() {
        let mut sched = BatchScheduler::new(
            vec![5u64, 1, 3],
            16,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            1,
        );
        assert_eq!(sched.execute(&[QueryRange::new(0, 10)]), vec![(3, 9)]);
        sched.check_integrity().unwrap();
    }

    /// A deterministic mixed op batch: selects, key-routed inserts and
    /// deletes (some beyond the original domain, exercising the last
    /// shard's open span).
    fn mixed_ops(n: u64, count: usize, salt: u64) -> Vec<BatchOp<u64>> {
        let mut state = 0xA076_1D64_78BD_642Fu64 ^ salt;
        (0..count)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match i % 5 {
                    0 | 1 => {
                        let a = state % n;
                        BatchOp::Select(QueryRange::new(a, a + 1 + state % 2_000))
                    }
                    2 => BatchOp::Select(QueryRange::new(0, n * 2)), // spans all shards
                    3 => BatchOp::Insert(state % (n + n / 4)),
                    _ => BatchOp::Delete(state % (n + n / 4)),
                }
            })
            .collect()
    }

    /// A sorted-vec oracle replaying the same op stream with the same
    /// per-shard visibility rule (updates apply before any later select).
    fn ops_oracle(data: &[u64], ops: &[BatchOp<u64>]) -> Vec<(usize, u64)> {
        let mut model: Vec<u64> = data.to_vec();
        ops.iter()
            .map(|op| match *op {
                BatchOp::Select(q) => model
                    .iter()
                    .filter(|k| q.contains(**k))
                    .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k))),
                BatchOp::Insert(k) => {
                    model.push(k);
                    (0, 0)
                }
                BatchOp::Delete(k) => {
                    if let Some(at) = model.iter().position(|x| *x == k) {
                        model.swap_remove(at);
                    }
                    (0, 0)
                }
            })
            .collect()
    }

    #[test]
    fn mixed_ops_match_oracle_in_submission_order() {
        let n = 30_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let mut sched =
                BatchScheduler::new(data.clone(), 4, strategy, CrackConfig::default(), 11);
            let mut model_ops: Vec<BatchOp<u64>> = Vec::new();
            for round in 0..3u64 {
                let ops = mixed_ops(n, 80, round);
                let results = sched.execute_ops(&ops);
                assert_eq!(results.len(), ops.len());
                // The oracle needs the full history (updates persist
                // across batches until merged).
                let history_base = model_ops.len();
                model_ops.extend_from_slice(&ops);
                let expect = ops_oracle(&data, &model_ops);
                for (qi, op) in ops.iter().enumerate() {
                    assert_eq!(
                        results[qi],
                        expect[history_base + qi],
                        "{strategy:?} round {round} op {qi} ({op:?})"
                    );
                }
            }
            sched.check_integrity().unwrap();
            sched.flush_updates();
            assert_eq!(sched.pending_updates(), 0);
            sched.check_integrity().unwrap();
        }
    }

    #[test]
    fn ops_parallel_and_serial_execution_are_bit_identical() {
        let n = 20_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let config = CrackConfig::default();
            let mut par = BatchScheduler::new(data.clone(), 6, strategy, config, 3);
            let mut ser = BatchScheduler::new(data.clone(), 6, strategy, config, 3);
            for round in 0..3u64 {
                let ops = mixed_ops(n, 64, round);
                assert_eq!(
                    par.execute_ops(&ops),
                    ser.execute_ops_serial(&ops),
                    "{strategy:?} round {round}: answers"
                );
            }
            assert_eq!(par.stats(), ser.stats(), "{strategy:?}: Stats");
            assert_eq!(par.pending_updates(), ser.pending_updates());
        }
    }

    #[test]
    fn updates_are_visible_to_later_selects_only() {
        let mut sched = BatchScheduler::new(
            permuted(1_000),
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        let ops = vec![
            BatchOp::Select(QueryRange::new(500, 501)),
            BatchOp::Insert(500u64),
            BatchOp::Select(QueryRange::new(500, 501)),
            BatchOp::Delete(500),
            BatchOp::Delete(500),
            BatchOp::Select(QueryRange::new(500, 501)),
        ];
        let results = sched.execute_ops(&ops);
        assert_eq!(results[0], (1, 500), "before the insert");
        assert_eq!(results[2], (2, 1_000), "after the insert");
        assert_eq!(results[5], (0, 0), "after both deletes");
        sched.check_integrity().unwrap();
    }

    #[test]
    fn resilient_default_serving_matches_oracle_and_legacy() {
        let n = 30_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let mut sched =
                BatchScheduler::new(data.clone(), 4, strategy, CrackConfig::default(), 11);
            for round in 0..3u64 {
                let batch = mixed_batch(n, 64, round);
                let report = sched.execute_resilient(&batch, &ServingConfig::default());
                assert!(report.fully_answered(), "{strategy:?} round {round}");
                assert_eq!(report.waves, 1, "unbounded Admit fits in one wave");
                assert_eq!(report.outcomes.len(), batch.len());
                for (qi, q) in batch.iter().enumerate() {
                    assert_eq!(
                        report.outcomes[qi].answer(),
                        Some(oracle(&data, *q)),
                        "{strategy:?} round {round} query {qi} ({q})"
                    );
                }
            }
            let stats = sched.resilience_stats();
            assert_eq!(stats.answered, 3 * 64);
            assert_eq!(stats.shed + stats.timed_out + stats.panics_isolated, 0);
        }
    }

    #[test]
    fn bounded_shed_accounts_every_query_and_caps_queue_depth() {
        let n = 20_000u64;
        let data = permuted(n);
        let mut sched = BatchScheduler::new(
            data.clone(),
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            3,
        );
        // Wide queries hit every shard, so capacity 2 forces shedding.
        let batch: Vec<QueryRange> = (0..24u64)
            .map(|i| QueryRange::new(i * 10, n - i * 10))
            .collect();
        let serving = ServingConfig::bounded(2, AdmissionPolicy::Shed).with_max_retries(1);
        let report = sched.execute_resilient(&batch, &serving);
        assert_eq!(report.outcomes.len(), batch.len(), "no silent drops");
        assert_eq!(report.answered + report.shed + report.timed_out, batch.len());
        assert!(report.shed > 0, "capacity 2 over 24 wide queries must shed");
        assert!(
            report.max_queue_depth <= 2,
            "Shed must enforce the bound, saw depth {}",
            report.max_queue_depth
        );
        assert!(report.waves >= 2, "shed queries retried on later waves");
        for (qi, q) in batch.iter().enumerate() {
            match report.outcomes[qi] {
                QueryOutcome::Answered { count, key_sum, .. } => {
                    assert_eq!((count, key_sum), oracle(&data, *q), "query {qi}");
                }
                QueryOutcome::Shed { retries } => assert_eq!(retries, 1, "query {qi}"),
                QueryOutcome::TimedOut => panic!("no deadline configured"),
            }
        }
        assert!((report.shed_rate() - report.shed as f64 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn block_admission_answers_everything_across_waves() {
        let n = 20_000u64;
        let data = permuted(n);
        let mut sched = BatchScheduler::new(
            data.clone(),
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        let batch: Vec<QueryRange> = (0..24u64).map(|i| QueryRange::new(0, n - i)).collect();
        let serving = ServingConfig::bounded(1, AdmissionPolicy::Block);
        let report = sched.execute_resilient(&batch, &serving);
        assert!(report.fully_answered(), "Block never sheds");
        assert!(report.waves >= 2, "capacity 1 needs many waves");
        assert!(report.max_queue_depth <= 1);
        for (qi, q) in batch.iter().enumerate() {
            assert_eq!(report.outcomes[qi].answer(), Some(oracle(&data, *q)), "query {qi}");
        }
    }

    #[test]
    fn quarantined_shard_serves_scans_then_rebuilds() {
        let n = 20_000u64;
        let data = permuted(n);
        let mut sched = BatchScheduler::new(
            data.clone(),
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            7,
        );
        sched.quarantine_shard(1);
        assert_eq!(sched.quarantined_shards(), vec![1]);
        assert_eq!(sched.shard_health(1), ShardHealth::Quarantined { batches_left: 0 });

        let batch = mixed_batch(n, 48, 9);
        let report =
            sched.execute_resilient(&batch, &ServingConfig::default().with_rebuild_after(0));
        assert!(report.fully_answered());
        for (qi, q) in batch.iter().enumerate() {
            assert_eq!(
                report.outcomes[qi].answer(),
                Some(oracle(&data, *q)),
                "scan-degraded query {qi} ({q})"
            );
        }
        assert_eq!(report.rebuilt, vec![1], "rebuild at end of batch");
        assert_eq!(sched.shard_health(1), ShardHealth::Healthy);
        sched.check_integrity().unwrap();

        // Post-rebuild serving is healthy and still oracle-correct.
        let batch2 = mixed_batch(n, 48, 10);
        let report2 = sched.execute_resilient(&batch2, &ServingConfig::default());
        assert!(report2.fully_answered());
        assert!(report2.rebuilt.is_empty());
        let stats = sched.resilience_stats();
        assert_eq!((stats.quarantines, stats.rebuilds), (1, 1));
    }

    #[test]
    fn expired_deadline_times_out_instead_of_partial_answers() {
        let n = 10_000u64;
        let mut sched = BatchScheduler::new(
            permuted(n),
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            13,
        );
        // A zero deadline has always already expired at wave start.
        let serving = ServingConfig::default().with_deadline(Duration::from_secs(0));
        let batch = mixed_batch(n, 16, 1);
        let report = sched.execute_resilient(&batch, &serving);
        assert_eq!(report.outcomes.len(), batch.len());
        for (qi, (q, o)) in batch.iter().zip(&report.outcomes).enumerate() {
            if q.is_empty() {
                assert_eq!(o.answer(), Some((0, 0)), "empty query {qi} costs nothing");
            } else {
                assert_eq!(*o, QueryOutcome::TimedOut, "query {qi}");
            }
        }
        assert_eq!(report.timed_out + report.answered, batch.len());
        assert!(report.timed_out > 0);
    }

    #[test]
    fn repeated_batches_keep_cracking_convergently() {
        let n = 20_000u64;
        let data = permuted(n);
        let mut sched = BatchScheduler::new(
            data.clone(),
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            9,
        );
        let batch = mixed_batch(n, 128, 0);
        sched.execute(&batch);
        let first = sched.stats();
        sched.execute(&batch);
        let second = sched.stats().since(&first);
        assert!(
            second.touched < first.touched,
            "repeat batch must touch less: {} vs {}",
            second.touched,
            first.touched
        );
    }
}
