//! Parallel-chunked cracking with refined partition-merge.

use crate::executor;
use crate::ParallelStrategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, CrackedColumn};
use scrack_partition::select_nth_key;
use scrack_types::{Element, QueryRange, Stats};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Queries answered before the chunks partition-merge into key-disjoint
/// shards (override with [`ChunkedCracker::with_merge_after`]).
const DEFAULT_MERGE_AFTER: usize = 1_024;

/// Crack keys carried into each merged shard, at most (an even-stride
/// sample of the chunks' crack-key union inside the shard's span).
const MERGE_CRACK_SAMPLE: usize = 64;

/// The executor's post-merge work list: each live shard paired with its
/// non-empty queue of `(submission index, clipped query)` entries.
type MergedTasks<'a, E> = Vec<(&'a mut Chunk<E>, &'a Vec<(usize, QueryRange)>)>;

/// One private chunk: an independent cracker column plus its RNG stream.
/// No coordination of any kind while cracking — the chunk is the unit of
/// parallelism.
#[derive(Debug)]
struct Chunk<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
}

impl<E: Element> Chunk<E> {
    /// Answers one (possibly clipped) query against this chunk.
    fn select(&mut self, q: QueryRange, strategy: ParallelStrategy) -> (usize, u64) {
        let out = match strategy {
            ParallelStrategy::Crack => self.col.select_original(q),
            ParallelStrategy::Stochastic => self.col.mdd1r_select(q, &mut self.rng),
        };
        out.resolve(self.col.data())
            .fold((0usize, 0u64), |(c, s), e| (c + 1, s.wrapping_add(e.key())))
    }

    /// Drains a `(query_index, range)` queue in order; returns
    /// `(query_index, count, key_sum)` partials.
    fn drain(
        &mut self,
        queue: &[(usize, QueryRange)],
        strategy: ParallelStrategy,
    ) -> Vec<(usize, usize, u64)> {
        queue
            .iter()
            .map(|&(qi, q)| {
                let (count, sum) = self.select(q, strategy);
                (qi, count, sum)
            })
            .collect()
    }
}

/// Which layout the column is currently in.
#[derive(Debug)]
enum Phase<E: Element> {
    /// Row-partitioned chunks: every query visits every chunk; chunks
    /// crack privately and partials sum.
    Chunked(Vec<Chunk<E>>),
    /// Key-disjoint shards (post partition-merge): queries clip against
    /// shard spans, narrow queries land on exactly one shard.
    Merged(Vec<(QueryRange, Chunk<E>)>),
}

/// Parallel-chunked cracking with refined partition-merge (Alvarez et
/// al., *Main Memory Adaptive Indexing for Multi-core Systems*, DaMoN
/// 2014).
///
/// The column starts **row-partitioned** into private chunks, one per
/// intended worker: a batch fans every query out to every chunk, each
/// chunk cracks its own data under its own chunk-local cracker index and
/// RNG stream, and per-chunk partial aggregates sum. Cracking is
/// perfectly parallel — chunks share *nothing*, not even a lock — but
/// every query pays a visit to every chunk forever.
///
/// That tax is what the **partition-merge** removes: once query volume
/// passes a threshold ([`ChunkedCracker::with_merge_after`]), the chunks
/// reorganize into **key-disjoint shards** on quantile bounds, after
/// which narrow queries land on exactly one shard (the
/// [`BatchScheduler`](crate::BatchScheduler) layout, reached adaptively
/// instead of up front). The merge is *refined* in two ways:
///
/// * each chunk cuts itself at the shard bounds through its own crack
///   index ([`CrackedColumn::crack_on`]), so bounds near existing cracks
///   cost a fraction of a scan rather than a full repartition;
/// * the crack structure chunks earned is not discarded: an even-stride
///   sample of the chunks' crack-key union (up to 64 keys per shard)
///   is re-cracked into each merged shard, so post-merge queries start
///   from warmed structure instead of a cold column.
///
/// Both phases execute on the work-stealing [`executor`], and both are
/// **deterministic**: per-chunk work depends only on the query stream
/// and the chunk's own RNG, never on thread scheduling, and the merge
/// triggers on query *count* (checked at the start of a batch), so
/// [`ChunkedCracker::execute`] and [`ChunkedCracker::execute_serial`]
/// produce bit-identical answers *and* [`Stats`] at any worker count.
///
/// ```
/// use scrack_core::CrackConfig;
/// use scrack_parallel::{ChunkedCracker, ParallelStrategy};
/// use scrack_types::QueryRange;
///
/// let data: Vec<u64> = (0..50_000).rev().collect();
/// let mut cc = ChunkedCracker::new(
///     data, 4, ParallelStrategy::Stochastic, CrackConfig::default(), 7,
/// ).with_merge_after(64);
/// let batch: Vec<QueryRange> = (0..96u64)
///     .map(|i| QueryRange::new(i * 500, i * 500 + 250))
///     .collect();
/// let results = cc.execute(&batch);
/// assert_eq!(results[0], (250, (0..250u64).sum()));
/// assert!(!cc.has_merged(), "first batch runs in the chunk phase");
/// cc.execute(&batch); // 96 + 96 >= 64 at batch start: merge fires
/// assert!(cc.has_merged());
/// ```
#[derive(Debug)]
pub struct ChunkedCracker<E: Element> {
    phase: Phase<E>,
    strategy: ParallelStrategy,
    config: CrackConfig,
    seed: u64,
    /// Queries executed so far; the partition-merge fires at the start
    /// of the first batch where `queries_seen >= merge_after`.
    queries_seen: usize,
    merge_after: usize,
    /// Costs of retired chunk columns (accumulated at merge time so
    /// [`ChunkedCracker::stats`] stays cumulative across the merge).
    retired: Stats,
    /// Reusable per-shard queues for the merged phase.
    queues: Vec<Vec<(usize, QueryRange)>>,
    /// Worker panics caught on the resilient path
    /// ([`ChunkedCracker::execute_resilient`]); each one quarantined and
    /// rebuilt a chunk/shard index.
    panics_isolated: u64,
}

impl<E: Element> ChunkedCracker<E> {
    /// Splits `data` into `chunk_count` near-equal private chunks.
    ///
    /// # Panics
    /// If `chunk_count` is zero.
    pub fn new(
        mut data: Vec<E>,
        chunk_count: usize,
        strategy: ParallelStrategy,
        config: CrackConfig,
        seed: u64,
    ) -> Self {
        assert!(chunk_count > 0, "need at least one chunk");
        let per = data.len().div_ceil(chunk_count).max(1);
        let mut chunks = Vec::with_capacity(chunk_count);
        let mut i = 0u64;
        while !data.is_empty() {
            let tail = data.split_off(per.min(data.len()));
            // Scope any planned fault to this chunk, so a targeted plan
            // arms exactly one chunk.
            let scoped = config.fault.scoped_to(i as usize);
            chunks.push(Chunk {
                col: CrackedColumn::new(data, config.with_fault(scoped)),
                rng: SmallRng::seed_from_u64(seed.wrapping_add(i)),
            });
            data = tail;
            i += 1;
        }
        if chunks.is_empty() {
            chunks.push(Chunk {
                col: CrackedColumn::new(Vec::new(), config),
                rng: SmallRng::seed_from_u64(seed),
            });
        }
        Self {
            phase: Phase::Chunked(chunks),
            strategy,
            config,
            seed,
            queries_seen: 0,
            merge_after: DEFAULT_MERGE_AFTER,
            retired: Stats::new(),
            queues: Vec::new(),
            panics_isolated: 0,
        }
    }

    /// [`ChunkedCracker::new`] under [`CrackConfig::default`].
    pub fn new_default(
        data: Vec<E>,
        chunk_count: usize,
        strategy: ParallelStrategy,
        seed: u64,
    ) -> Self {
        Self::new(data, chunk_count, strategy, CrackConfig::default(), seed)
    }

    /// Sets the query volume after which the chunks partition-merge into
    /// key-disjoint shards (default 1024). The merge fires at the start
    /// of the first batch where the threshold has been reached, so a
    /// given query stream merges at the same point on every path.
    pub fn with_merge_after(mut self, merge_after: usize) -> Self {
        self.merge_after = merge_after;
        self
    }

    /// Number of chunks (pre-merge) or shards (post-merge).
    pub fn chunk_count(&self) -> usize {
        match &self.phase {
            Phase::Chunked(chunks) => chunks.len(),
            Phase::Merged(shards) => shards.len(),
        }
    }

    /// Whether the partition-merge has happened.
    pub fn has_merged(&self) -> bool {
        matches!(self.phase, Phase::Merged(_))
    }

    /// Executes `batch` on up to one worker per available core (work
    /// stealing keeps skewed chunks/shards from idling the rest);
    /// returns per-query `(count, key_sum)` in submission order.
    pub fn execute(&mut self, batch: &[QueryRange]) -> Vec<(usize, u64)> {
        let workers = executor::worker_count(self.chunk_count());
        self.dispatch(batch, workers, false)
    }

    /// [`ChunkedCracker::execute`] on the calling thread. Answers and
    /// [`Stats`] are bit-identical to the parallel path — the
    /// determinism oracle.
    pub fn execute_serial(&mut self, batch: &[QueryRange]) -> Vec<(usize, u64)> {
        self.dispatch(batch, 1, false)
    }

    /// [`ChunkedCracker::execute`] with **panic isolation**: a worker
    /// panic mid-crack quarantines just that chunk/shard — its cracker
    /// index is discarded (the data multiset survives, cracking only
    /// swaps), rebuilt fresh with fault injection disarmed, and its whole
    /// queue replayed, so answers stay oracle-correct while every other
    /// chunk's work is kept. Each recovery bumps
    /// [`ChunkedCracker::panics_isolated`].
    ///
    /// Replayed work makes [`Stats`] (not answers) diverge from the
    /// fail-loud paths, so this entry point is *not* part of the
    /// bit-identical determinism contract.
    pub fn execute_resilient(&mut self, batch: &[QueryRange]) -> Vec<(usize, u64)> {
        let workers = executor::worker_count(self.chunk_count());
        self.dispatch(batch, workers, true)
    }

    /// Worker panics caught and recovered on the resilient path.
    pub fn panics_isolated(&self) -> u64 {
        self.panics_isolated
    }

    fn dispatch(&mut self, batch: &[QueryRange], workers: usize, isolate: bool) -> Vec<(usize, u64)> {
        if !self.has_merged() && self.queries_seen >= self.merge_after {
            self.partition_merge(isolate);
        }
        self.queries_seen += batch.len();
        let strategy = self.strategy;
        let partials: Vec<Vec<(usize, usize, u64)>> = match &mut self.phase {
            Phase::Chunked(chunks) => {
                // Row partitioning: every chunk answers every query.
                let queue: Vec<(usize, QueryRange)> = batch
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(qi, q)| (qi, *q))
                    .collect();
                let tasks: Vec<&mut Chunk<E>> = chunks.iter_mut().collect();
                if isolate {
                    let results = executor::run_tasks_isolated(workers, tasks, |_, chunk| {
                        chunk.drain(&queue, strategy)
                    });
                    let mut partials = Vec::with_capacity(results.len());
                    for (k, r) in results.into_iter().enumerate() {
                        partials.push(match r {
                            Ok(p) => p,
                            Err(_) => {
                                // The chunk may be mid-reorganization;
                                // discard its index (multiset intact),
                                // rebuild disarmed, replay its queue.
                                self.panics_isolated += 1;
                                chunks[k].col.quarantine_rebuild();
                                chunks[k].drain(&queue, strategy)
                            }
                        });
                    }
                    partials
                } else {
                    executor::run_tasks(workers, tasks, |_, chunk| chunk.drain(&queue, strategy))
                }
            }
            Phase::Merged(shards) => {
                // Key partitioning: clip each query against the shard
                // spans; shards with empty queues spawn no task.
                let queues = &mut self.queues;
                queues.resize(shards.len(), Vec::new());
                for queue in queues.iter_mut() {
                    queue.clear();
                }
                for (qi, q) in batch.iter().enumerate() {
                    if q.is_empty() {
                        continue;
                    }
                    for (si, (span, _)) in shards.iter().enumerate() {
                        let clipped = q.intersect(span);
                        if !clipped.is_empty() {
                            queues[si].push((qi, clipped));
                        }
                    }
                }
                for queue in queues.iter_mut() {
                    queue.sort_by_key(|&(qi, q)| (q.low, q.high, qi));
                }
                let mut task_sis: Vec<usize> = Vec::new();
                let tasks: MergedTasks<'_, E> = shards
                    .iter_mut()
                    .map(|(_, shard)| shard)
                    .zip(queues.iter())
                    .enumerate()
                    .filter(|(_, (_, queue))| !queue.is_empty())
                    .map(|(si, t)| {
                        task_sis.push(si);
                        t
                    })
                    .collect();
                if isolate {
                    let results = executor::run_tasks_isolated(workers, tasks, |_, (shard, queue)| {
                        shard.drain(queue, strategy)
                    });
                    let mut partials = Vec::with_capacity(results.len());
                    for (k, r) in results.into_iter().enumerate() {
                        partials.push(match r {
                            Ok(p) => p,
                            Err(_) => {
                                self.panics_isolated += 1;
                                let si = task_sis[k];
                                shards[si].1.col.quarantine_rebuild();
                                shards[si].1.drain(&queues[si], strategy)
                            }
                        });
                    }
                    partials
                } else {
                    executor::run_tasks(workers, tasks, |_, (shard, queue)| {
                        shard.drain(queue, strategy)
                    })
                }
            }
        };
        let mut results = vec![(0usize, 0u64); batch.len()];
        for part in partials {
            for (qi, count, sum) in part {
                results[qi].0 += count;
                results[qi].1 = results[qi].1.wrapping_add(sum);
            }
        }
        results
    }

    /// Convenience single-query select (one-element [`ChunkedCracker::execute`]).
    pub fn select_aggregate(&mut self, q: QueryRange) -> (usize, u64) {
        self.execute(std::slice::from_ref(&q))[0]
    }

    /// The refined partition-merge: chunks → key-disjoint shards.
    ///
    /// 1. Quantile bounds over all tuples (introselect on a scratch
    ///    copy), one per chunk — the [`BatchScheduler`](crate::BatchScheduler)
    ///    partitioning, computed adaptively from the already-cracked data.
    /// 2. Every chunk cuts itself at each bound through its own crack
    ///    index — [`CrackedColumn::crack_on`] only reorganizes the piece
    ///    still containing the bound, so converged chunks cut nearly for
    ///    free. The cut cost lands in the chunk's [`Stats`] and is
    ///    retired into the cumulative totals.
    /// 3. Shard `j` concatenates interval `j` of every chunk
    ///    (interval-major, chunk-minor — deterministic layout).
    /// 4. Chunk-phase crack structure is carried over: an even-stride
    ///    sample of the chunks' crack-key union inside each shard's span
    ///    (≤ [`MERGE_CRACK_SAMPLE`] keys) is re-cracked into the new
    ///    shard, warming it before the first post-merge query.
    fn partition_merge(&mut self, isolate: bool) {
        let Phase::Chunked(chunks) = &mut self.phase else {
            return;
        };
        let shard_count = chunks.len();

        // 1. Quantile bounds on a scratch copy of the full column.
        let mut scratch: Vec<E> = Vec::new();
        for chunk in chunks.iter() {
            scratch.extend_from_slice(chunk.col.data());
        }
        let n = scratch.len();
        let mut bounds: Vec<u64> = Vec::new();
        if shard_count > 1 && n > 1 {
            let mut scratch_stats = Stats::default();
            for i in 1..shard_count {
                let k = i * n / shard_count;
                if k > 0 && k < n {
                    bounds.push(select_nth_key(&mut scratch, k, &mut scratch_stats));
                }
            }
            bounds.dedup();
            bounds.retain(|b| *b > 0);
        }
        drop(scratch);

        // 2. Cut every chunk at every bound via its crack index; collect
        //    the crack keys each chunk earned (for step 4) and retire
        //    its stats.
        let mut crack_keys: Vec<u64> = Vec::new();
        let mut segments: Vec<Vec<Vec<E>>> = Vec::with_capacity(chunks.len());
        for chunk in chunks.iter_mut() {
            crack_keys.extend(chunk.col.index().crack_arrays().0);
            let cut_all = |col: &mut CrackedColumn<E>| -> Vec<usize> {
                bounds.iter().map(|&b| col.crack_on(b)).collect()
            };
            let cuts: Vec<usize> = if isolate {
                // A chunk with an armed fault can die in the cut itself;
                // recover by discarding its earned structure (multiset
                // intact) and cutting the rebuilt, disarmed column.
                match catch_unwind(AssertUnwindSafe(|| cut_all(&mut chunk.col))) {
                    Ok(cuts) => cuts,
                    Err(_) => {
                        self.panics_isolated += 1;
                        chunk.col.quarantine_rebuild();
                        cut_all(&mut chunk.col)
                    }
                }
            } else {
                cut_all(&mut chunk.col)
            };
            self.retired += chunk.col.stats();
            let (data, _, _) = chunk.col.parts_mut();
            let mut data = std::mem::take(data);
            let mut segs: Vec<Vec<E>> = Vec::with_capacity(cuts.len() + 1);
            for &pos in cuts.iter().rev() {
                segs.push(data.split_off(pos));
            }
            segs.push(data);
            segs.reverse();
            segments.push(segs);
        }
        crack_keys.sort_unstable();
        crack_keys.dedup();

        // 3 + 4. Assemble each shard interval-major chunk-minor, then
        //        re-crack the sampled key union into it.
        let spans: Vec<QueryRange> = {
            let mut spans = Vec::with_capacity(bounds.len() + 1);
            let mut lo = 0u64;
            for &b in &bounds {
                spans.push(QueryRange::new(lo, b));
                lo = b;
            }
            spans.push(QueryRange::new(lo, u64::MAX));
            spans
        };
        let mut shards: Vec<(QueryRange, Chunk<E>)> = Vec::with_capacity(spans.len());
        for (j, &span) in spans.iter().enumerate() {
            let mut data = Vec::new();
            for segs in &mut segments {
                data.append(&mut segs[j]);
            }
            // Merged shards build disarmed: fault plans describe faults
            // in the columns armed at construction, and the merge itself
            // re-cracks into these columns (an armed plan would fire
            // inside the merge, not during serving).
            let disarmed = self.config.with_fault(scrack_core::FaultPlan::disabled());
            let mut col = CrackedColumn::new(data, disarmed);
            // Sample the earned crack keys strictly inside the span
            // (span edges are already piece boundaries by construction).
            let lo_i = crack_keys.partition_point(|k| *k <= span.low);
            let hi_i = crack_keys.partition_point(|k| *k < span.high);
            let inside = &crack_keys[lo_i..hi_i];
            let take = inside.len().min(MERGE_CRACK_SAMPLE);
            for t in 0..take {
                col.crack_on(inside[t * inside.len() / take.max(1)]);
            }
            shards.push((
                span,
                Chunk {
                    col,
                    rng: SmallRng::seed_from_u64(
                        self.seed.wrapping_add(0x6D65_7267).wrapping_add(j as u64),
                    ),
                },
            ));
        }
        self.phase = Phase::Merged(shards);
    }

    /// Cumulative physical costs: retired chunk columns plus the live
    /// chunks/shards (the partition-merge's cut and re-crack work is
    /// included; the construction-time split is not, matching the other
    /// wrappers).
    pub fn stats(&self) -> Stats {
        let mut s = self.retired;
        match &self.phase {
            Phase::Chunked(chunks) => {
                for c in chunks {
                    s += c.col.stats();
                }
            }
            Phase::Merged(shards) => {
                for (_, c) in shards {
                    s += c.col.stats();
                }
            }
        }
        s
    }

    /// Full integrity check (tests only; O(n)): every column's cracker
    /// invariants hold, and post-merge every key lies inside its shard's
    /// span with spans chaining contiguously over the key space.
    pub fn check_integrity(&self) -> Result<(), String> {
        match &self.phase {
            Phase::Chunked(chunks) => {
                for (i, c) in chunks.iter().enumerate() {
                    c.col
                        .check_integrity()
                        .map_err(|e| format!("chunk {i}: {e}"))?;
                }
            }
            Phase::Merged(shards) => {
                let mut expect_lo = 0u64;
                for (i, (span, c)) in shards.iter().enumerate() {
                    c.col
                        .check_integrity()
                        .map_err(|e| format!("shard {i}: {e}"))?;
                    if span.low != expect_lo {
                        return Err(format!("shard {i}: span gap at {expect_lo}"));
                    }
                    expect_lo = span.high;
                    if let Some(e) = c.col.data().iter().find(|e| !span.contains(e.key())) {
                        return Err(format!("shard {i}: key {} outside {span}", e.key()));
                    }
                }
                if expect_lo != u64::MAX {
                    return Err("shard spans do not cover the key space".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 48_271) % n).collect()
    }

    fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
        data.iter()
            .filter(|k| q.contains(**k))
            .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    fn mixed_batch(n: u64, count: usize, salt: u64) -> Vec<QueryRange> {
        let mut state = 0x9E37_79B9u64 ^ salt;
        (0..count)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match i % 4 {
                    0 => {
                        let a = state % n;
                        QueryRange::new(a, a + 1 + state % 64)
                    }
                    1 => {
                        let a = state % (n / 2);
                        QueryRange::new(a, a + n / 3)
                    }
                    2 => QueryRange::new(state % n, state % n), // empty
                    _ => {
                        let a = state % n;
                        QueryRange::new(a, a + 1_000)
                    }
                }
            })
            .collect()
    }

    #[test]
    fn chunked_matches_oracle_across_the_merge() {
        let n = 30_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let mut cc = ChunkedCracker::new(data.clone(), 4, strategy, CrackConfig::default(), 11)
                .with_merge_after(100);
            let mut merged_seen = false;
            for round in 0..4u64 {
                let batch = mixed_batch(n, 64, round);
                let results = cc.execute(&batch);
                for (qi, q) in batch.iter().enumerate() {
                    assert_eq!(
                        results[qi],
                        oracle(&data, *q),
                        "{strategy:?} round {round} query {qi} ({q})"
                    );
                }
                cc.check_integrity().unwrap();
                merged_seen |= cc.has_merged();
            }
            assert!(merged_seen, "{strategy:?}: merge must fire mid-stream");
        }
    }

    #[test]
    fn threaded_and_serial_execution_are_bit_identical_across_the_merge() {
        let n = 20_000u64;
        let data = permuted(n);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let mut par = ChunkedCracker::new(data.clone(), 4, strategy, CrackConfig::default(), 3)
                .with_merge_after(80);
            let mut ser = ChunkedCracker::new(data.clone(), 4, strategy, CrackConfig::default(), 3)
                .with_merge_after(80);
            for round in 0..4u64 {
                let batch = mixed_batch(n, 48, round);
                assert_eq!(
                    par.execute(&batch),
                    ser.execute_serial(&batch),
                    "{strategy:?} round {round}: answers"
                );
                assert_eq!(
                    par.stats(),
                    ser.stats(),
                    "{strategy:?} round {round}: Stats must be bit-identical"
                );
            }
            assert_eq!(par.has_merged(), ser.has_merged());
            assert!(par.has_merged());
        }
    }

    #[test]
    fn merge_carries_crack_structure_into_the_shards() {
        let n = 40_000u64;
        let data = permuted(n);
        let mut cc = ChunkedCracker::new(
            data.clone(),
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            7,
        )
        .with_merge_after(64);
        cc.execute(&mixed_batch(n, 64, 1)); // chunk phase: earn cracks
        assert!(!cc.has_merged());
        cc.execute(&mixed_batch(n, 16, 2)); // merge fires at batch start
        assert!(cc.has_merged());
        cc.check_integrity().unwrap();
        // The carried sample must leave the shards warm: answering a
        // fresh query stream post-merge touches far less than n per
        // query would suggest for a cold start.
        let Phase::Merged(shards) = &cc.phase else {
            unreachable!()
        };
        let carried: usize = shards.iter().map(|(_, c)| c.col.index().crack_count()).sum();
        assert!(
            carried > shards.len(),
            "merged shards must inherit sampled cracks, got {carried}"
        );
    }

    #[test]
    fn merge_preserves_the_multiset() {
        let n = 10_000u64;
        let data = permuted(n);
        let mut cc = ChunkedCracker::new(
            data.clone(),
            3,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        )
        .with_merge_after(0); // merge before the very first batch
        let results = cc.execute(&[QueryRange::new(0, n)]);
        assert_eq!(results[0], oracle(&data, QueryRange::new(0, n)));
        assert!(cc.has_merged());
        cc.check_integrity().unwrap();
    }

    #[test]
    fn narrow_queries_touch_one_shard_after_the_merge() {
        let n = 40_000u64;
        let data = permuted(n);
        let mut cc = ChunkedCracker::new(
            data,
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            9,
        )
        .with_merge_after(0);
        cc.execute(&[QueryRange::new(0, 1)]); // trigger the merge
        let before = cc.stats();
        // A narrow query inside one shard's span: only that shard works.
        cc.execute(&[QueryRange::new(100, 110)]);
        let delta = cc.stats().since(&before);
        assert!(
            delta.touched < n / 2,
            "narrow post-merge query must stay shard-local, touched {}",
            delta.touched
        );
    }

    #[test]
    fn single_chunk_empty_column_and_tiny_data() {
        let mut one = ChunkedCracker::new(
            permuted(1_000),
            1,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            1,
        );
        assert_eq!(one.chunk_count(), 1);
        assert_eq!(one.select_aggregate(QueryRange::new(0, 1_000)), (1_000, 499_500));

        let mut empty: ChunkedCracker<u64> = ChunkedCracker::new(
            vec![],
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            1,
        )
        .with_merge_after(0);
        assert_eq!(empty.select_aggregate(QueryRange::new(0, 10)), (0, 0));
        assert!(empty.has_merged());
        empty.check_integrity().unwrap();

        let mut tiny = ChunkedCracker::new(
            vec![5u64, 1, 3],
            16,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            1,
        )
        .with_merge_after(1);
        assert_eq!(tiny.select_aggregate(QueryRange::new(0, 10)), (3, 9));
        assert_eq!(tiny.select_aggregate(QueryRange::new(0, 10)), (3, 9));
        assert!(tiny.has_merged());
        tiny.check_integrity().unwrap();
    }

    #[test]
    fn injected_panic_quarantines_one_chunk_and_stays_oracle_correct() {
        use scrack_core::FaultPlan;
        let n = 20_000u64;
        let data = permuted(n);
        // Chunk 1's first crack attempt dies mid-kernel; isolation must
        // keep every answer oracle-correct and every other chunk's work.
        let config = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(1).on_target(1));
        let mut cc = ChunkedCracker::new(data.clone(), 4, ParallelStrategy::Stochastic, config, 7)
            .with_merge_after(64);
        let batch = mixed_batch(n, 64, 1);
        let results = cc.execute_resilient(&batch);
        for (qi, q) in batch.iter().enumerate() {
            assert_eq!(results[qi], oracle(&data, *q), "query {qi} ({q})");
        }
        assert_eq!(cc.panics_isolated(), 1);
        cc.check_integrity().unwrap();
        // Next batch crosses the merge; the rebuilt chunk is disarmed and
        // merged shards build disarmed, so serving stays clean.
        let batch2 = mixed_batch(n, 64, 2);
        let results2 = cc.execute_resilient(&batch2);
        for (qi, q) in batch2.iter().enumerate() {
            assert_eq!(results2[qi], oracle(&data, *q), "post-recovery query {qi}");
        }
        assert!(cc.has_merged());
        assert_eq!(cc.panics_isolated(), 1, "the fault fires exactly once");
        cc.check_integrity().unwrap();
    }

    #[test]
    fn injected_panic_during_the_merge_cut_recovers() {
        use scrack_core::FaultPlan;
        let n = 10_000u64;
        let data = permuted(n);
        // merge_after(0) runs the partition-merge before the first query
        // is served, so chunk 0's trigger-1 fault fires inside the
        // merge's bound cut — the recovery path under test.
        let config = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(1).on_target(0));
        let mut cc = ChunkedCracker::new(data.clone(), 4, ParallelStrategy::Crack, config, 3)
            .with_merge_after(0);
        let batch = mixed_batch(n, 16, 5);
        let results = cc.execute_resilient(&batch);
        assert!(cc.has_merged());
        assert_eq!(cc.panics_isolated(), 1, "the cut itself must have died once");
        for (qi, q) in batch.iter().enumerate() {
            assert_eq!(results[qi], oracle(&data, *q), "query {qi}");
        }
        cc.check_integrity().unwrap();
    }

    #[test]
    fn stats_stay_cumulative_across_the_merge() {
        let n = 10_000u64;
        let mut cc = ChunkedCracker::new(
            permuted(n),
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            3,
        )
        .with_merge_after(32);
        cc.execute(&mixed_batch(n, 32, 0));
        let before_merge = cc.stats();
        assert!(before_merge.touched > 0);
        cc.execute(&mixed_batch(n, 8, 1)); // merge + more queries
        let after = cc.stats();
        assert!(cc.has_merged());
        assert!(
            after.touched >= before_merge.touched,
            "stats must never go backwards across the merge"
        );
        assert!(after.queries >= before_merge.queries);
    }
}
