//! A small work-stealing executor for coarse shard/chunk tasks.
//!
//! [`BatchScheduler`](crate::BatchScheduler) used to spawn one scoped
//! thread per shard regardless of queue length or core count: a 16-shard
//! scheduler on a 4-core box paid 16 thread spawns per batch and let the
//! OS multiplex them, and a skewed batch left most of those threads idle
//! while one shard drained a long queue. This module replaces that shape
//! with the standard answer (Alvarez et al., DaMoN 2014 run their
//! parallel-chunked cracking on exactly such a pool): a fixed set of
//! workers, **at most one per available core**, each with its own task
//! deque, and idle workers *stealing* queued tasks from loaded ones so a
//! skewed task distribution cannot idle cores.
//!
//! Tasks here are coarse — "drain this shard's queue", "crack this chunk
//! for the whole batch" — and mutually independent (each owns `&mut` to
//! its shard), so the executor can stay small: no futures, no unsafe, no
//! task respawning. Total work is fixed up front, which makes
//! termination trivial: a worker exits once every deque is empty (tasks
//! in flight are owned by the worker running them and need no tracking).
//!
//! Determinism: the result of every task depends only on the task itself
//! (per-shard state and RNG streams), never on which worker ran it or
//! when, so answers and [`Stats`](scrack_types::Stats) are bit-identical
//! under any scheduling — the property `tests/threaded_determinism.rs`
//! pins across the whole parallel layer.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Number of workers worth running for `tasks` independent tasks: one
/// per available core, never more than there are tasks, at least one.
#[inline]
pub fn worker_count(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(tasks)
        .max(1)
}

/// Runs `items` through `f` on up to `workers` work-stealing threads and
/// returns the results in item order.
///
/// Each item becomes one task; tasks are dealt round-robin onto
/// per-worker deques, workers pop their own deque from the front and
/// steal from the back of the most loaded other deque when theirs runs
/// dry. `f` receives the item's index and the item. With `workers <= 1`
/// (or a single item) everything runs inline on the calling thread — no
/// spawn cost on the serial path.
///
/// ```
/// let squares = scrack_parallel::executor::run_tasks(4, (0u64..8).collect(), |_, x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_tasks<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.min(total).max(1);
    if workers == 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Deal tasks round-robin so every worker starts loaded; skew in task
    // *cost* (not count) is what stealing exists to fix.
    let mut deques: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push_back((i, item));
    }
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

    let deques_ref = &deques;
    let slots_ref = &slots;
    let f_ref = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || loop {
                    // Own deque first (front: FIFO keeps the dealt order,
                    // so serial and threaded runs visit tasks alike)...
                    let task = deques_ref[w].lock().pop_front();
                    let task = match task {
                        Some(t) => Some(t),
                        // ...then steal from the back of the fullest
                        // other deque.
                        None => steal(deques_ref, w),
                    };
                    match task {
                        Some((i, item)) => {
                            let r = f_ref(i, item);
                            *slots_ref[i].lock() = Some(r);
                        }
                        // Every deque empty: total work is fixed, so
                        // nothing will ever appear again — exit.
                        None => break,
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("executor worker panicked");
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("task completed exactly once"))
        .collect()
}

/// Steals one task from the back of the longest other deque, or `None`
/// when every deque is empty.
fn steal<T>(deques: &[Mutex<VecDeque<(usize, T)>>], thief: usize) -> Option<(usize, T)> {
    // Probe for the fullest victim without holding more than one lock.
    let mut victim: Option<(usize, usize)> = None;
    for (v, deque) in deques.iter().enumerate() {
        if v == thief {
            continue;
        }
        let len = deque.lock().len();
        if len > 0 && victim.is_none_or(|(_, best)| len > best) {
            victim = Some((v, len));
        }
    }
    let (v, _) = victim?;
    // The victim may have drained between the probe and now; that is
    // fine — the caller loops until every deque reads empty.
    deques[v].lock().pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_item_order() {
        for workers in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..37).collect();
            let out = run_tasks(workers, items, |i, x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, (0..37).map(|x| x * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_tasks(4, (0..100).collect::<Vec<usize>>(), |_, x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn skewed_task_costs_still_complete() {
        // One task 1000x the cost of the rest: stealing (or at worst
        // patience) must still finish everything with correct results.
        let items: Vec<usize> = (0..16).collect();
        let out = run_tasks(4, items, |_, x| {
            let reps = if x == 0 { 100_000 } else { 100 };
            (0..reps).fold(x as u64, |acc, i| acc.wrapping_add(i as u64 ^ acc.rotate_left(7)))
        });
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u64> = run_tasks(4, Vec::<u64>::new(), |_, x| x);
        assert!(none.is_empty());
        assert_eq!(run_tasks(4, vec![9u64], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn worker_count_caps_at_tasks_and_stays_positive() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(worker_count(1_000_000), cpus);
    }
}
