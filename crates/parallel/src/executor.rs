//! A small work-stealing executor for coarse shard/chunk tasks.
//!
//! [`BatchScheduler`](crate::BatchScheduler) used to spawn one scoped
//! thread per shard regardless of queue length or core count: a 16-shard
//! scheduler on a 4-core box paid 16 thread spawns per batch and let the
//! OS multiplex them, and a skewed batch left most of those threads idle
//! while one shard drained a long queue. This module replaces that shape
//! with the standard answer (Alvarez et al., DaMoN 2014 run their
//! parallel-chunked cracking on exactly such a pool): a fixed set of
//! workers, **at most one per available core**, each with its own task
//! deque, and idle workers *stealing* queued tasks from loaded ones so a
//! skewed task distribution cannot idle cores.
//!
//! Tasks here are coarse — "drain this shard's queue", "crack this chunk
//! for the whole batch" — and mutually independent (each owns `&mut` to
//! its shard), so the executor can stay small: no futures, no unsafe, no
//! task respawning. Total work is fixed up front, which makes
//! termination trivial: a worker exits once every deque is empty (tasks
//! in flight are owned by the worker running them and need no tracking).
//!
//! Determinism: the result of every task depends only on the task itself
//! (per-shard state and RNG streams), never on which worker ran it or
//! when, so answers and [`Stats`](scrack_types::Stats) are bit-identical
//! under any scheduling — the property `tests/threaded_determinism.rs`
//! pins across the whole parallel layer.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One isolated task panic: which task died and the panic message.
///
/// Produced by [`run_tasks_isolated`]; the worker that caught it went on
/// to run its remaining tasks, so one bad task never takes down a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// The item index of the task that panicked.
    pub task: usize,
    /// The panic payload rendered as text (`"<non-string panic>"` when
    /// the payload was neither `&str` nor `String`).
    pub message: String,
}

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Ok(s) = payload.downcast::<String>() {
        *s
    } else {
        "<non-string panic>".to_string()
    }
}

/// Number of workers worth running for `tasks` independent tasks: one
/// per available core, never more than there are tasks, at least one.
#[inline]
pub fn worker_count(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(tasks)
        .max(1)
}

/// Runs `items` through `f` on up to `workers` work-stealing threads and
/// returns the results in item order.
///
/// Each item becomes one task; tasks are dealt round-robin onto
/// per-worker deques, workers pop their own deque from the front and
/// steal from the back of the most loaded other deque when theirs runs
/// dry. `f` receives the item's index and the item. With `workers <= 1`
/// (or a single item) everything runs inline on the calling thread — no
/// spawn cost on the serial path.
///
/// ```
/// let squares = scrack_parallel::executor::run_tasks(4, (0u64..8).collect(), |_, x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_tasks<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_tasks_isolated(workers, items, f)
        .into_iter()
        .map(|r| match r {
            Ok(r) => r,
            Err(p) => panic!("executor task {} panicked: {}", p.task, p.message),
        })
        .collect()
}

/// [`run_tasks`] with **panic isolation**: each task runs under
/// `catch_unwind`, so a panicking task yields `Err(TaskPanic)` in its
/// result slot while every other task — including later tasks on the
/// same worker — still runs to completion. The serial (`workers <= 1`)
/// path catches identically, so isolation semantics don't depend on the
/// thread count.
///
/// Callers own the unwind-safety judgement: a task that panicked may
/// have left its `&mut` state half-reorganized, and the schedulers that
/// use this entry point quarantine that state (discard the cracker
/// index, degrade to scans) rather than trusting it.
pub fn run_tasks_isolated<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let run_one = |i: usize, item: T| -> Result<R, TaskPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| TaskPanic {
            task: i,
            message: panic_message(payload),
        })
    };
    let workers = workers.min(total).max(1);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }

    // Deal tasks round-robin so every worker starts loaded; skew in task
    // *cost* (not count) is what stealing exists to fix.
    let mut deques: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push_back((i, item));
    }
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();
    let slots: Vec<Mutex<Option<Result<R, TaskPanic>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();

    let deques_ref = &deques;
    let slots_ref = &slots;
    let run_ref = &run_one;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || loop {
                    // Own deque first (front: FIFO keeps the dealt order,
                    // so serial and threaded runs visit tasks alike)...
                    let task = deques_ref[w].lock().pop_front();
                    let task = match task {
                        Some(t) => Some(t),
                        // ...then steal from the back of the fullest
                        // other deque.
                        None => steal(deques_ref, w),
                    };
                    match task {
                        Some((i, item)) => {
                            let r = run_ref(i, item);
                            *slots_ref[i].lock() = Some(r);
                        }
                        // Every deque empty: total work is fixed, so
                        // nothing will ever appear again — exit.
                        None => break,
                    }
                })
            })
            .collect();
        for h in handles {
            // Workers catch task panics, so a join failure would be a bug
            // in the executor itself, not in a task.
            h.join().expect("executor worker infrastructure panicked");
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("task completed exactly once"))
        .collect()
}

/// Steals one task from the back of the longest other deque, or `None`
/// when every deque is empty.
fn steal<T>(deques: &[Mutex<VecDeque<(usize, T)>>], thief: usize) -> Option<(usize, T)> {
    // Probe for the fullest victim without holding more than one lock.
    let mut victim: Option<(usize, usize)> = None;
    for (v, deque) in deques.iter().enumerate() {
        if v == thief {
            continue;
        }
        let len = deque.lock().len();
        if len > 0 && victim.is_none_or(|(_, best)| len > best) {
            victim = Some((v, len));
        }
    }
    let (v, _) = victim?;
    // The victim may have drained between the probe and now; that is
    // fine — the caller loops until every deque reads empty.
    deques[v].lock().pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_item_order() {
        for workers in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..37).collect();
            let out = run_tasks(workers, items, |i, x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, (0..37).map(|x| x * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_tasks(4, (0..100).collect::<Vec<usize>>(), |_, x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn skewed_task_costs_still_complete() {
        // One task 1000x the cost of the rest: stealing (or at worst
        // patience) must still finish everything with correct results.
        let items: Vec<usize> = (0..16).collect();
        let out = run_tasks(4, items, |_, x| {
            let reps = if x == 0 { 100_000 } else { 100 };
            (0..reps).fold(x as u64, |acc, i| acc.wrapping_add(i as u64 ^ acc.rotate_left(7)))
        });
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u64> = run_tasks(4, Vec::<u64>::new(), |_, x| x);
        assert!(none.is_empty());
        assert_eq!(run_tasks(4, vec![9u64], |_, x| x + 1), vec![10]);
    }

    /// PR 7 regression pin (satellite): a panicking task still aborts
    /// the *plain* `run_tasks` call — the legacy contract callers that
    /// haven't opted into isolation rely on (fail loud, never return
    /// partial results silently).
    #[test]
    fn run_tasks_propagates_a_task_panic() {
        for workers in [1, 4] {
            let caught = std::panic::catch_unwind(|| {
                run_tasks(workers, (0..8).collect::<Vec<usize>>(), |_, x| {
                    if x == 3 {
                        panic!("boom in task 3");
                    }
                    x
                })
            });
            let msg = panic_message(caught.expect_err("must propagate"));
            assert!(msg.contains("task 3"), "workers={workers}: {msg}");
        }
    }

    #[test]
    fn isolated_run_completes_every_other_task_around_a_panic() {
        use std::sync::atomic::AtomicUsize;
        for workers in [1, 2, 4] {
            let ran = AtomicUsize::new(0);
            let out = run_tasks_isolated(workers, (0..16).collect::<Vec<usize>>(), |_, x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x % 5 == 2 {
                    panic!("injected {x}");
                }
                x * 2
            });
            assert_eq!(ran.load(Ordering::Relaxed), 16, "workers={workers}");
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 2 {
                    let p = r.as_ref().expect_err("panicking task yields Err");
                    assert_eq!(p.task, i);
                    assert!(p.message.contains(&format!("injected {i}")), "{p:?}");
                } else {
                    assert_eq!(*r.as_ref().expect("healthy task"), i * 2);
                }
            }
        }
    }

    #[test]
    fn isolated_run_renders_non_str_panic_payloads() {
        let out = run_tasks_isolated(1, vec![0u64], |_, _| -> u64 {
            std::panic::panic_any(42u64)
        });
        assert_eq!(out[0].as_ref().unwrap_err().message, "<non-string panic>");
    }

    #[test]
    fn worker_count_caps_at_tasks_and_stays_positive() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(worker_count(1_000_000), cpus);
    }
}
