//! Shard-parallel cracking, plus the workspace's shared key-disjoint
//! partitioning helper ([`key_disjoint_partitions`]).

use crate::ParallelStrategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, CrackedColumn, KernelPolicy};
use scrack_partition::{crack_in_two_policy, select_nth_key};
use scrack_types::{Element, QueryRange, Stats};

/// Range-partitions `data` into (up to) `shard_count` key-disjoint
/// spans on quantile bounds: introselect over a scratch copy picks the
/// k-th smallest key at every `1/shard_count` position, then the
/// physical split runs the configured [`KernelPolicy`] kernel, peeling
/// one partition off the front per bound. Spans chain contiguously from
/// `0` to `u64::MAX`.
///
/// Heavily duplicated keys can collapse adjacent quantiles; equal
/// bounds merge, so fewer partitions than asked may come back —
/// key-disjointness is never violated. This is the construction-time
/// partitioning shared by [`crate::BatchScheduler`] and the `scrack_txn`
/// session layer, so both route keys over the identical shard map.
///
/// # Panics
/// If `shard_count` is zero.
pub fn key_disjoint_partitions<E: Element>(
    mut data: Vec<E>,
    shard_count: usize,
    kernel: KernelPolicy,
) -> Vec<(QueryRange, Vec<E>)> {
    assert!(shard_count > 0, "need at least one shard");
    let n = data.len();
    let mut bounds: Vec<u64> = Vec::new();
    if shard_count > 1 && n > 1 {
        let mut scratch = data.clone();
        let mut scratch_stats = Stats::default();
        for i in 1..shard_count {
            let k = i * n / shard_count;
            if k > 0 && k < n {
                bounds.push(select_nth_key(&mut scratch, k, &mut scratch_stats));
            }
        }
        bounds.dedup();
        bounds.retain(|b| *b > 0);
    }
    let mut parts = Vec::with_capacity(bounds.len() + 1);
    let mut split_stats = Stats::default();
    let mut lo = 0u64;
    for &b in &bounds {
        let pos = crack_in_two_policy(&mut data, b, kernel, &mut split_stats);
        let tail = data.split_off(pos);
        parts.push((QueryRange::new(lo, b), data));
        data = tail;
        lo = b;
    }
    parts.push((QueryRange::new(lo, u64::MAX), data));
    parts
}

/// One shard: an independent cracker column plus its RNG stream.
#[derive(Debug)]
struct Shard<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
}

impl<E: Element> Shard<E> {
    /// Answers `q`, returning `(count, key_sum)` and appending qualifying
    /// elements to `out` when collection is requested.
    fn select(
        &mut self,
        q: QueryRange,
        strategy: ParallelStrategy,
        mut out: Option<&mut Vec<E>>,
    ) -> (usize, u64) {
        let res = match strategy {
            ParallelStrategy::Crack => self.col.select_original(q),
            ParallelStrategy::Stochastic => self.col.mdd1r_select(q, &mut self.rng),
        };
        let mut count = 0usize;
        let mut sum = 0u64;
        for e in res.resolve(self.col.data()) {
            count += 1;
            sum = sum.wrapping_add(e.key());
            if let Some(buf) = out.as_deref_mut() {
                buf.push(e);
            }
        }
        (count, sum)
    }
}

/// A column split into independently cracked shards, queried in parallel.
///
/// Each shard holds an arbitrary horizontal slice of the tuples (cracking
/// makes no assumption about initial order, so a plain chunk split is
/// correct). A select fans out to every shard on its own scoped thread;
/// reorganizations never conflict because shards share nothing.
#[derive(Debug)]
pub struct ShardedCracker<E: Element> {
    shards: Vec<Shard<E>>,
    strategy: ParallelStrategy,
}

impl<E: Element> ShardedCracker<E> {
    /// Splits `data` into `shard_count` near-equal shards.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn new(
        mut data: Vec<E>,
        shard_count: usize,
        strategy: ParallelStrategy,
        config: CrackConfig,
        seed: u64,
    ) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        let per = data.len().div_ceil(shard_count).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut i = 0u64;
        while !data.is_empty() {
            let tail = data.split_off(per.min(data.len()));
            shards.push(Shard {
                col: CrackedColumn::new(data, config),
                rng: SmallRng::seed_from_u64(seed.wrapping_add(i)),
            });
            data = tail;
            i += 1;
        }
        if shards.is_empty() {
            shards.push(Shard {
                col: CrackedColumn::new(Vec::new(), config),
                rng: SmallRng::seed_from_u64(seed),
            });
        }
        Self { shards, strategy }
    }

    /// [`ShardedCracker::new`] under [`CrackConfig::default`] — the
    /// pre-config constructor signature, kept as a shim.
    pub fn new_default(
        data: Vec<E>,
        shard_count: usize,
        strategy: ParallelStrategy,
        seed: u64,
    ) -> Self {
        Self::new(data, shard_count, strategy, CrackConfig::default(), seed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Parallel select: every shard cracks concurrently; returns the
    /// total qualifying count and key sum (checksum against the oracle).
    pub fn select_aggregate(&mut self, q: QueryRange) -> (usize, u64) {
        let strategy = self.strategy;
        let results: Vec<(usize, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|s| scope.spawn(move || s.select(q, strategy, None)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard panicked"))
                .collect()
        });
        results
            .into_iter()
            .fold((0, 0u64), |(c, s), (dc, ds)| (c + dc, s.wrapping_add(ds)))
    }

    /// Parallel select materializing all qualifying elements (unordered).
    pub fn select_collect(&mut self, q: QueryRange) -> Vec<E> {
        let strategy = self.strategy;
        let mut parts: Vec<Vec<E>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|s| {
                    scope.spawn(move || {
                        let mut buf = Vec::new();
                        s.select(q, strategy, Some(&mut buf));
                        buf
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard panicked"))
                .collect()
        });
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in &mut parts {
            out.append(p);
        }
        out
    }

    /// Aggregated physical costs across shards.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for shard in &self.shards {
            s += shard.col.stats();
        }
        s
    }

    /// Full integrity check of every shard (tests only; O(n)).
    pub fn check_integrity(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            s.col
                .check_integrity()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 48_271) % n).collect()
    }

    fn oracle_answer(data: &[u64], q: QueryRange) -> (usize, u64) {
        data.iter()
            .filter(|k| q.contains(**k))
            .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    #[test]
    fn sharded_select_matches_oracle() {
        let data = permuted(20_000);
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            let mut sc = ShardedCracker::new(data.clone(), 8, strategy, CrackConfig::default(), 3);
            assert_eq!(sc.shard_count(), 8);
            for i in 0..50u64 {
                let a = (i * 390) % 19_000;
                let q = QueryRange::new(a, a + 500);
                let (count, sum) = sc.select_aggregate(q);
                assert_eq!(
                    (count, sum),
                    oracle_answer(&data, q),
                    "{strategy:?} query {i}"
                );
            }
            sc.check_integrity().unwrap();
        }
    }

    #[test]
    fn collect_returns_exact_multiset() {
        let data = permuted(5_000);
        let mut sc = ShardedCracker::new(
            data.clone(),
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            9,
        );
        let q = QueryRange::new(1_000, 2_000);
        let mut got = sc.select_collect(q);
        got.sort_unstable();
        let mut expect: Vec<u64> = data.into_iter().filter(|k| q.contains(*k)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn single_shard_and_empty_column() {
        let mut sc = ShardedCracker::new(
            permuted(100),
            1,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            1,
        );
        assert_eq!(sc.shard_count(), 1);
        assert_eq!(sc.select_aggregate(QueryRange::new(0, 100)).0, 100);

        let mut empty: ShardedCracker<u64> = ShardedCracker::new(
            vec![],
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            1,
        );
        assert_eq!(empty.select_aggregate(QueryRange::new(0, 10)).0, 0);
    }

    #[test]
    fn more_shards_than_elements() {
        let mut sc = ShardedCracker::new(
            vec![5u64, 1, 3],
            16,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            1,
        );
        let (count, sum) = sc.select_aggregate(QueryRange::new(0, 10));
        assert_eq!((count, sum), (3, 9));
    }

    #[test]
    fn sequential_workload_robustness_holds_per_shard() {
        // The stochastic advantage must survive sharding.
        let data = permuted(40_000);
        let mut crack = ShardedCracker::new(
            data.clone(),
            4,
            ParallelStrategy::Crack,
            CrackConfig::default(),
            3,
        );
        let mut scrack = ShardedCracker::new(
            data,
            4,
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            3,
        );
        for i in 0..400u64 {
            let a = i * 99;
            let q = QueryRange::new(a, a + 10);
            crack.select_aggregate(q);
            scrack.select_aggregate(q);
        }
        let (c, s) = (crack.stats().touched, scrack.stats().touched);
        assert!(c > 3 * s, "sharded stochastic must stay robust: {c} vs {s}");
    }
}
