//! Serving-resilience policy types: admission control, deadlines,
//! shard health, and per-batch outcome accounting.
//!
//! The scheduler machinery lives in [`BatchScheduler`](crate::BatchScheduler)
//! (`execute_resilient`); this module defines the policy surface it is
//! driven by and the report it returns. The contract across all of it:
//!
//! * **No silent drops.** Every submitted query gets exactly one
//!   [`QueryOutcome`] — answered, shed (with its retry count), or timed
//!   out. The shed and timed-out counts are the backpressure signal an
//!   open-loop client needs to slow down.
//! * **Answered means oracle-correct.** Whatever faults fired during
//!   the batch — worker panics, poisoned shards, overload — a query
//!   reported as [`QueryOutcome::Answered`] carries exactly the
//!   aggregates a full scan of the current column contents would
//!   produce.
//! * **Degradation is a ladder, not a cliff.** A faulted shard is
//!   quarantined: its cracker index is discarded (the data multiset is
//!   preserved — cracking only swaps), queries degrade to scans over the
//!   shard's base data, and after
//!   [`ServingConfig::rebuild_after`] batches the shard re-cracks a
//!   sample of recently served bounds and resumes adaptive indexing.

use std::time::Duration;

/// What to do with a query whose target shard queues are full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything (unbounded queues — the legacy behavior, and
    /// the right choice for closed-loop trusted batches).
    #[default]
    Admit,
    /// Reject the query now; it retries on later admission waves until
    /// [`ServingConfig::max_retries`] is exhausted, then reports
    /// [`QueryOutcome::Shed`].
    Shed,
    /// Defer the query to the next admission wave, indefinitely —
    /// backpressure by waiting. Nothing is ever shed, but deadlines may
    /// expire while a query waits.
    Block,
}

impl AdmissionPolicy {
    /// The policy's CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Admit => "admit",
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Block => "block",
        }
    }

    /// Parses a CLI label (case-insensitive); `None` if unrecognized.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "admit" => Some(AdmissionPolicy::Admit),
            "shed" => Some(AdmissionPolicy::Shed),
            "block" => Some(AdmissionPolicy::Block),
            _ => None,
        }
    }

    /// Every policy, for sweeps.
    pub const ALL: [AdmissionPolicy; 3] = [
        AdmissionPolicy::Admit,
        AdmissionPolicy::Shed,
        AdmissionPolicy::Block,
    ];
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The serving policy for one resilient batch execution.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Per-shard admission-queue capacity, in queries per wave.
    /// `usize::MAX` = unbounded.
    pub queue_capacity: usize,
    /// What happens to queries that don't fit (see [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
    /// Per-query deadline budget, measured from batch arrival; a query
    /// not *started* within its budget reports [`QueryOutcome::TimedOut`]
    /// (never a partial answer). `None` = no deadlines.
    pub deadline: Option<Duration>,
    /// Extra admission waves a shed query may retry before its final
    /// [`QueryOutcome::Shed`] verdict.
    pub max_retries: u32,
    /// Batches a quarantined shard serves scans before rebuilding its
    /// index (0 = rebuild at the end of the batch the fault fired in).
    pub rebuild_after: u32,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            queue_capacity: usize::MAX,
            admission: AdmissionPolicy::Admit,
            deadline: None,
            max_retries: 2,
            rebuild_after: 0,
        }
    }
}

impl ServingConfig {
    /// Convenience: bounded queues under the given admission policy.
    pub fn bounded(capacity: usize, admission: AdmissionPolicy) -> Self {
        Self {
            queue_capacity: capacity,
            admission,
            ..Self::default()
        }
    }

    /// Convenience: with a per-query deadline budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Convenience: with a retry budget for shed work.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Convenience: with a quarantine-to-rebuild delay in batches.
    pub fn with_rebuild_after(mut self, batches: u32) -> Self {
        self.rebuild_after = batches;
        self
    }
}

/// The per-query verdict of a resilient batch execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Answered, oracle-correct, after `retries` shed-retry waves.
    Answered {
        /// Qualifying tuple count.
        count: usize,
        /// Wrapping sum of qualifying keys.
        key_sum: u64,
        /// Shed-retry waves this query went through before admission.
        retries: u32,
    },
    /// Rejected by admission control after exhausting `retries` retry
    /// waves; accounted, never silently dropped.
    Shed {
        /// Retry waves attempted before the final verdict.
        retries: u32,
    },
    /// The per-query deadline expired before the query started.
    TimedOut,
}

impl QueryOutcome {
    /// The answer, if this query was answered.
    pub fn answer(&self) -> Option<(usize, u64)> {
        match *self {
            QueryOutcome::Answered { count, key_sum, .. } => Some((count, key_sum)),
            _ => None,
        }
    }
}

/// Health of one scheduler shard in the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally: adaptive cracking on every select.
    Healthy,
    /// Index discarded after a fault; serving scans over base data
    /// until `batches_left` more batches have passed, then rebuilding.
    Quarantined {
        /// Remaining batches before the rebuild.
        batches_left: u32,
    },
}

/// Accounting for one
/// [`BatchScheduler::execute_resilient`](crate::BatchScheduler::execute_resilient)
/// call. `outcomes.len()` always equals the submitted batch length — the
/// no-silent-drops contract.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One verdict per submitted query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Queries answered (oracle-correct).
    pub answered: usize,
    /// Queries shed by admission control.
    pub shed: usize,
    /// Queries whose deadline expired before execution.
    pub timed_out: usize,
    /// Worker panics caught and isolated during this batch.
    pub panics_isolated: usize,
    /// Shards newly quarantined during this batch.
    pub quarantined: Vec<usize>,
    /// Shards whose index was rebuilt at the end of this batch.
    pub rebuilt: Vec<usize>,
    /// Admission waves the batch took (1 = everything fit at once).
    pub waves: u32,
    /// Deepest per-shard queue observed while routing — the memory
    /// bound admission control enforces.
    pub max_queue_depth: usize,
}

impl BatchReport {
    /// Shed queries as a fraction of the batch (0 for an empty batch).
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.shed as f64 / self.outcomes.len() as f64
        }
    }

    /// Whether every query was answered (nothing shed or timed out).
    pub fn fully_answered(&self) -> bool {
        self.answered == self.outcomes.len()
    }
}

/// Cumulative resilience counters over a scheduler's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Worker panics caught and isolated.
    pub panics_isolated: u64,
    /// Shard quarantines entered.
    pub quarantines: u64,
    /// Shard index rebuilds completed.
    pub rebuilds: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries that missed their deadline.
    pub timed_out: u64,
    /// Queries answered.
    pub answered: u64,
    /// Transactions committed (session layer).
    pub committed: u64,
    /// Transactions aborted — wounds, validation failures, panics,
    /// explicit aborts (session layer).
    pub aborted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_labels_round_trip() {
        for p in AdmissionPolicy::ALL {
            assert_eq!(AdmissionPolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(AdmissionPolicy::parse("Block"), Some(AdmissionPolicy::Block));
        assert_eq!(AdmissionPolicy::parse("drop"), None);
    }

    #[test]
    fn serving_defaults_are_the_legacy_shape() {
        let s = ServingConfig::default();
        assert_eq!(s.admission, AdmissionPolicy::Admit);
        assert_eq!(s.queue_capacity, usize::MAX);
        assert!(s.deadline.is_none());
    }

    #[test]
    fn outcome_answer_accessor() {
        let a = QueryOutcome::Answered {
            count: 3,
            key_sum: 99,
            retries: 1,
        };
        assert_eq!(a.answer(), Some((3, 99)));
        assert_eq!(QueryOutcome::Shed { retries: 2 }.answer(), None);
        assert_eq!(QueryOutcome::TimedOut.answer(), None);
    }

    #[test]
    fn report_rates() {
        let r = BatchReport {
            outcomes: vec![
                QueryOutcome::Answered {
                    count: 0,
                    key_sum: 0,
                    retries: 0,
                },
                QueryOutcome::Shed { retries: 2 },
            ],
            answered: 1,
            shed: 1,
            timed_out: 0,
            panics_isolated: 0,
            quarantined: vec![],
            rebuilt: vec![],
            waves: 1,
            max_queue_depth: 1,
        };
        assert!((r.shed_rate() - 0.5).abs() < 1e-12);
        assert!(!r.fully_answered());
    }
}
