//! A reader/writer-locked cracker column for concurrent query streams.

use crate::ParallelStrategy;
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, CrackedColumn};
use scrack_types::{Element, QueryRange, Stats};

/// A shared cracker column: many threads, one physical array.
///
/// The insight making a read fast path possible is that cracking is
/// self-stabilizing: once a range's bounds exist as cracks, answering it
/// needs **no reorganization** — a read lock suffices to compute the view
/// and aggregate over it. Only queries whose bounds are still missing (or
/// whose strategy wants stochastic refinement of large pieces) take the
/// write lock and crack.
///
/// This is deliberately coarse-grained (one lock for the whole column) —
/// the simplest correct design on the road the paper's §6 sketches;
/// per-piece locking is a further step the piece metadata already has a
/// natural home for.
///
/// ```
/// use scrack_core::CrackConfig;
/// use scrack_parallel::{ParallelStrategy, SharedCracker};
/// use scrack_types::QueryRange;
/// use std::sync::Arc;
///
/// let data: Vec<u64> = (0..10_000).rev().collect();
/// let col = Arc::new(SharedCracker::new(
///     data, ParallelStrategy::Stochastic, CrackConfig::default(), 7,
/// ));
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let col = Arc::clone(&col);
///         std::thread::spawn(move || col.select_aggregate(QueryRange::new(t * 100, t * 100 + 50)))
///     })
///     .collect();
/// for h in handles {
///     let (count, _sum) = h.join().unwrap();
///     assert_eq!(count, 50);
/// }
/// ```
#[derive(Debug)]
pub struct SharedCracker<E: Element> {
    inner: RwLock<Inner<E>>,
    strategy: ParallelStrategy,
}

#[derive(Debug)]
struct Inner<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
}

impl<E: Element> SharedCracker<E> {
    /// Wraps `data` for shared use; `config.kernel` selects the
    /// reorganization kernel the slow (cracking) path runs.
    pub fn new(data: Vec<E>, strategy: ParallelStrategy, config: CrackConfig, seed: u64) -> Self {
        Self {
            inner: RwLock::new(Inner {
                col: CrackedColumn::new(data, config),
                rng: SmallRng::seed_from_u64(seed),
            }),
            strategy,
        }
    }

    /// [`SharedCracker::new`] under [`CrackConfig::default`] — the
    /// pre-config constructor signature, kept as a shim.
    pub fn new_default(data: Vec<E>, strategy: ParallelStrategy, seed: u64) -> Self {
        Self::new(data, strategy, CrackConfig::default(), seed)
    }

    /// Whether `[q.low, q.high)` is answerable without reorganization:
    /// both bounds already exist as cracks (or lie outside the key span
    /// of their piece edge).
    fn view_bounds_ready(col: &CrackedColumn<E>, q: QueryRange) -> Option<(usize, usize)> {
        let p1 = col.index().piece_containing(q.low);
        if p1.lo_key != Some(q.low) {
            return None;
        }
        let p2 = col.index().piece_containing(q.high);
        if p2.lo_key != Some(q.high) {
            return None;
        }
        Some((p1.start, p2.start))
    }

    /// Answers `q` with `(count, key_sum)`.
    ///
    /// Fast path: read lock + view aggregation when both bounds are
    /// already cracked. Slow path: write lock + (stochastic) cracking.
    pub fn select_aggregate(&self, q: QueryRange) -> (usize, u64) {
        if q.is_empty() {
            return (0, 0);
        }
        {
            let guard = self.inner.read();
            if let Some((lo, hi)) = Self::view_bounds_ready(&guard.col, q) {
                let slice = &guard.col.data()[lo..hi];
                let sum = slice.iter().fold(0u64, |s, e| s.wrapping_add(e.key()));
                return (hi - lo, sum);
            }
        }
        let mut guard = self.inner.write();
        let Inner { col, rng } = &mut *guard;
        let out = match self.strategy {
            ParallelStrategy::Crack => col.select_original(q),
            ParallelStrategy::Stochastic => col.mdd1r_select(q, rng),
        };
        out.resolve(col.data())
            .fold((0usize, 0u64), |(c, s), e| (c + 1, s.wrapping_add(e.key())))
    }

    /// Runs `f` over the qualifying elements (under the appropriate lock).
    pub fn select_for_each(&self, q: QueryRange, mut f: impl FnMut(E)) {
        if q.is_empty() {
            return;
        }
        {
            let guard = self.inner.read();
            if let Some((lo, hi)) = Self::view_bounds_ready(&guard.col, q) {
                for e in &guard.col.data()[lo..hi] {
                    f(*e);
                }
                return;
            }
        }
        let mut guard = self.inner.write();
        let Inner { col, rng } = &mut *guard;
        let out = match self.strategy {
            ParallelStrategy::Crack => col.select_original(q),
            ParallelStrategy::Stochastic => col.mdd1r_select(q, rng),
        };
        for e in out.resolve(col.data()) {
            f(e);
        }
    }

    /// Snapshot of the physical cost counters.
    pub fn stats(&self) -> Stats {
        self.inner.read().col.stats()
    }

    /// Number of cracks in the shared index.
    pub fn crack_count(&self) -> usize {
        self.inner.read().col.index().crack_count()
    }

    /// Full integrity check (tests only; takes the read lock, O(n)).
    pub fn check_integrity(&self) -> Result<(), String> {
        self.inner.read().col.check_integrity()
    }
}

/// A tiny deterministic RNG for test threads (no shared state).
#[cfg(test)]
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 48_271) % n).collect()
    }

    fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
        data.iter()
            .filter(|k| q.contains(**k))
            .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    #[test]
    fn shared_select_matches_oracle_single_threaded() {
        let data = permuted(10_000);
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        );
        for i in 0..100u64 {
            let a = (i * 97) % 9_000;
            let q = QueryRange::new(a, a + 100);
            assert_eq!(sc.select_aggregate(q), oracle(&data, q), "query {i}");
        }
        sc.check_integrity().unwrap();
    }

    #[test]
    fn repeated_query_takes_the_read_path() {
        let data = permuted(10_000);
        let sc = SharedCracker::new(data, ParallelStrategy::Crack, CrackConfig::default(), 5);
        let q = QueryRange::new(2_000, 3_000);
        let first = sc.select_aggregate(q);
        let touched_after_first = sc.stats().touched;
        // The repeat must not reorganize (no new touches counted).
        let second = sc.select_aggregate(q);
        assert_eq!(first, second);
        assert_eq!(
            sc.stats().touched,
            touched_after_first,
            "second run must be pure read-path"
        );
    }

    #[test]
    fn concurrent_threads_agree_with_oracle() {
        let data = permuted(50_000);
        let sc = Arc::new(SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        ));
        let data = Arc::new(data);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let sc = Arc::clone(&sc);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                let mut state = 0x1234_5678u64 ^ (t + 1);
                for _ in 0..200 {
                    let a = xorshift(&mut state) % 49_000;
                    let w = xorshift(&mut state) % 800 + 1;
                    let q = QueryRange::new(a, a + w);
                    let got = sc.select_aggregate(q);
                    let expect = oracle(&data, q);
                    assert_eq!(got, expect, "thread {t} query {q}");
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        sc.check_integrity().unwrap();
        assert!(sc.crack_count() > 0, "concurrent queries must have cracked");
    }

    #[test]
    fn select_for_each_visits_every_match() {
        let data = permuted(2_000);
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        let q = QueryRange::new(500, 700);
        let mut got = Vec::new();
        sc.select_for_each(q, |e| got.push(e));
        got.sort_unstable();
        let mut expect: Vec<u64> = data.into_iter().filter(|k| q.contains(*k)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        // Second call goes through the read path; same result.
        let mut again = Vec::new();
        sc.select_for_each(q, |e| again.push(e));
        again.sort_unstable();
        assert_eq!(again, expect);
    }

    #[test]
    fn empty_query() {
        let sc: SharedCracker<u64> = SharedCracker::new(
            permuted(100),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        assert_eq!(sc.select_aggregate(QueryRange::new(5, 5)), (0, 0));
    }
}
