//! A shared cracker column with an epoch-published read fast path.

use crate::ParallelStrategy;
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::{CrackConfig, CrackedColumn};
use scrack_types::{Element, QueryRange, Stats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cracker column: many threads, one logical column.
///
/// The insight making a read fast path possible is that cracking is
/// self-stabilizing: once a range's bounds are resolvable — each bound
/// either exists as a crack or lies outside the column's key span —
/// answering it needs **no reorganization**. This wrapper turns that into
/// an **epoch-published** read path: writers (queries that still need to
/// crack) reorganize the live column under a write lock and, when enough
/// new structure has accumulated, *publish* an immutable `Snapshot` of
/// the layout — the frozen element array plus the sorted crack directory
/// and the column's key span. Readers resolve their view against the
/// latest published snapshot and aggregate over frozen data, so they
/// **never block on an in-flight crack**: a reorganization in progress is
/// invisible until its writer publishes.
///
/// Two properties make the stale-snapshot read sound:
///
/// * cracking only *permutes* elements (the multiset never changes), so a
///   view over any published epoch returns exactly the live answer;
/// * crack metadata in a snapshot describes that snapshot's frozen array,
///   so later reorganizations cannot tear it — readers and writers share
///   no mutable state at all.
///
/// The costs are one extra copy of the column (the published epoch) and
/// an O(n) re-publication each time the crack directory grows past a
/// geometric threshold (every crack early on, then 12.5% growth steps —
/// O(log n) publications over a column's lifetime). Queries whose bounds
/// are not yet published fall back to the write lock, crack, and converge
/// onto the fast path.
///
/// ```
/// use scrack_core::CrackConfig;
/// use scrack_parallel::{ParallelStrategy, SharedCracker};
/// use scrack_types::QueryRange;
/// use std::sync::Arc;
///
/// let data: Vec<u64> = (0..10_000).rev().collect();
/// let col = Arc::new(SharedCracker::new(
///     data, ParallelStrategy::Stochastic, CrackConfig::default(), 7,
/// ));
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let col = Arc::clone(&col);
///         std::thread::spawn(move || col.select_aggregate(QueryRange::new(t * 100, t * 100 + 50)))
///     })
///     .collect();
/// for h in handles {
///     let (count, _sum) = h.join().unwrap();
///     assert_eq!(count, 50);
/// }
/// ```
#[derive(Debug)]
pub struct SharedCracker<E: Element> {
    /// The live column: the write (cracking) path and the cost counters.
    inner: RwLock<Inner<E>>,
    /// The published epoch. The lock is held only to clone or swap the
    /// `Arc` — never while cracking — so readers wait at most for a
    /// pointer exchange, not for reorganization.
    published: RwLock<Arc<Snapshot<E>>>,
    strategy: ParallelStrategy,
    /// Writer panics caught mid-crack; each one rebuilt the live column
    /// and republished the epoch.
    isolated_panics: AtomicU64,
}

/// One immutable published epoch of the column.
#[derive(Debug)]
struct Snapshot<E> {
    /// The element array frozen at publication time.
    data: Vec<E>,
    /// Sorted crack keys of the frozen layout.
    crack_keys: Vec<u64>,
    /// `crack_pos[i]` is the position of `crack_keys[i]` in `data`.
    crack_pos: Vec<usize>,
    /// `(min_key, max_key)` over the column; `None` for an empty column.
    /// Immutable for the column's lifetime (reorganization never changes
    /// the multiset), so every epoch carries the same span.
    key_span: Option<(u64, u64)>,
}

impl<E: Element> Snapshot<E> {
    /// Resolves `[q.low, q.high)` to view bounds over this epoch's frozen
    /// array, or `None` if a bound is neither a published crack nor
    /// outside the key span.
    ///
    /// A bound outside the span needs no crack: `q.low <= min_key` pins
    /// the start to `0` (nothing can precede it), `q.high > max_key` pins
    /// the end to `len`, and a bound past the *opposite* edge yields the
    /// empty view. This is what keeps repeated edge queries — tails past
    /// the max key, lows under the min crack — on the read path instead
    /// of serializing behind the write lock forever.
    fn view_bounds(&self, q: QueryRange) -> Option<(usize, usize)> {
        let Some((min_key, max_key)) = self.key_span else {
            return Some((0, 0)); // empty column: every view is empty
        };
        let n = self.data.len();
        let lo = if q.low <= min_key {
            0
        } else if q.low > max_key {
            n
        } else {
            self.crack_position(q.low)?
        };
        let hi = if q.high > max_key {
            n
        } else if q.high <= min_key {
            0
        } else {
            self.crack_position(q.high)?
        };
        debug_assert!(lo <= hi && hi <= n, "snapshot view bounds inverted");
        Some((lo, hi))
    }

    /// Position of the crack at exactly `key`, if published.
    #[inline]
    fn crack_position(&self, key: u64) -> Option<usize> {
        let i = self.crack_keys.partition_point(|k| *k < key);
        (i < self.crack_keys.len() && self.crack_keys[i] == key).then(|| self.crack_pos[i])
    }

    /// `(count, key_sum)` over the frozen view `[lo, hi)`.
    fn aggregate(&self, lo: usize, hi: usize) -> (usize, u64) {
        let sum = self.data[lo..hi]
            .iter()
            .fold(0u64, |s, e| s.wrapping_add(e.key()));
        (hi - lo, sum)
    }
}

#[derive(Debug)]
struct Inner<E: Element> {
    col: CrackedColumn<E>,
    rng: SmallRng,
    /// Cached [`CrackedColumn::key_span`] (one scan at construction).
    key_span: Option<(u64, u64)>,
    /// Crack count of the epoch last published.
    published_cracks: usize,
}

impl<E: Element> Inner<E> {
    /// Whether `[q.low, q.high)` is answerable without reorganization
    /// against the **live** index: each bound already exists as a crack
    /// or lies outside the column's key span. Same condition as
    /// [`Snapshot::view_bounds`], used to re-check under the write lock
    /// (the bounds may have become ready while the lock was awaited).
    fn view_bounds_ready(&self, q: QueryRange) -> Option<(usize, usize)> {
        let Some((min_key, max_key)) = self.key_span else {
            return Some((0, 0));
        };
        let n = self.col.data().len();
        let lo = if q.low <= min_key {
            0
        } else if q.low > max_key {
            n
        } else {
            let p = self.col.index().piece_containing(q.low);
            if p.lo_key != Some(q.low) {
                return None;
            }
            p.start
        };
        let hi = if q.high > max_key {
            n
        } else if q.high <= min_key {
            0
        } else {
            let p = self.col.index().piece_containing(q.high);
            if p.lo_key != Some(q.high) {
                return None;
            }
            p.start
        };
        Some((lo, hi))
    }

    /// Whether the crack directory has outgrown the published epoch
    /// enough to warrant an O(n) re-publication: every new crack while
    /// the directory is small, then 12.5% growth steps — geometric, so a
    /// column pays O(log(cracks)) publications total.
    fn publish_due(&self) -> bool {
        let live = self.col.index().crack_count();
        live >= self.published_cracks + (self.published_cracks / 8).max(1)
    }

    /// Freezes the current layout as a new epoch.
    fn snapshot(&mut self) -> Arc<Snapshot<E>> {
        let (crack_keys, crack_pos) = self.col.index().crack_arrays();
        self.published_cracks = crack_keys.len();
        Arc::new(Snapshot {
            data: self.col.data().to_vec(),
            crack_keys,
            crack_pos,
            key_span: self.key_span,
        })
    }
}

impl<E: Element> SharedCracker<E> {
    /// Wraps `data` for shared use; `config.kernel` selects the
    /// reorganization kernel the slow (cracking) path runs. Publishes the
    /// initial epoch (uncracked layout + key span), so edge queries are
    /// on the read path from the first call.
    pub fn new(data: Vec<E>, strategy: ParallelStrategy, config: CrackConfig, seed: u64) -> Self {
        let col = CrackedColumn::new(data, config);
        let mut inner = Inner {
            key_span: col.key_span(),
            col,
            rng: SmallRng::seed_from_u64(seed),
            published_cracks: 0,
        };
        let first_epoch = inner.snapshot();
        Self {
            inner: RwLock::new(inner),
            published: RwLock::new(first_epoch),
            strategy,
            isolated_panics: AtomicU64::new(0),
        }
    }

    /// [`SharedCracker::new`] under [`CrackConfig::default`] — the
    /// pre-config constructor signature, kept as a shim.
    pub fn new_default(data: Vec<E>, strategy: ParallelStrategy, seed: u64) -> Self {
        Self::new(data, strategy, CrackConfig::default(), seed)
    }

    /// The latest published epoch (a cheap `Arc` clone).
    fn epoch(&self) -> Arc<Snapshot<E>> {
        Arc::clone(&self.published.read())
    }

    /// Cracks for `q` under the write lock, answers it, and re-publishes
    /// the epoch when enough structure accumulated. Returns the raw
    /// `(view, materialized)` aggregate.
    fn crack_and_aggregate(&self, q: QueryRange, mut each: Option<&mut dyn FnMut(E)>) -> (usize, u64) {
        let mut guard = self.inner.write();
        // Re-check against the live index: the bounds may have become
        // ready while this thread awaited the lock.
        if let Some((lo, hi)) = guard.view_bounds_ready(q) {
            let mut count = 0usize;
            let mut sum = 0u64;
            for e in &guard.col.data()[lo..hi] {
                count += 1;
                sum = sum.wrapping_add(e.key());
                if let Some(f) = each.as_deref_mut() {
                    f(*e);
                }
            }
            return (count, sum);
        }
        let inner = &mut *guard;
        let strategy = self.strategy;
        // Panic isolation around the reorganization itself: a panic
        // mid-crack (injected or organic) fires before any element is
        // materialized, so no partial output has been observed. The
        // column may be half-reorganized, but cracking only *swaps*
        // elements — the multiset is intact — so discarding the index
        // and rebuilding from the data is always sound. parking_lot
        // locks don't poison, so the write guard stays usable.
        let cracked = catch_unwind(AssertUnwindSafe(|| match strategy {
            ParallelStrategy::Crack => inner.col.select_original(q),
            ParallelStrategy::Stochastic => inner.col.mdd1r_select(q, &mut inner.rng),
        }));
        let mut count = 0usize;
        let mut sum = 0u64;
        match cracked {
            Ok(out) => {
                for e in out.resolve(inner.col.data()) {
                    count += 1;
                    sum = sum.wrapping_add(e.key());
                    if let Some(f) = each.as_deref_mut() {
                        f(e);
                    }
                }
            }
            Err(_) => {
                self.isolated_panics.fetch_add(1, Ordering::Relaxed);
                inner.col.quarantine_rebuild();
                // Republish immediately: the clean epoch replaces stale
                // crack metadata and resets the publication schedule.
                let epoch = inner.snapshot();
                *self.published.write() = epoch;
                // Answer this query by scan over the rebuilt column —
                // bit-identical to what the crack path would have
                // produced (aggregates depend only on the multiset).
                for e in inner.col.data().iter().filter(|e| q.contains(e.key())) {
                    count += 1;
                    sum = sum.wrapping_add(e.key());
                    if let Some(f) = each.as_deref_mut() {
                        f(*e);
                    }
                }
                return (count, sum);
            }
        }
        if guard.publish_due() {
            let epoch = guard.snapshot();
            // Publish *before* releasing the column lock so epochs can
            // never go backwards; the slot lock is held only for the swap.
            *self.published.write() = epoch;
        }
        (count, sum)
    }

    /// Answers `q` with `(count, key_sum)`.
    ///
    /// Fast path: resolve against the published epoch and aggregate over
    /// frozen data — no shared lock with writers. Slow path: write lock +
    /// (stochastic) cracking + possible epoch publication.
    pub fn select_aggregate(&self, q: QueryRange) -> (usize, u64) {
        if q.is_empty() {
            return (0, 0);
        }
        let epoch = self.epoch();
        if let Some((lo, hi)) = epoch.view_bounds(q) {
            return epoch.aggregate(lo, hi);
        }
        drop(epoch);
        self.crack_and_aggregate(q, None)
    }

    /// Runs `f` over the qualifying elements (published epoch when the
    /// bounds are ready, write lock otherwise).
    pub fn select_for_each(&self, q: QueryRange, mut f: impl FnMut(E)) {
        if q.is_empty() {
            return;
        }
        let epoch = self.epoch();
        if let Some((lo, hi)) = epoch.view_bounds(q) {
            for e in &epoch.data[lo..hi] {
                f(*e);
            }
            return;
        }
        drop(epoch);
        self.crack_and_aggregate(q, Some(&mut f));
    }

    /// Snapshot of the physical cost counters.
    pub fn stats(&self) -> Stats {
        self.inner.read().col.stats()
    }

    /// Writer panics caught mid-crack and recovered (live column rebuilt,
    /// epoch republished); answers stayed oracle-correct throughout.
    pub fn isolated_panics(&self) -> u64 {
        self.isolated_panics.load(Ordering::Relaxed)
    }

    /// Number of cracks in the live index.
    pub fn crack_count(&self) -> usize {
        self.inner.read().col.index().crack_count()
    }

    /// Number of cracks in the published epoch (grows in publication
    /// steps, trailing [`SharedCracker::crack_count`]).
    pub fn published_crack_count(&self) -> usize {
        self.published.read().crack_keys.len()
    }

    /// Full integrity check (tests only; takes the read lock, O(n)):
    /// validates the live column *and* the published epoch (crack
    /// directory sorted and monotone, every frozen element inside its
    /// piece's key bounds, same element count as the live column).
    pub fn check_integrity(&self) -> Result<(), String> {
        self.inner.read().col.check_integrity()?;
        let epoch = self.epoch();
        let n = epoch.data.len();
        if n != self.inner.read().col.data().len() {
            return Err("published epoch length diverged from live column".into());
        }
        if epoch.crack_keys.len() != epoch.crack_pos.len() {
            return Err("published crack arrays length mismatch".into());
        }
        for w in epoch.crack_keys.windows(2) {
            if w[0] >= w[1] {
                return Err("published crack keys not strictly ascending".into());
            }
        }
        // Every frozen piece [prev_pos, pos) must hold keys in
        // [prev_key, key): the published layout is exactly as cracked.
        let mut prev_pos = 0usize;
        let mut prev_key = 0u64;
        for (&key, &pos) in epoch.crack_keys.iter().zip(&epoch.crack_pos) {
            if pos < prev_pos || pos > n {
                return Err(format!("published crack {key} at {pos} breaks monotonicity"));
            }
            for e in &epoch.data[prev_pos..pos] {
                if e.key() >= key || e.key() < prev_key {
                    return Err(format!(
                        "published key {} outside piece [{prev_key}, {key})",
                        e.key()
                    ));
                }
            }
            (prev_pos, prev_key) = (pos, key);
        }
        if let Some(&last) = epoch.crack_keys.last() {
            let start = *epoch.crack_pos.last().expect("nonempty");
            if let Some(e) = epoch.data[start..].iter().find(|e| e.key() < last) {
                return Err(format!("published key {} below final crack {last}", e.key()));
            }
        }
        Ok(())
    }
}

/// A tiny deterministic RNG for test threads (no shared state).
#[cfg(test)]
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 48_271) % n).collect()
    }

    fn oracle(data: &[u64], q: QueryRange) -> (usize, u64) {
        data.iter()
            .filter(|k| q.contains(**k))
            .fold((0, 0u64), |(c, s), k| (c + 1, s.wrapping_add(*k)))
    }

    #[test]
    fn shared_select_matches_oracle_single_threaded() {
        let data = permuted(10_000);
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        );
        for i in 0..100u64 {
            let a = (i * 97) % 9_000;
            let q = QueryRange::new(a, a + 100);
            assert_eq!(sc.select_aggregate(q), oracle(&data, q), "query {i}");
        }
        sc.check_integrity().unwrap();
    }

    #[test]
    fn repeated_query_takes_the_read_path() {
        let data = permuted(10_000);
        let sc = SharedCracker::new(data, ParallelStrategy::Crack, CrackConfig::default(), 5);
        let q = QueryRange::new(2_000, 3_000);
        let first = sc.select_aggregate(q);
        let touched_after_first = sc.stats().touched;
        // The repeat must not reorganize (no new touches counted).
        let second = sc.select_aggregate(q);
        assert_eq!(first, second);
        assert_eq!(
            sc.stats().touched,
            touched_after_first,
            "second run must be pure read-path"
        );
    }

    #[test]
    fn repeated_edge_bound_queries_take_the_read_path() {
        // Regression (PR 6): a bound outside the column's key span never
        // exists as a crack under MDD1R (stochastic cracking never cracks
        // on query bounds), so the old `lo_key == Some(bound)` check sent
        // every repeat to the write lock, serializing readers forever.
        // The documented condition — bound outside the key span of its
        // piece edge — answers these from the published epoch with zero
        // touches from the very first call.
        let data = permuted(10_000); // keys 0..10_000
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        );
        // Tail past the max key AND low at the min key: both edges.
        let q = QueryRange::new(0, 20_000);
        let expect = oracle(&data, q);
        for round in 0..5 {
            assert_eq!(sc.select_aggregate(q), expect, "round {round}");
            assert_eq!(
                sc.stats().touched,
                0,
                "round {round}: edge-bound query must stay on the read path"
            );
        }
        assert_eq!(sc.stats().queries, 0, "read path never takes the write lock");
    }

    #[test]
    fn tail_query_read_path_after_first_crack() {
        // The mixed case: q.low needs one crack (first call pays it),
        // q.high lies past the max key (never a crack). The repeat must
        // be touch-free — under the old check it re-cracked forever.
        let data = permuted(10_000);
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        let q = QueryRange::new(7_500, 50_000);
        let first = sc.select_aggregate(q);
        assert_eq!(first, oracle(&data, q));
        let touched_after_first = sc.stats().touched;
        assert!(touched_after_first > 0, "first call must crack q.low");
        for _ in 0..3 {
            assert_eq!(sc.select_aggregate(q), first);
        }
        assert_eq!(
            sc.stats().touched,
            touched_after_first,
            "tail repeats must stay on the read path"
        );
        sc.check_integrity().unwrap();
    }

    #[test]
    fn queries_entirely_outside_the_domain_touch_nothing() {
        let data: Vec<u64> = (1_000..11_000).map(|k| (k * 7) % 10_000 + 1_000).collect();
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        );
        for q in [
            QueryRange::new(0, 500),             // entirely below the min key
            QueryRange::new(100_000, 200_000),   // entirely above the max key
        ] {
            assert_eq!(sc.select_aggregate(q), oracle(&data, q));
            assert_eq!(sc.select_aggregate(q), (0, 0));
        }
        assert_eq!(sc.stats().touched, 0, "out-of-domain queries are pure reads");
    }

    #[test]
    fn empty_column_answers_everything_for_free() {
        let sc: SharedCracker<u64> = SharedCracker::new(
            Vec::new(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        );
        assert_eq!(sc.select_aggregate(QueryRange::new(0, u64::MAX)), (0, 0));
        assert_eq!(sc.stats().touched, 0);
        sc.check_integrity().unwrap();
    }

    #[test]
    fn epoch_publication_trails_the_live_index() {
        let data = permuted(50_000);
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        let mut state = 0xFEED_u64;
        for _ in 0..200 {
            let a = xorshift(&mut state) % 49_000;
            let q = QueryRange::new(a, a + 1 + xorshift(&mut state) % 500);
            assert_eq!(sc.select_aggregate(q), oracle(&data, q));
        }
        let live = sc.crack_count();
        let published = sc.published_crack_count();
        assert!(live > 0 && published > 0);
        assert!(published <= live, "published epoch can only trail the live index");
        // The geometric schedule keeps the lag within one 12.5% step.
        assert!(
            live <= published + (published / 8).max(1),
            "publication lag too large: live {live}, published {published}"
        );
        sc.check_integrity().unwrap();
    }

    #[test]
    fn concurrent_threads_agree_with_oracle() {
        let data = permuted(50_000);
        let sc = Arc::new(SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            CrackConfig::default(),
            5,
        ));
        let data = Arc::new(data);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let sc = Arc::clone(&sc);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                let mut state = 0x1234_5678u64 ^ (t + 1);
                for _ in 0..200 {
                    let a = xorshift(&mut state) % 49_000;
                    let w = xorshift(&mut state) % 800 + 1;
                    let q = QueryRange::new(a, a + w);
                    let got = sc.select_aggregate(q);
                    let expect = oracle(&data, q);
                    assert_eq!(got, expect, "thread {t} query {q:?}");
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        sc.check_integrity().unwrap();
        assert!(sc.crack_count() > 0, "concurrent queries must have cracked");
    }

    #[test]
    fn select_for_each_visits_every_match() {
        let data = permuted(2_000);
        let sc = SharedCracker::new(
            data.clone(),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        let q = QueryRange::new(500, 700);
        let mut got = Vec::new();
        sc.select_for_each(q, |e| got.push(e));
        got.sort_unstable();
        let mut expect: Vec<u64> = data.into_iter().filter(|k| q.contains(*k)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        // Second call goes through the read path; same result.
        let mut again = Vec::new();
        sc.select_for_each(q, |e| again.push(e));
        again.sort_unstable();
        assert_eq!(again, expect);
    }

    #[test]
    fn injected_writer_panic_rebuilds_and_keeps_answers_exact() {
        use scrack_core::FaultPlan;
        let data = permuted(10_000);
        // The third crack attempt dies mid-kernel (after the physical
        // partition, before the index update — the worst place).
        let config = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(3));
        let sc = SharedCracker::new(data.clone(), ParallelStrategy::Stochastic, config, 5);
        let mut state = 0xBEEF_u64;
        for i in 0..100 {
            let a = xorshift(&mut state) % 9_000;
            let q = QueryRange::new(a, a + 1 + xorshift(&mut state) % 400);
            assert_eq!(sc.select_aggregate(q), oracle(&data, q), "query {i}");
        }
        assert_eq!(sc.isolated_panics(), 1, "the fault fires exactly once");
        sc.check_integrity().unwrap();
        // Recovery re-published a clean epoch and cracking resumed: the
        // live index regrew past the rebuild.
        assert!(sc.crack_count() > 0, "post-recovery queries crack again");
        assert!(sc.published_crack_count() <= sc.crack_count());
    }

    #[test]
    fn concurrent_readers_survive_an_injected_writer_panic() {
        use scrack_core::FaultPlan;
        let data = permuted(20_000);
        let config = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(5));
        let sc = Arc::new(SharedCracker::new(
            data.clone(),
            ParallelStrategy::Stochastic,
            config,
            9,
        ));
        let data = Arc::new(data);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let sc = Arc::clone(&sc);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                let mut state = 0xABCD_u64 ^ (t + 1);
                for _ in 0..100 {
                    let a = xorshift(&mut state) % 19_000;
                    let q = QueryRange::new(a, a + 1 + xorshift(&mut state) % 600);
                    assert_eq!(sc.select_aggregate(q), oracle(&data, q), "thread {t} {q:?}");
                }
            }));
        }
        for h in handles {
            h.join().expect("reader thread must never see the fault");
        }
        assert_eq!(sc.isolated_panics(), 1);
        sc.check_integrity().unwrap();
    }

    #[test]
    fn empty_query() {
        let sc: SharedCracker<u64> = SharedCracker::new(
            permuted(100),
            ParallelStrategy::Crack,
            CrackConfig::default(),
            5,
        );
        assert_eq!(sc.select_aggregate(QueryRange::new(5, 5)), (0, 0));
    }
}
