//! Partition/merge adaptive-indexing hybrids (AICC / AICS) and their
//! stochastic variants (AICC1R / AICS1R).
//!
//! §5 ("Adaptive Indexing Hybrids") of Halim et al. 2012 demonstrates that
//! the crack-crack (AICC) and crack-sort (AICS) hybrids of Idreos et al.
//! (PVLDB 2011) inherit original cracking's workload-robustness problem —
//! and that injecting DD1R-style random cracks into their source-partition
//! cracking (AICC1R / AICS1R) fixes it (Fig. 14).
//!
//! The reconstruction here follows the hybrids at the level of detail the
//! paper uses them:
//!
//! * the column is split into fixed-size **initial partitions** on the
//!   first query;
//! * each query cracks the qualifying key range out of every partition
//!   (plain bound cracks for AICC/AICS; one extra random crack per touched
//!   piece for the 1R variants) and copies it into a **final store**;
//! * the final store is itself adaptive: a piece table refined by further
//!   cracking (AICC) or a sorted run maintained by merging (AICS);
//! * an [`IntervalSet`] tracks which key ranges have already been merged,
//!   so every tuple migrates exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod interval;
mod store;

pub use engine::{HybridEngine, HybridKind};
pub use interval::IntervalSet;
pub use store::{PieceStore, SortedStore};
