//! A set of disjoint half-open key intervals.

use scrack_types::QueryRange;

/// Sorted, disjoint, coalesced half-open intervals over `u64`.
///
/// The hybrid engines use this to remember which key ranges have already
/// been migrated into the final store; a query then only extracts the
/// *gaps* its range still has.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// Sorted by start; pairwise disjoint and non-adjacent.
    ivs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of maximal intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Whether nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total number of covered keys.
    pub fn covered_keys(&self) -> u64 {
        self.ivs.iter().map(|(a, b)| b - a).sum()
    }

    /// The maximal intervals, ascending.
    pub fn iter(&self) -> impl Iterator<Item = QueryRange> + '_ {
        self.ivs.iter().map(|(a, b)| QueryRange::new(*a, *b))
    }

    /// Adds `[q.low, q.high)`, merging with overlapping or adjacent
    /// intervals.
    pub fn insert(&mut self, q: QueryRange) {
        if q.is_empty() {
            return;
        }
        let (mut lo, mut hi) = (q.low, q.high);
        // First interval that could interact: the one before the insertion
        // point may be adjacent/overlapping too.
        let mut i = self.ivs.partition_point(|(_, b)| *b < lo);
        // Absorb every interval intersecting or touching [lo, hi).
        let mut j = i;
        while j < self.ivs.len() && self.ivs[j].0 <= hi {
            lo = lo.min(self.ivs[j].0);
            hi = hi.max(self.ivs[j].1);
            j += 1;
        }
        self.ivs.splice(i..j, [(lo, hi)]);
        debug_assert!(self.check());
        // `i` is the position of the merged interval now.
        let _ = &mut i;
    }

    /// Whether `[q.low, q.high)` is entirely covered.
    pub fn covers(&self, q: QueryRange) -> bool {
        if q.is_empty() {
            return true;
        }
        match self.ivs.iter().find(|(a, b)| *a <= q.low && q.low < *b) {
            Some((_, b)) => q.high <= *b,
            None => false,
        }
    }

    /// The maximal subranges of `q` that are **not** covered, ascending.
    pub fn gaps_within(&self, q: QueryRange) -> Vec<QueryRange> {
        let mut gaps = Vec::new();
        if q.is_empty() {
            return gaps;
        }
        let mut cursor = q.low;
        for (a, b) in &self.ivs {
            if *b <= cursor {
                continue;
            }
            if *a >= q.high {
                break;
            }
            if *a > cursor {
                gaps.push(QueryRange::new(cursor, (*a).min(q.high)));
            }
            cursor = cursor.max(*b);
            if cursor >= q.high {
                break;
            }
        }
        if cursor < q.high {
            gaps.push(QueryRange::new(cursor, q.high));
        }
        gaps
    }

    /// Internal consistency: sorted, disjoint, non-adjacent, non-empty.
    fn check(&self) -> bool {
        self.ivs.iter().all(|(a, b)| a < b) && self.ivs.windows(2).all(|w| w[0].1 < w[1].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(a: u64, b: u64) -> QueryRange {
        QueryRange::new(a, b)
    }

    #[test]
    fn insert_disjoint_and_query() {
        let mut s = IntervalSet::new();
        s.insert(q(10, 20));
        s.insert(q(30, 40));
        assert_eq!(s.len(), 2);
        assert_eq!(s.covered_keys(), 20);
        assert!(s.covers(q(12, 18)));
        assert!(!s.covers(q(12, 32)));
        assert!(s.covers(q(5, 5)), "empty range trivially covered");
    }

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut s = IntervalSet::new();
        s.insert(q(10, 20));
        s.insert(q(20, 30)); // adjacent
        assert_eq!(s.len(), 1);
        s.insert(q(5, 12)); // overlapping left
        assert_eq!(s.len(), 1);
        s.insert(q(40, 50));
        s.insert(q(25, 45)); // bridges the two
        assert_eq!(s.len(), 1);
        assert_eq!(s.covered_keys(), 45);
        assert!(s.covers(q(5, 50)));
    }

    #[test]
    fn gaps_within_various() {
        let mut s = IntervalSet::new();
        s.insert(q(10, 20));
        s.insert(q(30, 40));
        assert_eq!(
            s.gaps_within(q(0, 50)),
            vec![q(0, 10), q(20, 30), q(40, 50)]
        );
        assert_eq!(s.gaps_within(q(12, 18)), vec![]);
        assert_eq!(s.gaps_within(q(15, 35)), vec![q(20, 30)]);
        assert_eq!(s.gaps_within(q(20, 30)), vec![q(20, 30)]);
        assert_eq!(s.gaps_within(q(45, 45)), vec![]);
        let empty = IntervalSet::new();
        assert_eq!(empty.gaps_within(q(3, 7)), vec![q(3, 7)]);
    }

    #[test]
    fn gap_then_insert_closes_it() {
        let mut s = IntervalSet::new();
        s.insert(q(0, 5));
        for gap in s.gaps_within(q(0, 100)) {
            s.insert(gap);
        }
        assert!(s.covers(q(0, 100)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn many_random_inserts_stay_consistent() {
        let mut s = IntervalSet::new();
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut model = vec![false; 1000];
        for _ in 0..300 {
            let a = next() % 990;
            let w = next() % 30 + 1;
            let b = (a + w).min(1000);
            s.insert(q(a, b));
            for m in model.iter_mut().take(b as usize).skip(a as usize) {
                *m = true;
            }
        }
        let covered: u64 = model.iter().filter(|m| **m).count() as u64;
        assert_eq!(s.covered_keys(), covered);
        // Spot-check gap computation against the model.
        for (a, b) in [(0u64, 1000u64), (100, 200), (337, 613)] {
            let gaps = s.gaps_within(q(a, b));
            let gap_keys: u64 = gaps.iter().map(|g| g.width()).sum();
            let model_gap = model[a as usize..b as usize]
                .iter()
                .filter(|m| !**m)
                .count() as u64;
            assert_eq!(gap_keys, model_gap, "range [{a},{b})");
            for g in &gaps {
                assert!(model[g.low as usize..g.high as usize].iter().all(|m| !*m));
            }
        }
    }
}
