//! Final stores of the hybrid engines: where merged tuples accumulate.

use scrack_columnstore::QueryOutput;
use scrack_partition::{crack_in_three_policy, introsort, lower_bound, KernelPolicy};
use scrack_types::{Element, QueryRange, Stats};

/// One run of the piece store: positions `[start, end)` hold keys within
/// `[lo, hi)` in arbitrary internal order.
#[derive(Clone, Copy, Debug)]
struct StorePiece {
    start: usize,
    end: usize,
    lo: u64,
    hi: u64,
}

/// The crack-crack (AICC) final store: an append-only buffer of runs, each
/// tagged with its guaranteed key range, refined by further cracking.
///
/// Unlike a cracker column, runs arrive in query order, so piece key
/// ranges are **not** position-monotone; a piece table replaces the AVL
/// index. Queries answer with one view per overlapping piece, cracking
/// partially-overlapping pieces on the fly exactly like original cracking
/// would.
#[derive(Debug, Clone, Default)]
pub struct PieceStore<E> {
    data: Vec<E>,
    pieces: Vec<StorePiece>,
}

impl<E: Element> PieceStore<E> {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            pieces: Vec::new(),
        }
    }

    /// The underlying buffer (what result views resolve against).
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Number of pieces currently in the table.
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// Appends a run whose keys are all within `[range.low, range.high)`.
    pub fn append_run(&mut self, run: &[E], range: QueryRange, stats: &mut Stats) {
        debug_assert!(run.iter().all(|e| range.contains(e.key())));
        if run.is_empty() {
            return;
        }
        let start = self.data.len();
        self.data.extend_from_slice(run);
        stats.touched += run.len() as u64;
        self.pieces.push(StorePiece {
            start,
            end: self.data.len(),
            lo: range.low,
            hi: range.high,
        });
    }

    /// Answers `q` from the store: whole-piece views where possible,
    /// cracking partially overlapping pieces first (on the engine's
    /// kernel policy, like every other reorganization pass).
    pub fn select(
        &mut self,
        q: QueryRange,
        kernel: KernelPolicy,
        out: &mut QueryOutput<E>,
        stats: &mut Stats,
    ) {
        if q.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pieces.len() {
            let p = self.pieces[i];
            // Disjoint?
            if p.hi <= q.low || p.lo >= q.high {
                i += 1;
                continue;
            }
            // Fully inside?
            if q.low <= p.lo && p.hi <= q.high {
                out.push_view(p.start, p.end);
                i += 1;
                continue;
            }
            // Partial overlap: crack the piece on the query bounds and
            // split its table entry; the middle sub-piece qualifies fully.
            let a = q.low.max(p.lo);
            let b = q.high.min(p.hi);
            let (r1, r2) =
                crack_in_three_policy(&mut self.data[p.start..p.end], a, b, kernel, stats);
            let (m1, m2) = (p.start + r1, p.start + r2);
            self.pieces.swap_remove(i);
            if m1 > p.start {
                self.pieces.push(StorePiece {
                    start: p.start,
                    end: m1,
                    lo: p.lo,
                    hi: a,
                });
                stats.cracks += 1;
            }
            if m2 > m1 {
                // The middle sub-piece is fully inside `q`; the loop will
                // reach it (it sits past `i`) and emit its view exactly
                // once through the fully-inside branch.
                self.pieces.push(StorePiece {
                    start: m1,
                    end: m2,
                    lo: a,
                    hi: b,
                });
            }
            if p.end > m2 {
                self.pieces.push(StorePiece {
                    start: m2,
                    end: p.end,
                    lo: b,
                    hi: p.hi,
                });
                stats.cracks += 1;
            }
            // swap_remove moved an unseen piece into slot i: revisit it
            // without advancing.
        }
    }

    /// Test hook: piece table consistency (positions tile runs, keys in
    /// range).
    pub fn check_integrity(&self) -> Result<(), String> {
        for p in &self.pieces {
            if p.start >= p.end {
                return Err("empty piece in table".into());
            }
            if p.lo >= p.hi {
                return Err("empty key range in table".into());
            }
            for e in &self.data[p.start..p.end] {
                if e.key() < p.lo || e.key() >= p.hi {
                    return Err(format!(
                        "key {} outside piece range [{}, {})",
                        e.key(),
                        p.lo,
                        p.hi
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The crack-sort (AICS) final store: one sorted run maintained by
/// merging.
///
/// Every arriving run is sorted and merged in — the active-sorting work
/// that distinguishes adaptive merging's final structure; queries answer
/// with a single binary-searched view.
#[derive(Debug, Clone, Default)]
pub struct SortedStore<E> {
    data: Vec<E>,
}

impl<E: Element> SortedStore<E> {
    /// An empty store.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// The underlying sorted buffer.
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Sorts `run` and merges it into the store.
    pub fn insert_run(&mut self, mut run: Vec<E>, stats: &mut Stats) {
        if run.is_empty() {
            return;
        }
        introsort(&mut run, stats);
        if self.data.is_empty() {
            self.data = run;
            return;
        }
        // Classic two-pointer merge; the full pass over existing data is
        // the AICS merge overhead the paper observes on sequential
        // workloads.
        let old = std::mem::take(&mut self.data);
        let mut merged = Vec::with_capacity(old.len() + run.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < run.len() {
            if old[i].key() <= run[j].key() {
                merged.push(old[i]);
                i += 1;
            } else {
                merged.push(run[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend_from_slice(&run[j..]);
        stats.touched += merged.len() as u64;
        stats.comparisons += merged.len() as u64;
        self.data = merged;
    }

    /// Answers `q` with one view (the store is sorted).
    pub fn select(&self, q: QueryRange, out: &mut QueryOutput<E>, stats: &mut Stats) {
        if q.is_empty() {
            return;
        }
        let lo = lower_bound(&self.data, q.low, stats);
        let hi = lower_bound(&self.data, q.high, stats);
        out.push_view(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_keys(out: &QueryOutput<u64>, data: &[u64]) -> Vec<u64> {
        out.keys_sorted(data)
    }

    #[test]
    fn piece_store_whole_piece_views() {
        let mut st: PieceStore<u64> = PieceStore::new();
        let mut stats = Stats::new();
        st.append_run(&[12, 10, 14], QueryRange::new(10, 15), &mut stats);
        st.append_run(&[20, 24], QueryRange::new(20, 25), &mut stats);
        let mut out = QueryOutput::empty();
        st.select(QueryRange::new(10, 25), KernelPolicy::Auto, &mut out, &mut stats);
        assert_eq!(sorted_keys(&out, st.data()), vec![10, 12, 14, 20, 24]);
        st.check_integrity().unwrap();
    }

    #[test]
    fn piece_store_cracks_partial_overlaps() {
        let mut st: PieceStore<u64> = PieceStore::new();
        let mut stats = Stats::new();
        st.append_run(&[19, 11, 15, 13, 17], QueryRange::new(10, 20), &mut stats);
        let mut out = QueryOutput::empty();
        st.select(QueryRange::new(13, 18), KernelPolicy::Auto, &mut out, &mut stats);
        assert_eq!(sorted_keys(&out, st.data()), vec![13, 15, 17]);
        st.check_integrity().unwrap();
        assert!(
            st.piece_count() >= 3,
            "partial overlap must split the piece"
        );
        // Second query over a refined area: must still be exact.
        let mut out = QueryOutput::empty();
        st.select(QueryRange::new(10, 14), KernelPolicy::Auto, &mut out, &mut stats);
        assert_eq!(sorted_keys(&out, st.data()), vec![11, 13]);
        st.check_integrity().unwrap();
    }

    #[test]
    fn piece_store_empty_run_ignored() {
        let mut st: PieceStore<u64> = PieceStore::new();
        let mut stats = Stats::new();
        st.append_run(&[], QueryRange::new(0, 5), &mut stats);
        assert_eq!(st.piece_count(), 0);
        let mut out = QueryOutput::empty();
        st.select(QueryRange::new(0, 100), KernelPolicy::Auto, &mut out, &mut stats);
        assert!(out.is_empty());
    }

    #[test]
    fn sorted_store_merges_and_answers() {
        let mut st: SortedStore<u64> = SortedStore::new();
        let mut stats = Stats::new();
        st.insert_run(vec![5, 1, 3], &mut stats);
        st.insert_run(vec![4, 2, 6], &mut stats);
        assert_eq!(st.data(), &[1, 2, 3, 4, 5, 6]);
        let mut out = QueryOutput::empty();
        st.select(QueryRange::new(2, 5), &mut out, &mut stats);
        assert_eq!(sorted_keys(&out, st.data()), vec![2, 3, 4]);
    }

    #[test]
    fn sorted_store_handles_duplicates() {
        let mut st: SortedStore<u64> = SortedStore::new();
        let mut stats = Stats::new();
        st.insert_run(vec![3, 3, 1], &mut stats);
        st.insert_run(vec![3, 2], &mut stats);
        assert_eq!(st.data(), &[1, 2, 3, 3, 3]);
    }
}
