//! The partition/merge hybrid engines.

use crate::interval::IntervalSet;
use crate::store::{PieceStore, SortedStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_columnstore::QueryOutput;
use scrack_core::{CrackConfig, CrackedColumn, Engine};
use scrack_types::{Element, QueryRange, Stats};

/// Which hybrid to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HybridKind {
    /// AICC — crack the source partitions, crack the final store.
    CrackCrack,
    /// AICS — crack the source partitions, keep the final store sorted.
    CrackSort,
    /// AICC1R — AICC with one DD1R-style random crack per touched piece.
    CrackCrack1R,
    /// AICS1R — AICS with one DD1R-style random crack per touched piece.
    CrackSort1R,
}

impl HybridKind {
    /// The paper's label (Fig. 14).
    pub fn label(&self) -> &'static str {
        match self {
            HybridKind::CrackCrack => "AICC",
            HybridKind::CrackSort => "AICS",
            HybridKind::CrackCrack1R => "AICC1R",
            HybridKind::CrackSort1R => "AICS1R",
        }
    }

    fn stochastic(&self) -> bool {
        matches!(self, HybridKind::CrackCrack1R | HybridKind::CrackSort1R)
    }

    fn sorts_final(&self) -> bool {
        matches!(self, HybridKind::CrackSort | HybridKind::CrackSort1R)
    }
}

enum FinalStore<E> {
    Pieces(PieceStore<E>),
    Sorted(SortedStore<E>),
}

/// A partition/merge adaptive-indexing hybrid over one column.
///
/// On the first query the input splits into cache-sized initial
/// partitions (each an independently cracked column). Every query then:
///
/// 1. computes which parts of its key range were never merged (the *gaps*);
/// 2. for each gap, cracks the gap's bounds out of every partition
///    (plus one random crack per touched piece in the `1R` variants) and
///    copies the qualifying tuples into the final store;
/// 3. answers entirely from the final store.
///
/// ```
/// use scrack_core::{CrackConfig, Engine};
/// use scrack_hybrids::{HybridEngine, HybridKind};
/// use scrack_types::QueryRange;
///
/// let data: Vec<u64> = (0..10_000).rev().collect();
/// let mut eng = HybridEngine::new(HybridKind::CrackCrack1R, data, CrackConfig::default(), 7);
/// let out = eng.select(QueryRange::new(100, 200));
/// assert_eq!(out.len(), 100);
/// assert!(eng.merged_ranges().covers(QueryRange::new(100, 200)));
/// ```
pub struct HybridEngine<E: Element> {
    kind: HybridKind,
    config: CrackConfig,
    rng: SmallRng,
    /// Source column until the first query splits it.
    source: Vec<E>,
    partitions: Vec<CrackedColumn<E>>,
    merged: IntervalSet,
    store: FinalStore<E>,
    /// Engine-level costs (copying, merging, final-store work).
    stats: Stats,
    /// Scratch run buffer reused across queries.
    staging: Vec<E>,
}

impl<E: Element> HybridEngine<E> {
    /// Builds the hybrid; partitioning happens lazily on the first select
    /// (its cost belongs to that query, as in the paper's hybrids).
    pub fn new(kind: HybridKind, data: Vec<E>, config: CrackConfig, seed: u64) -> Self {
        let store = if kind.sorts_final() {
            FinalStore::Sorted(SortedStore::new())
        } else {
            FinalStore::Pieces(PieceStore::new())
        };
        Self {
            kind,
            config,
            rng: SmallRng::seed_from_u64(seed),
            source: data,
            partitions: Vec::new(),
            merged: IntervalSet::new(),
            store,
            stats: Stats::new(),
            staging: Vec::new(),
        }
    }

    /// Number of initial partitions (0 before the first query).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Key ranges migrated into the final store so far.
    pub fn merged_ranges(&self) -> &IntervalSet {
        &self.merged
    }

    fn ensure_partitioned(&mut self) {
        if self.source.is_empty() {
            return;
        }
        let elem = std::mem::size_of::<E>();
        // L2-sized initial partitions, bounded to at most 256 so huge
        // columns don't drown in partition bookkeeping.
        let min_size = self.source.len().div_ceil(256).max(1);
        let part_elems = self.config.cache.l2_elems(elem).max(min_size);
        let source = std::mem::take(&mut self.source);
        let n = source.len();
        let mut rest = source;
        while !rest.is_empty() {
            let take = part_elems.min(rest.len());
            let tail = rest.split_off(take);
            self.partitions.push(CrackedColumn::new(rest, self.config));
            rest = tail;
        }
        // The split pass touches every tuple once (run generation).
        self.stats.touched += n as u64;
    }

    /// Extracts one gap from every partition into the staging buffer.
    fn extract_gap(&mut self, gap: QueryRange) {
        self.staging.clear();
        let stochastic = self.kind.stochastic();
        for part in &mut self.partitions {
            let (lo, hi) = if stochastic {
                let lo = part.dd1r_crack(gap.low, &mut self.rng);
                let hi = part.dd1r_crack(gap.high, &mut self.rng);
                (lo, hi)
            } else {
                (part.crack_on(gap.low), part.crack_on(gap.high))
            };
            self.staging.extend_from_slice(&part.data()[lo..hi]);
        }
        self.stats.materialized += self.staging.len() as u64;
    }
}

impl<E: Element> Engine<E> for HybridEngine<E> {
    fn name(&self) -> String {
        self.kind.label().into()
    }

    fn select(&mut self, q: QueryRange) -> QueryOutput<E> {
        self.stats.queries += 1;
        let mut out = QueryOutput::empty();
        if q.is_empty() {
            return out;
        }
        self.ensure_partitioned();
        for gap in self.merged.gaps_within(q) {
            self.extract_gap(gap);
            let run = std::mem::take(&mut self.staging);
            match &mut self.store {
                FinalStore::Pieces(st) => {
                    st.append_run(&run, gap, &mut self.stats);
                    self.staging = run; // reuse the allocation
                }
                FinalStore::Sorted(st) => {
                    st.insert_run(run, &mut self.stats);
                }
            }
            self.merged.insert(gap);
        }
        match &mut self.store {
            FinalStore::Pieces(st) => st.select(q, self.config.kernel, &mut out, &mut self.stats),
            FinalStore::Sorted(st) => st.select(q, &mut out, &mut self.stats),
        }
        out
    }

    fn data(&self) -> &[E] {
        match &self.store {
            FinalStore::Pieces(st) => st.data(),
            FinalStore::Sorted(st) => st.data(),
        }
    }

    fn stats(&self) -> Stats {
        let mut total = self.stats;
        for p in &self.partitions {
            total += p.stats();
        }
        total
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        for p in &mut self.partitions {
            p.stats_mut().reset();
        }
    }

    fn quarantine_rebuild(&mut self) {
        // The final store holds already-merged sorted runs — data
        // placement, not discardable index state (like the sort
        // baseline); only the cracked partitions carry an index.
        for p in &mut self.partitions {
            p.quarantine_rebuild();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrack_core::Oracle;

    fn permuted(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 7919) % n).collect()
    }

    fn small_config() -> CrackConfig {
        // Tiny "caches" so multiple partitions exist at test scale.
        let cache = scrack_types::CacheProfile::new(1024, 4096);
        CrackConfig {
            cache,
            ..CrackConfig::default()
        }
    }

    fn all_kinds() -> [HybridKind; 4] {
        [
            HybridKind::CrackCrack,
            HybridKind::CrackSort,
            HybridKind::CrackCrack1R,
            HybridKind::CrackSort1R,
        ]
    }

    #[test]
    fn hybrids_match_oracle_on_mixed_queries() {
        let data = permuted(5_000);
        let oracle = Oracle::new(&data);
        for kind in all_kinds() {
            let mut eng = HybridEngine::new(kind, data.clone(), small_config(), 9);
            let queries: Vec<QueryRange> = (0..100u64)
                .map(|i| {
                    let a = (i * 97) % 4_800;
                    QueryRange::new(a, a + 1 + (i % 50))
                })
                .chain([
                    QueryRange::new(0, 5_000),
                    QueryRange::new(0, 1),
                    QueryRange::new(4_999, 6_000),
                    QueryRange::new(7, 7),
                ])
                .collect();
            for (i, q) in queries.iter().enumerate() {
                let out = eng.select(*q);
                assert_eq!(
                    out.keys_sorted(eng.data()),
                    oracle.keys(*q),
                    "{} query {i} ({q})",
                    kind.label()
                );
            }
            assert!(eng.partition_count() > 1, "config must force >1 partition");
        }
    }

    #[test]
    fn repeated_queries_extract_each_tuple_once() {
        let data = permuted(2_000);
        let mut eng = HybridEngine::new(HybridKind::CrackCrack, data, small_config(), 2);
        let q = QueryRange::new(100, 300);
        let first = eng.select(q).len();
        let stats_after_first = eng.stats();
        let second = eng.select(q).len();
        assert_eq!(first, second);
        let delta = eng.stats().since(&stats_after_first);
        assert_eq!(delta.materialized, 0, "no re-extraction on repeat");
    }

    #[test]
    fn merged_ranges_grow_monotonically() {
        let data = permuted(2_000);
        let mut eng = HybridEngine::new(HybridKind::CrackSort, data, small_config(), 2);
        eng.select(QueryRange::new(0, 500));
        eng.select(QueryRange::new(1_000, 1_500));
        assert_eq!(eng.merged_ranges().covered_keys(), 1_000);
        eng.select(QueryRange::new(400, 1_100));
        assert!(eng.merged_ranges().covers(QueryRange::new(0, 1_500)));
    }

    #[test]
    fn empty_column() {
        for kind in all_kinds() {
            let mut eng: HybridEngine<u64> = HybridEngine::new(kind, vec![], small_config(), 0);
            let out = eng.select(QueryRange::new(0, 10));
            assert!(out.is_empty());
        }
    }
}
