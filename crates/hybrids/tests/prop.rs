//! Property tests: hybrid engines against the oracle, and the interval
//! set against a bitmap model, under arbitrary query streams.

use proptest::prelude::*;
use scrack_core::{CrackConfig, Engine, Oracle};
use scrack_hybrids::{HybridEngine, HybridKind, IntervalSet};
use scrack_types::{CacheProfile, QueryRange};

fn arb_kind() -> impl Strategy<Value = HybridKind> {
    prop_oneof![
        Just(HybridKind::CrackCrack),
        Just(HybridKind::CrackSort),
        Just(HybridKind::CrackCrack1R),
        Just(HybridKind::CrackSort1R),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hybrid_matches_oracle_on_any_query_stream(
        kind in arb_kind(),
        seed in 0u64..500,
        raw_queries in proptest::collection::vec((0u64..3000, 1u64..800), 1..40),
    ) {
        let data: Vec<u64> = (0..3000u64).map(|i| (i * 2221) % 3000).collect();
        let oracle = Oracle::new(&data);
        // Small caches force several partitions at this scale.
        let config = CrackConfig {
            cache: CacheProfile::new(512, 2048),
            ..CrackConfig::default()
        };
        let mut eng = HybridEngine::new(kind, data, config, seed);
        for (i, (a, w)) in raw_queries.iter().enumerate() {
            let q = QueryRange::new(*a, a + w);
            let out = eng.select(q);
            prop_assert_eq!(out.len(), oracle.count(q), "query {} of {:?}", i, kind);
            prop_assert_eq!(
                out.key_checksum(eng.data()),
                oracle.checksum(q),
                "checksum at query {} of {:?}", i, kind
            );
        }
    }

    #[test]
    fn interval_set_matches_bitmap_model(
        inserts in proptest::collection::vec((0u64..500, 1u64..60), 0..60),
        probes in proptest::collection::vec((0u64..500, 0u64..80), 0..20),
    ) {
        let mut set = IntervalSet::new();
        let mut model = [false; 600];
        for (a, w) in inserts {
            let b = (a + w).min(600);
            set.insert(QueryRange::new(a, b));
            for m in model.iter_mut().take(b as usize).skip(a as usize) {
                *m = true;
            }
        }
        let covered = model.iter().filter(|m| **m).count() as u64;
        prop_assert_eq!(set.covered_keys(), covered);
        for (a, w) in probes {
            let b = (a + w).min(600);
            let q = QueryRange::new(a, b);
            let model_covered = model[a as usize..b as usize].iter().all(|m| *m);
            prop_assert_eq!(set.covers(q), model_covered, "covers({})", q);
            let gaps = set.gaps_within(q);
            // Gaps are disjoint, ordered, uncovered in the model, and
            // together account for every uncovered key of the range.
            let mut gap_total = 0u64;
            let mut prev_end = a;
            for g in &gaps {
                prop_assert!(g.low >= prev_end);
                prop_assert!(g.high <= b);
                prop_assert!(model[g.low as usize..g.high as usize].iter().all(|m| !*m));
                gap_total += g.width();
                prev_end = g.high;
            }
            let model_gaps = model[a as usize..b as usize].iter().filter(|m| !**m).count() as u64;
            prop_assert_eq!(gap_total, model_gaps, "gap total for {}", q);
        }
    }
}
