//! Sessions: one transaction against a [`TxnManager`] — snapshot reads,
//! locked writes, and a single terminal [`TxnOutcome`].

use crate::manager::TxnManager;
use scrack_parallel::lock::{LockError, LockGuard, LockMode};
use scrack_types::{Element, QueryRange};
use scrack_updates::LoggedOp;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a lock wait runs before the session wounds itself, when no
/// tighter deadline applies. Bounds deadlock cycles: the first member to
/// hit this aborts (releasing its locks) and reports retryable.
const DEFAULT_WOUND: Duration = Duration::from_millis(250);

/// The terminal state of a session. Exactly one per session, always.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Writes published atomically at `epoch` (read-only commits reuse
    /// the snapshot epoch).
    Committed {
        /// The epoch the session's writes became visible at.
        epoch: u64,
    },
    /// Rolled back; nothing published, all locks released. `retryable`
    /// is true for wounds, validation conflicts, and isolated shard
    /// panics — a re-run against a fresh snapshot may succeed — and
    /// false for explicit aborts.
    Aborted {
        /// Whether retrying the same transaction could succeed.
        retryable: bool,
    },
    /// Admission control refused the session at capacity.
    Shed,
    /// The session's deadline budget expired (possibly mid-lock-wait).
    TimedOut,
}

/// Why a session operation failed; the session is doomed afterwards and
/// every later operation fails the same way until [`Session::commit`] or
/// [`Session::abort`] converts the doom into its [`TxnOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// Lost a lock wait within the wound budget — a deadlock or a
    /// long-held conflicting lock. Commit reports `Aborted { retryable:
    /// true }`.
    Wounded,
    /// The session deadline expired. Commit reports `TimedOut`.
    TimedOut,
    /// A panic or poison fault fired in a shard this session touched;
    /// the shard is quarantined, the session alone pays with `Aborted {
    /// retryable: true }`.
    ShardPanic,
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Wounded => write!(f, "wounded on lock conflict"),
            TxnError::TimedOut => write!(f, "session deadline expired"),
            TxnError::ShardPanic => write!(f, "shard fault isolated to this session"),
        }
    }
}

impl std::error::Error for TxnError {}

/// One transaction: snapshot reads over every shard, exclusive per-key
/// write locks held to the end, and abort-on-drop if neither
/// [`Session::commit`] nor [`Session::abort`] ran.
pub struct Session<E: Element> {
    mgr: Arc<TxnManager<E>>,
    id: u64,
    snapshot: u64,
    started: Instant,
    writes: Vec<(usize, LoggedOp<E>)>,
    /// RAII grants, one per distinct written key; released on every exit
    /// path by Vec drop.
    guards: Vec<LockGuard>,
    locked_keys: Vec<(usize, u64)>,
    doomed: Option<TxnError>,
    finished: bool,
}

impl<E: Element> Session<E> {
    pub(crate) fn open(mgr: Arc<TxnManager<E>>, id: u64, snapshot: u64, started: Instant) -> Self {
        Self {
            mgr,
            id,
            snapshot,
            started,
            writes: Vec::new(),
            guards: Vec::new(),
            locked_keys: Vec::new(),
            doomed: None,
            finished: false,
        }
    }

    /// This session's id (the lock-table owner id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The pinned snapshot epoch.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot
    }

    fn remaining_deadline(&self) -> Option<Option<Duration>> {
        match self.mgr.serving.deadline {
            Some(d) => match d.checked_sub(self.started.elapsed()) {
                Some(rem) if !rem.is_zero() => Some(Some(rem)),
                _ => None,
            },
            None => Some(None),
        }
    }

    /// Fails fast if the session is doomed or out of budget.
    fn check_alive(&mut self) -> Result<(), TxnError> {
        if let Some(doom) = self.doomed {
            return Err(doom);
        }
        if self.remaining_deadline().is_none() {
            self.doomed = Some(TxnError::TimedOut);
            return Err(TxnError::TimedOut);
        }
        Ok(())
    }

    fn doom(&mut self, err: TxnError) -> TxnError {
        self.doomed = Some(err);
        err
    }

    /// `(count, key_sum)` of live elements in `q` at this session's
    /// snapshot, plus its own uncommitted writes. Deterministic for a
    /// fixed snapshot and write set regardless of concurrent commits,
    /// merges, or rebuilds.
    pub fn read(&mut self, q: QueryRange) -> Result<(usize, u64), TxnError> {
        self.check_alive()?;
        let mut count = 0i64;
        let mut sum = 0u64;
        for si in 0..self.mgr.spans.len() {
            let clip = q.intersect(&self.mgr.spans[si]);
            if clip.is_empty() {
                continue;
            }
            match self.mgr.shard_read(si, clip, self.snapshot) {
                Ok((c, s)) => {
                    count += c;
                    sum = sum.wrapping_add(s);
                }
                Err(()) => return Err(self.doom(TxnError::ShardPanic)),
            }
        }
        // Read-your-own-writes overlay.
        for (_, op) in &self.writes {
            match op {
                LoggedOp::Insert(e) if q.contains(e.key()) => {
                    count += 1;
                    sum = sum.wrapping_add(e.key());
                }
                LoggedOp::Delete { key, hits: true } if q.contains(*key) => {
                    count -= 1;
                    sum = sum.wrapping_sub(*key);
                }
                _ => {}
            }
        }
        self.mgr.stats.lock().answered += 1;
        Ok((count.max(0) as usize, sum))
    }

    /// Takes (or reuses) the exclusive lock on `key` in shard `si`,
    /// waiting at most the remaining deadline, capped by the wound
    /// budget.
    fn lock_key(&mut self, si: usize, key: u64) -> Result<(), TxnError> {
        if self.locked_keys.contains(&(si, key)) {
            return Ok(());
        }
        let budget = match self.remaining_deadline() {
            Some(rem) => Some(rem.map_or(DEFAULT_WOUND, |r| r.min(DEFAULT_WOUND))),
            None => return Err(self.doom(TxnError::TimedOut)),
        };
        match self.mgr.locks.acquire(
            self.id,
            si,
            QueryRange::new(key, key + 1),
            LockMode::Exclusive,
            budget,
        ) {
            Ok(guard) => {
                self.guards.push(guard);
                self.locked_keys.push((si, key));
                Ok(())
            }
            Err(LockError::TimedOut) => {
                // Distinguish "my deadline ran out while waiting" from
                // "I was wounded to break a conflict cycle".
                let err = if self.remaining_deadline().is_none() {
                    TxnError::TimedOut
                } else {
                    TxnError::Wounded
                };
                Err(self.doom(err))
            }
        }
    }

    /// Buffers an insert, locking its key exclusively until the session
    /// finishes.
    ///
    /// # Panics
    /// If the element's key is `u64::MAX` (reserved — see
    /// [`TxnManager::new`]).
    pub fn insert(&mut self, element: E) -> Result<(), TxnError> {
        self.check_alive()?;
        let key = element.key();
        assert!(key < u64::MAX, "u64::MAX keys are reserved");
        let si = self.mgr.shard_of(key);
        self.lock_key(si, key)?;
        self.writes.push((si, LoggedOp::Insert(element)));
        Ok(())
    }

    /// Buffers a delete of one live instance of `key`, locking it
    /// exclusively. Returns whether the delete hit: fate is resolved
    /// *now* — under the lock, against snapshot-visible state plus this
    /// session's own prior writes — and an evaporated (`false`) delete
    /// stays a no-op through commit and merge.
    pub fn delete(&mut self, key: u64) -> Result<bool, TxnError> {
        self.check_alive()?;
        assert!(key < u64::MAX, "u64::MAX keys are reserved");
        let si = self.mgr.shard_of(key);
        self.lock_key(si, key)?;
        let snapshot_live = match self.mgr.key_live_count(si, key, self.snapshot) {
            Ok(n) => n,
            Err(()) => return Err(self.doom(TxnError::ShardPanic)),
        };
        let own: i64 = self
            .writes
            .iter()
            .map(|(_, op)| match op {
                LoggedOp::Insert(e) if e.key() == key => 1,
                LoggedOp::Delete { key: k, hits: true } if *k == key => -1,
                _ => 0,
            })
            .sum();
        let hits = snapshot_live + own > 0;
        self.writes.push((si, LoggedOp::Delete { key, hits }));
        Ok(hits)
    }

    /// Ends the session. Publishes buffered writes atomically at a fresh
    /// epoch after first-committer-wins validation; a doomed session
    /// resolves to its pending outcome instead. Locks and the snapshot
    /// pin are released on every path.
    pub fn commit(mut self) -> TxnOutcome {
        let outcome = if let Some(doom) = self.doomed {
            match doom {
                TxnError::TimedOut => {
                    self.mgr.stats.lock().timed_out += 1;
                    TxnOutcome::TimedOut
                }
                TxnError::Wounded | TxnError::ShardPanic => {
                    self.mgr.stats.lock().aborted += 1;
                    TxnOutcome::Aborted { retryable: true }
                }
            }
        } else if self.remaining_deadline().is_none() {
            self.mgr.stats.lock().timed_out += 1;
            TxnOutcome::TimedOut
        } else if self.writes.is_empty() {
            self.mgr.stats.lock().committed += 1;
            TxnOutcome::Committed {
                epoch: self.snapshot,
            }
        } else {
            match self.mgr.commit_writes(self.snapshot, &self.writes) {
                Ok(epoch) => TxnOutcome::Committed { epoch },
                Err(retryable) => TxnOutcome::Aborted { retryable },
            }
        };
        self.cleanup();
        outcome
    }

    /// Explicitly rolls the session back: nothing published, locks
    /// released, outcome `Aborted { retryable: false }`.
    pub fn abort(mut self) -> TxnOutcome {
        self.mgr.stats.lock().aborted += 1;
        self.cleanup();
        TxnOutcome::Aborted { retryable: false }
    }

    /// Releases locks, unpins the snapshot, frees the admission slot.
    fn cleanup(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.guards.clear();
        self.writes.clear();
        self.mgr.finish_session(self.snapshot);
    }
}

impl<E: Element> Drop for Session<E> {
    /// Abort-on-drop: a session that falls out of scope — including by
    /// unwinding through a caller panic — rolls back and leaks nothing.
    fn drop(&mut self) {
        if !self.finished {
            self.mgr.stats.lock().aborted += 1;
            self.cleanup();
        }
    }
}
