//! Transactional sessions over cracked columns: snapshot isolation, a
//! lock manager, and fault-isolated commits.
//!
//! The paper's serving story stops at batch-level, submission-order
//! visibility: a client has no state it can hold while merge-ripple
//! flushes and quarantine-rebuilds run underneath it. This crate adds
//! that state. A [`TxnManager`] owns the same key-disjoint quantile
//! shards as `BatchScheduler` (built by the shared
//! [`scrack_parallel::key_disjoint_partitions`] helper), each carrying a
//! cracked column plus an epoch-stamped committed-update log
//! ([`scrack_updates::EpochLog`]); a [`Session`] is one transaction
//! against that state.
//!
//! # Visibility rules
//!
//! * [`TxnManager::begin`] pins a **snapshot epoch**: the manager's
//!   current committed epoch at begin time. Every read in the session
//!   answers against exactly the updates committed at or before that
//!   epoch — the physical column (merged prefix) plus the log's delta
//!   for the slice up to the snapshot — no matter how many commits,
//!   merges, or rebuilds happen concurrently.
//! * A session **reads its own writes**: uncommitted inserts and
//!   deletes overlay the snapshot, with delete fate (hit vs evaporate)
//!   resolved at write time against snapshot + own prior writes.
//! * The **merge watermark** trails the oldest live snapshot, so the
//!   physical column never runs ahead of any reader; quarantine-rebuild
//!   discards only index state (the data multiset survives) and thus
//!   preserves every published snapshot.
//! * Writers take per-key exclusive locks from the shared
//!   [`LockManager`] at write time and hold them to commit; commit
//!   validates **first-committer-wins** (any committed op after the
//!   snapshot on a written key aborts the session as retryable).
//!
//! # Outcome ladder
//!
//! Every session ends in exactly one [`TxnOutcome`]:
//! [`TxnOutcome::Committed`] (writes published at a fresh epoch),
//! [`TxnOutcome::Aborted`] (explicit abort, wound on lock conflict,
//! validation failure, or a shard panic/poison isolated to this
//! session — `retryable` says whether a re-run may succeed),
//! [`TxnOutcome::Shed`] (admission refused at capacity), or
//! [`TxnOutcome::TimedOut`] (the session's deadline budget expired,
//! including while blocked on a lock). All outcomes are accounted in
//! [`scrack_parallel::ResilienceStats`]; locks release by RAII on every
//! path, including unwinds and abort-on-drop.
//!
//! ```
//! use scrack_core::CrackConfig;
//! use scrack_parallel::{ParallelStrategy, ServingConfig};
//! use scrack_txn::{TxnManager, TxnOutcome};
//! use scrack_types::QueryRange;
//!
//! let data: Vec<u64> = (0..10_000).rev().collect();
//! let mgr = TxnManager::new(
//!     data, 4, ParallelStrategy::Stochastic, CrackConfig::default(),
//!     ServingConfig::default(), 7,
//! );
//! let mut writer = mgr.begin().unwrap();
//! writer.insert(500u64).unwrap();
//! let mut reader = mgr.begin().unwrap(); // snapshot before the commit
//! let outcome = writer.commit();
//! assert!(matches!(outcome, TxnOutcome::Committed { .. }));
//! // The reader's snapshot predates the commit: it cannot see the insert.
//! let (count, _) = reader.read(QueryRange::new(500, 501)).unwrap();
//! assert_eq!(count, 1);
//! reader.commit();
//! // A fresh session sees it.
//! let mut after = mgr.begin().unwrap();
//! assert_eq!(after.read(QueryRange::new(500, 501)).unwrap().0, 2);
//! after.commit();
//! assert_eq!(mgr.lock_residue(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod session;

pub use manager::TxnManager;
pub use session::{Session, TxnError, TxnOutcome};

pub use scrack_parallel::lock::{LockError, LockGuard, LockManager, LockMode, LockStats};
