//! The transaction manager: key-disjoint shards, the epoch clock, the
//! admission gate, and the shared lock table.

use crate::session::{Session, TxnOutcome};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scrack_core::fault::fire_panic;
use scrack_core::{CrackConfig, CrackedColumn, FaultInjector, FaultKind};
use scrack_parallel::lock::{LockManager, LockStats};
use scrack_parallel::{
    key_disjoint_partitions, AdmissionPolicy, ParallelStrategy, ResilienceStats, ServingConfig,
    ShardHealth,
};
use scrack_types::{Element, QueryRange};
use scrack_updates::{EpochLog, LoggedOp};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

/// One key-range shard: cracked column + committed-update log + the
/// shard-scoped fault sites and health ladder.
pub(crate) struct TxnShard<E: Element> {
    pub(crate) span: QueryRange,
    pub(crate) col: CrackedColumn<E>,
    pub(crate) log: EpochLog<E>,
    pub(crate) rng: SmallRng,
    pub(crate) health: ShardHealth,
    pub(crate) fault: FaultInjector,
}

impl<E: Element> TxnShard<E> {
    /// `(count, key_sum)` of the **physical column** (merged prefix)
    /// over `q`: adaptive select while healthy, exact scan while
    /// quarantined. Cracking preserves the multiset, so the aggregate is
    /// layout-independent.
    fn physical_aggregate(&mut self, q: QueryRange, strategy: ParallelStrategy) -> (usize, u64) {
        match self.health {
            ShardHealth::Healthy => {
                let out = match strategy {
                    ParallelStrategy::Crack => self.col.select_original(q),
                    ParallelStrategy::Stochastic => self.col.mdd1r_select(q, &mut self.rng),
                };
                (out.len(), out.key_checksum(self.col.data()))
            }
            ShardHealth::Quarantined { .. } => self
                .col
                .data()
                .iter()
                .filter(|e| q.contains(e.key()))
                .fold((0usize, 0u64), |(c, s), e| (c + 1, s.wrapping_add(e.key()))),
        }
    }

    /// Enters quarantine: discard index state (data multiset survives,
    /// so every published snapshot is preserved), serve scans for
    /// `batches_left` reads.
    fn quarantine(&mut self, batches_left: u32) {
        self.col.quarantine_rebuild();
        self.health = ShardHealth::Quarantined { batches_left };
    }

    /// One quarantined read served; at zero the shard resumes adaptive
    /// serving (it re-learns its index query by query). Returns whether
    /// this call completed a rebuild.
    fn tick_quarantine(&mut self) -> bool {
        if let ShardHealth::Quarantined { batches_left } = self.health {
            if batches_left == 0 {
                self.health = ShardHealth::Healthy;
                return true;
            }
            self.health = ShardHealth::Quarantined {
                batches_left: batches_left - 1,
            };
        }
        false
    }
}

/// The epoch clock plus session admission state, under one mutex.
///
/// Lock order: the clock mutex is always taken **before** any shard
/// latch, and no path takes the clock while holding a latch, so the
/// wait-for graph between them stays acyclic.
struct Clock {
    /// Highest committed epoch; new snapshots pin this value.
    current: u64,
    /// Live snapshot pins: epoch → refcount. The minimum key gates the
    /// merge watermark.
    active: BTreeMap<u64, usize>,
    /// Sessions admitted and not yet finished.
    sessions_active: usize,
}

/// A session-facing transactional front end over key-disjoint cracked
/// shards (see the crate docs for the visibility rules).
///
/// Construction partitions the data exactly as
/// [`scrack_parallel::BatchScheduler`] does — quantile bounds via the
/// shared [`key_disjoint_partitions`] helper — so both layers route keys
/// over the identical shard map. The [`ServingConfig`] carries the
/// admission surface: `queue_capacity` bounds concurrently active
/// sessions, `admission` picks what happens at the bound
/// ([`AdmissionPolicy::Shed`] refuses, [`AdmissionPolicy::Block`] waits
/// within the deadline budget, [`AdmissionPolicy::Admit`] ignores the
/// bound), `deadline` is each session's total budget from
/// [`TxnManager::begin`], and `rebuild_after` is the quarantine ladder
/// length, all exactly as in `execute_resilient`.
pub struct TxnManager<E: Element> {
    pub(crate) shards: Vec<Mutex<TxnShard<E>>>,
    pub(crate) spans: Vec<QueryRange>,
    pub(crate) locks: Arc<LockManager>,
    clock: StdMutex<Clock>,
    admit_cv: Condvar,
    pub(crate) strategy: ParallelStrategy,
    pub(crate) serving: ServingConfig,
    /// Manager-level fault sites (queue overload).
    fault: FaultInjector,
    pub(crate) stats: Mutex<ResilienceStats>,
    seq: AtomicU64,
}

impl<E: Element> TxnManager<E> {
    /// Partitions `data` into (up to) `shard_count` key-disjoint shards
    /// and prepares the transactional serving state over them.
    ///
    /// # Panics
    /// If `shard_count` is zero, or any key equals `u64::MAX` (reserved:
    /// no half-open range can cover it, so it cannot be locked or
    /// routed).
    pub fn new(
        data: Vec<E>,
        shard_count: usize,
        strategy: ParallelStrategy,
        config: CrackConfig,
        serving: ServingConfig,
        seed: u64,
    ) -> Arc<Self> {
        assert!(
            data.iter().all(|e| e.key() < u64::MAX),
            "u64::MAX keys are reserved"
        );
        let mut shards = Vec::new();
        let mut spans = Vec::new();
        for (i, (span, part)) in key_disjoint_partitions(data, shard_count, config.kernel)
            .into_iter()
            .enumerate()
        {
            let scoped = config.fault.scoped_to(i);
            spans.push(span);
            shards.push(Mutex::new(TxnShard {
                span,
                col: CrackedColumn::new(part, config.with_fault(scoped)),
                log: EpochLog::new(),
                rng: SmallRng::seed_from_u64(seed.wrapping_add(i as u64)),
                health: ShardHealth::Healthy,
                fault: FaultInjector::new(scoped),
            }));
        }
        Arc::new(Self {
            shards,
            spans,
            locks: Arc::new(LockManager::new()),
            clock: StdMutex::new(Clock {
                current: 0,
                active: BTreeMap::new(),
                sessions_active: 0,
            }),
            admit_cv: Condvar::new(),
            strategy,
            serving,
            fault: FaultInjector::new(config.fault),
            stats: Mutex::new(ResilienceStats::default()),
            seq: AtomicU64::new(1),
        })
    }

    fn clock(&self) -> std::sync::MutexGuard<'_, Clock> {
        self.clock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The session cap for this begin: the configured queue capacity,
    /// clamped by an armed queue-overload fault.
    fn effective_capacity(&self) -> usize {
        match self.fault.plan().overload_capacity() {
            Some(cap) if self.fault.poll(FaultKind::QueueOverload) => {
                cap.min(self.serving.queue_capacity)
            }
            _ => self.serving.queue_capacity,
        }
    }

    /// Opens a session pinned at the current committed epoch.
    ///
    /// At capacity, [`AdmissionPolicy::Shed`] refuses with
    /// [`TxnOutcome::Shed`]; [`AdmissionPolicy::Block`] waits for a slot
    /// within the serving deadline (no deadline = waits indefinitely) and
    /// refuses with [`TxnOutcome::TimedOut`] when the budget expires;
    /// [`AdmissionPolicy::Admit`] always admits. Refusals are accounted
    /// in [`TxnManager::resilience_stats`].
    pub fn begin(self: &Arc<Self>) -> Result<Session<E>, TxnOutcome> {
        let started = Instant::now();
        let mut clock = self.clock();
        let cap = self.effective_capacity();
        if clock.sessions_active >= cap {
            match self.serving.admission {
                AdmissionPolicy::Admit => {}
                AdmissionPolicy::Shed => {
                    self.stats.lock().shed += 1;
                    return Err(TxnOutcome::Shed);
                }
                AdmissionPolicy::Block => loop {
                    if clock.sessions_active < self.effective_capacity() {
                        break;
                    }
                    let remaining = match self.serving.deadline {
                        Some(d) => match d.checked_sub(started.elapsed()) {
                            Some(rem) if !rem.is_zero() => Some(rem),
                            _ => {
                                self.stats.lock().timed_out += 1;
                                return Err(TxnOutcome::TimedOut);
                            }
                        },
                        None => None,
                    };
                    clock = match remaining {
                        Some(rem) => {
                            self.admit_cv
                                .wait_timeout(clock, rem)
                                .unwrap_or_else(|e| e.into_inner())
                                .0
                        }
                        None => self
                            .admit_cv
                            .wait(clock)
                            .unwrap_or_else(|e| e.into_inner()),
                    };
                },
            }
        }
        clock.sessions_active += 1;
        let snapshot = clock.current;
        *clock.active.entry(snapshot).or_insert(0) += 1;
        drop(clock);
        let id = self.seq.fetch_add(1, Ordering::Relaxed);
        Ok(Session::open(Arc::clone(self), id, snapshot, started))
    }

    /// The shard index owning `key`.
    pub(crate) fn shard_of(&self, key: u64) -> usize {
        self.spans.partition_point(|s| s.low <= key) - 1
    }

    /// Snapshot read of one shard: physical aggregate + the log's delta
    /// up to `snapshot`, under the shard latch with panic isolation. A
    /// caught panic (or a poison fault) quarantines the shard and
    /// reports `Err` — the caller's session aborts; other sessions are
    /// untouched.
    pub(crate) fn shard_read(
        &self,
        si: usize,
        clip: QueryRange,
        snapshot: u64,
    ) -> Result<(i64, u64), ()> {
        let mut shard = self.shards[si].lock();
        if shard.health == ShardHealth::Healthy && shard.fault.poll(FaultKind::PoisonShard) {
            shard.quarantine(self.serving.rebuild_after);
            let mut stats = self.stats.lock();
            stats.quarantines += 1;
            return Err(());
        }
        let strategy = self.strategy;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let (c, s) = shard.physical_aggregate(clip, strategy);
            let (dc, ds) = shard.log.delta(clip, snapshot);
            (c as i64 + dc, s.wrapping_add(ds))
        }));
        match result {
            Ok(ans) => {
                if shard.tick_quarantine() {
                    self.stats.lock().rebuilds += 1;
                }
                Ok(ans)
            }
            Err(_) => {
                // The panic unwound mid-select: index state is suspect,
                // the data multiset is not (kernels only swap). Discard
                // the index, degrade to scans, abort this session only.
                shard.quarantine(self.serving.rebuild_after);
                let mut stats = self.stats.lock();
                stats.panics_isolated += 1;
                stats.quarantines += 1;
                Err(())
            }
        }
    }

    /// Live instances of `key` visible at `snapshot` (physical count
    /// plus the log's net, not counting the session's own writes), with
    /// the same panic isolation as [`TxnManager::shard_read`].
    pub(crate) fn key_live_count(&self, si: usize, key: u64, snapshot: u64) -> Result<i64, ()> {
        self.shard_read(si, QueryRange::new(key, key + 1), snapshot)
            .map(|(c, _)| c)
    }

    /// Commits `writes` (in session order, spanning any shards) for a
    /// session pinned at `snapshot`: first-committer-wins validation,
    /// then the commit fault site, then the epoch-stamped append —
    /// validation and fault phases run before any append, so a commit
    /// is never torn across shards. Returns the new epoch, or
    /// `Err(retryable)` on a validation conflict or an isolated commit
    /// panic — both retryable: a re-run against a fresh snapshot can
    /// succeed.
    pub(crate) fn commit_writes(
        &self,
        snapshot: u64,
        writes: &[(usize, LoggedOp<E>)],
    ) -> Result<u64, bool> {
        let mut clock = self.clock();
        let mut written: Vec<usize> = writes.iter().map(|(si, _)| *si).collect();
        written.sort_unstable();
        written.dedup();
        // Phase 1a: validation (no mutation).
        for &si in &written {
            let shard = self.shards[si].lock();
            let conflict = shard.log.conflicts_after(snapshot, |k| {
                writes
                    .iter()
                    .any(|(wsi, op)| *wsi == si && op_key(op) == k)
            });
            if conflict {
                self.stats.lock().aborted += 1;
                return Err(true);
            }
        }
        // Phase 1b: the commit fault site, still before any append.
        for &si in &written {
            let mut shard = self.shards[si].lock();
            let fired = shard.fault.poll(FaultKind::PanicInCommit);
            let panicked = catch_unwind(AssertUnwindSafe(|| {
                if fired {
                    fire_panic("commit: locks granted, log append pending");
                }
            }))
            .is_err();
            if panicked {
                shard.quarantine(self.serving.rebuild_after);
                let mut stats = self.stats.lock();
                stats.panics_isolated += 1;
                stats.quarantines += 1;
                stats.aborted += 1;
                return Err(true);
            }
        }
        // Phase 2: infallible appends, one epoch across all shards.
        let epoch = clock.current + 1;
        for &si in &written {
            let mut shard = self.shards[si].lock();
            let ops = writes
                .iter()
                .filter(|(wsi, _)| *wsi == si)
                .map(|(_, op)| *op);
            shard.log.append(epoch, ops);
        }
        clock.current = epoch;
        self.stats.lock().committed += 1;
        Ok(epoch)
    }

    /// Session teardown: unpin its snapshot, free its admission slot,
    /// wake blocked begins, and advance the merge watermark to the new
    /// oldest live snapshot.
    pub(crate) fn finish_session(&self, snapshot: u64) {
        let mut clock = self.clock();
        if let Some(n) = clock.active.get_mut(&snapshot) {
            *n -= 1;
            if *n == 0 {
                clock.active.remove(&snapshot);
            }
        }
        clock.sessions_active -= 1;
        let watermark = clock
            .active
            .keys()
            .next()
            .copied()
            .unwrap_or(clock.current);
        drop(clock);
        self.admit_cv.notify_all();
        // Merge aged epochs into the physical columns. Safe without the
        // clock: future pins are at `current >= watermark`, so no reader
        // can ever need an epoch below it.
        for cell in &self.shards {
            let mut shard = cell.lock();
            let TxnShard { col, log, .. } = &mut *shard;
            log.merge_through(col, watermark);
        }
    }

    /// The highest committed epoch.
    pub fn current_epoch(&self) -> u64 {
        self.clock().current
    }

    /// Number of key-disjoint shards (may be fewer than asked when
    /// duplicated keys collapse quantile bounds).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative resilience counters (commits, aborts, sheds,
    /// timeouts, isolated panics, quarantines, rebuilds).
    pub fn resilience_stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    /// Indices of currently quarantined shards.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.lock().health, ShardHealth::Quarantined { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Entries left in the lock table; zero once no session is in
    /// flight — the no-leaked-locks invariant the gauntlet asserts.
    pub fn lock_residue(&self) -> usize {
        self.locks.residue()
    }

    /// Grant/wait/timeout counters of the shared lock table.
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Full integrity check (tests; assumes no concurrent sessions).
    /// Verifies every shard's column invariants and span containment;
    /// returns the total physical element count.
    pub fn check_integrity(&self) -> Result<usize, String> {
        let mut total = 0usize;
        for (i, cell) in self.shards.iter().enumerate() {
            let shard = cell.lock();
            shard
                .col
                .check_integrity()
                .map_err(|e| format!("shard {i}: {e}"))?;
            for e in shard.col.data() {
                if !shard.span.contains(e.key()) {
                    return Err(format!(
                        "shard {i}: key {} outside span {}",
                        e.key(),
                        shard.span
                    ));
                }
            }
            total += shard.col.data().len();
        }
        Ok(total)
    }
}

/// The key a logged op addresses.
fn op_key<E: Element>(op: &LoggedOp<E>) -> u64 {
    match op {
        LoggedOp::Insert(e) => e.key(),
        LoggedOp::Delete { key, .. } => *key,
    }
}
