//! Differential transaction tests: random interleaved multi-session
//! streams against a serial per-epoch oracle.
//!
//! Three layers of guarantee:
//!
//! * **oracle equality** — every read a session issues returns exactly
//!   the `(count, key_sum)` a flat multiset model computes for the
//!   session's snapshot plus its own writes, and every session ends in
//!   exactly the outcome (including the committed epoch) the model
//!   predicts from first-committer-wins validation;
//! * **config invariance** — the same schedule produces bit-identical
//!   answer traces across both cracking strategies and every
//!   `IndexPolicy` × `UpdatePolicy` combination, with `check_integrity`
//!   and a drained lock table after every schedule;
//! * **serial equivalence** — replaying the oracle's committed history,
//!   in epoch order, through every update-capable factory engine yields
//!   the same final answers as a fresh transactional session, tying the
//!   session layer to the single-threaded update path.

use proptest::prelude::*;
use scrack_core::{CrackConfig, Engine, IndexPolicy, UpdatePolicy};
use scrack_parallel::{ParallelStrategy, ServingConfig};
use scrack_txn::{Session, TxnManager, TxnOutcome};
use scrack_types::QueryRange;
use scrack_updates::{build_update_engine, update_capable_kinds};
use std::collections::HashMap;

const N: u64 = 1_200;
/// Write keys may land beyond the original domain (appends).
const KEY_SPAN: u64 = 3 * N / 2;
const SESSIONS: usize = 4;

/// One step of an interleaved multi-session schedule.
#[derive(Clone, Debug)]
enum Op {
    Read(u64, u64),
    Insert(u64),
    Delete(u64),
    Commit,
    Abort,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest stub has no weighted prop_oneof; repeating
    // the read arm approximates a read-heavy transactional mix.
    prop_oneof![
        (0u64..N, 1u64..400).prop_map(|(a, w)| Op::Read(a, w)),
        (0u64..N, 1u64..400).prop_map(|(a, w)| Op::Read(a, w)),
        (0u64..KEY_SPAN).prop_map(Op::Insert),
        (0u64..KEY_SPAN).prop_map(Op::Delete),
        Just(Op::Commit),
        Just(Op::Abort),
    ]
}

/// One committed op in the oracle's serial history. Evaporated deletes
/// stay in the history — they change no state but still participate in
/// first-committer-wins validation, exactly like `LoggedOp`.
#[derive(Clone, Copy, Debug)]
enum HistOp {
    Insert(u64),
    Delete { key: u64, hits: bool },
}

impl HistOp {
    fn key(&self) -> u64 {
        match self {
            HistOp::Insert(k) => *k,
            HistOp::Delete { key, .. } => *key,
        }
    }
}

/// The serial per-epoch oracle: a sorted base multiset plus the full
/// committed history, epoch-stamped in commit order.
struct Oracle {
    base: Vec<u64>, // sorted
    committed: Vec<(u64, HistOp)>,
    epoch: u64,
}

/// The oracle's view of one open session.
struct OracleSession {
    snapshot: u64,
    writes: Vec<HistOp>,
}

impl Oracle {
    fn new(data: &[u64]) -> Self {
        let mut base = data.to_vec();
        base.sort_unstable();
        Self {
            base,
            committed: Vec::new(),
            epoch: 0,
        }
    }

    fn begin(&self) -> OracleSession {
        OracleSession {
            snapshot: self.epoch,
            writes: Vec::new(),
        }
    }

    /// `(count, key_sum)` visible to `s` in `q`: base + committed ops at
    /// or before the snapshot + the session's own writes.
    fn read(&self, s: &OracleSession, q: QueryRange) -> (usize, u64) {
        let lo = self.base.partition_point(|x| *x < q.low);
        let hi = self.base.partition_point(|x| *x < q.high);
        let mut count = (hi - lo) as i64;
        let mut sum = self.base[lo..hi]
            .iter()
            .fold(0u64, |a, k| a.wrapping_add(*k));
        let overlay = self
            .committed
            .iter()
            .filter(|(ep, _)| *ep <= s.snapshot)
            .map(|(_, op)| op)
            .chain(s.writes.iter());
        for op in overlay {
            match op {
                HistOp::Insert(k) if q.contains(*k) => {
                    count += 1;
                    sum = sum.wrapping_add(*k);
                }
                HistOp::Delete { key, hits: true } if q.contains(*key) => {
                    count -= 1;
                    sum = sum.wrapping_sub(*key);
                }
                _ => {}
            }
        }
        (count.max(0) as usize, sum)
    }

    fn insert(&mut self, s: &mut OracleSession, k: u64) {
        let _ = self;
        s.writes.push(HistOp::Insert(k));
    }

    /// Resolves delete fate at write time: live at the snapshot plus the
    /// session's own prior net.
    fn delete(&mut self, s: &mut OracleSession, k: u64) -> bool {
        let live = self.read(s, QueryRange::new(k, k + 1)).0;
        let hits = live > 0;
        s.writes.push(HistOp::Delete { key: k, hits });
        hits
    }

    /// First-committer-wins commit: any committed op after the snapshot
    /// on a written key (evaporated deletes included) aborts.
    fn commit(&mut self, s: OracleSession) -> TxnOutcome {
        if s.writes.is_empty() {
            return TxnOutcome::Committed { epoch: s.snapshot };
        }
        let conflict = self
            .committed
            .iter()
            .filter(|(ep, _)| *ep > s.snapshot)
            .any(|(_, op)| s.writes.iter().any(|w| w.key() == op.key()));
        if conflict {
            return TxnOutcome::Aborted { retryable: true };
        }
        self.epoch += 1;
        let ep = self.epoch;
        self.committed.extend(s.writes.into_iter().map(|w| (ep, w)));
        TxnOutcome::Committed { epoch: ep }
    }
}

fn column(salt: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..N).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

fn config(index: IndexPolicy, update: UpdatePolicy) -> CrackConfig {
    CrackConfig::default()
        .with_crack_size(64)
        .with_progressive_threshold(256)
        .with_index(index)
        .with_update(update)
}

/// Replays one interleaved schedule against both the manager and the
/// oracle, asserting read-for-read and outcome-for-outcome equality.
/// Returns the answer trace (for cross-config comparison) and the oracle
/// (for serial-equivalence replays).
///
/// The driver is single-threaded, so a write op whose key is currently
/// locked by *another* live session is skipped rather than issued — a
/// blocking acquire would just burn the wound budget and abort, and the
/// interesting conflicts (first-committer-wins on disjoint lock
/// lifetimes) don't need overlapping waits. Cross-thread blocking is
/// covered by the sessions/lock_schedules integration tests.
fn run_schedule(
    steps: &[(usize, Op)],
    seed: u64,
    strategy: ParallelStrategy,
    index: IndexPolicy,
    update: UpdatePolicy,
) -> (Vec<(usize, u64)>, Oracle) {
    let data = column(seed);
    let mut oracle = Oracle::new(&data);
    let mgr = TxnManager::new(
        data,
        3,
        strategy,
        config(index, update),
        ServingConfig::default(),
        seed,
    );
    let mut live: HashMap<usize, (Session<u64>, OracleSession)> = HashMap::new();
    let mut locked: HashMap<u64, usize> = HashMap::new();
    let mut answers = Vec::new();
    let ctx = |i: usize| format!("step {i} ({strategy:?}/{index}/{update})");

    for (i, (sid, op)) in steps.iter().enumerate() {
        let sid = *sid % SESSIONS;
        let (session, model) = match live.remove(&sid) {
            Some(pair) => pair,
            None => (mgr.begin().unwrap(), oracle.begin()),
        };
        let (mut session, mut model) = (session, model);
        match *op {
            Op::Read(a, w) => {
                let q = QueryRange::new(a, a + w);
                let got = session.read(q).unwrap();
                let want = oracle.read(&model, q);
                assert_eq!(got, want, "{}: read {q} diverged", ctx(i));
                answers.push(got);
                live.insert(sid, (session, model));
            }
            Op::Insert(k) => {
                if locked.get(&k).is_none_or(|&o| o == sid) {
                    session.insert(k).unwrap();
                    oracle.insert(&mut model, k);
                    locked.insert(k, sid);
                }
                live.insert(sid, (session, model));
            }
            Op::Delete(k) => {
                if locked.get(&k).is_none_or(|&o| o == sid) {
                    let got = session.delete(k).unwrap();
                    let want = oracle.delete(&mut model, k);
                    assert_eq!(got, want, "{}: delete({k}) fate diverged", ctx(i));
                    locked.insert(k, sid);
                }
                live.insert(sid, (session, model));
            }
            Op::Commit => {
                let got = session.commit();
                let want = oracle.commit(model);
                assert_eq!(got, want, "{}: outcome diverged", ctx(i));
                locked.retain(|_, o| *o != sid);
            }
            Op::Abort => {
                let got = session.abort();
                assert_eq!(
                    got,
                    TxnOutcome::Aborted { retryable: false },
                    "{}: abort outcome",
                    ctx(i)
                );
                locked.retain(|_, o| *o != sid);
            }
        }
    }
    // Drain the stragglers; outcomes must still agree.
    let mut rest: Vec<usize> = live.keys().copied().collect();
    rest.sort_unstable();
    for sid in rest {
        let (session, model) = live.remove(&sid).unwrap();
        let got = session.commit();
        let want = oracle.commit(model);
        assert_eq!(got, want, "drain of session {sid}: outcome diverged");
    }

    assert_eq!(mgr.lock_residue(), 0, "lock table must drain");
    mgr.check_integrity().unwrap();
    // Final state equality over the full domain and epoch agreement.
    let mut last = mgr.begin().unwrap();
    let final_model = oracle.begin();
    let full = QueryRange::new(0, KEY_SPAN + 1);
    assert_eq!(
        last.read(full).unwrap(),
        oracle.read(&final_model, full),
        "final multiset diverged"
    );
    assert_eq!(mgr.current_epoch(), oracle.epoch, "epoch counters diverged");
    last.commit();
    (answers, oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleaved schedules, full config matrix: oracle equality
    /// everywhere, plus bit-identical answer traces across strategies and
    /// index/update policies (range aggregates are layout-independent).
    #[test]
    fn interleaved_sessions_match_the_serial_oracle(
        steps in proptest::collection::vec((0usize..SESSIONS, op_strategy()), 1..48),
        seed in 0u64..1_000,
    ) {
        let mut traces = Vec::new();
        for strategy in [ParallelStrategy::Crack, ParallelStrategy::Stochastic] {
            for index in IndexPolicy::ALL {
                for update in UpdatePolicy::ALL {
                    let (trace, _) = run_schedule(&steps, seed, strategy, index, update);
                    traces.push(trace);
                }
            }
        }
        for t in &traces[1..] {
            prop_assert_eq!(t, &traces[0], "answers diverged across configs");
        }
    }

    /// Serial equivalence: the committed history of a random interleaved
    /// schedule, replayed in epoch order through every update-capable
    /// factory engine, lands on the same final state a fresh session sees.
    #[test]
    fn committed_history_replays_serially_on_every_engine(
        steps in proptest::collection::vec((0usize..SESSIONS, op_strategy()), 1..40),
        seed in 0u64..1_000,
    ) {
        let (_, oracle) = run_schedule(
            &steps, seed, ParallelStrategy::Stochastic,
            IndexPolicy::default(), UpdatePolicy::default(),
        );
        let probes = [
            QueryRange::new(0, KEY_SPAN + 1),
            QueryRange::new(0, N / 2),
            QueryRange::new(N / 3, N),
        ];
        let final_model = oracle.begin();
        let want: Vec<(usize, u64)> =
            probes.iter().map(|q| oracle.read(&final_model, *q)).collect();
        for kind in update_capable_kinds() {
            let mut eng = build_update_engine(
                kind, column(seed),
                config(IndexPolicy::default(), UpdatePolicy::default()), seed,
            );
            for (_, op) in &oracle.committed {
                match op {
                    HistOp::Insert(k) => eng.insert(*k),
                    HistOp::Delete { key, hits: true } => eng.delete(*key),
                    // Resolved as evaporated when it committed; a serial
                    // replay must not re-resolve it.
                    HistOp::Delete { hits: false, .. } => {}
                }
            }
            for (q, want) in probes.iter().zip(&want) {
                let out = eng.select(*q);
                let got = (out.len(), out.key_checksum(eng.data()));
                prop_assert_eq!(
                    &got, want,
                    "{}: serial replay diverged on {}", eng.name(), q
                );
            }
            eng.check_integrity().unwrap();
        }
    }
}
