//! Integration tests for transactional sessions: snapshot isolation,
//! lock hygiene under faults, deadlines, and deterministic replay.

use scrack_core::{CrackConfig, FaultPlan};
use scrack_parallel::{AdmissionPolicy, ParallelStrategy, ServingConfig};
use scrack_txn::{TxnManager, TxnOutcome};
use scrack_types::QueryRange;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn manager(
    n: u64,
    shards: usize,
    config: CrackConfig,
    serving: ServingConfig,
) -> Arc<TxnManager<u64>> {
    // Deterministic scrambled permutation of 0..n.
    let data: Vec<u64> = (0..n).map(|i| (i * 7919) % n).collect();
    TxnManager::new(
        data,
        shards,
        ParallelStrategy::Stochastic,
        config,
        serving,
        42,
    )
}

#[test]
fn snapshot_isolation_and_read_your_own_writes() {
    let mgr = manager(8_000, 4, CrackConfig::default(), ServingConfig::default());
    let probe = QueryRange::new(1_000, 1_010);

    let mut w = mgr.begin().unwrap();
    w.insert(1_005).unwrap();
    assert!(w.delete(1_001).unwrap(), "live key must hit");
    // RYOW: the writer sees its own +1/-1 before committing.
    assert_eq!(w.read(probe).unwrap().0, 10);

    let mut pinned = mgr.begin().unwrap();
    assert_eq!(pinned.read(probe).unwrap().0, 10, "uncommitted = invisible");

    assert!(matches!(w.commit(), TxnOutcome::Committed { epoch: 1 }));

    // Still 10 for the pinned snapshot, repeatably, despite the commit.
    assert_eq!(pinned.read(probe).unwrap().0, 10);
    assert_eq!(pinned.read(probe).unwrap().0, 10);
    pinned.commit();

    let mut fresh = mgr.begin().unwrap();
    let (count, sum) = fresh.read(probe).unwrap();
    assert_eq!(count, 10, "net zero count change");
    let base: u64 = (1_000..1_010).sum();
    assert_eq!(sum, base - 1_001 + 1_005);
    fresh.commit();

    assert_eq!(mgr.lock_residue(), 0);
    mgr.check_integrity().unwrap();
}

#[test]
fn first_committer_wins_aborts_the_second_writer() {
    let mgr = manager(4_000, 2, CrackConfig::default(), ServingConfig::default());
    let mut a = mgr.begin().unwrap();
    let mut b = mgr.begin().unwrap();
    b.insert(777).unwrap();
    a.insert(777).unwrap_err(); // blocked, then wounded: same key lock
    // Session a is doomed by the wound; b commits first and wins.
    assert!(matches!(b.commit(), TxnOutcome::Committed { .. }));
    assert!(matches!(
        a.commit(),
        TxnOutcome::Aborted { retryable: true }
    ));

    // Validation (not just locking) enforces FCW: c's snapshot predates
    // d's commit on the same key, but c only writes after d released the
    // lock — so c acquires it fine and must lose at commit time instead.
    let mut c = mgr.begin().unwrap();
    assert_eq!(c.snapshot_epoch(), 1);
    let mut d = mgr.begin().unwrap();
    d.insert(888).unwrap();
    assert!(matches!(d.commit(), TxnOutcome::Committed { epoch: 2 }));
    c.insert(888).unwrap(); // lock is free now
    assert!(matches!(
        c.commit(),
        TxnOutcome::Aborted { retryable: true }
    ));
    assert_eq!(mgr.lock_residue(), 0);
}

#[test]
fn lock_leak_regression_panic_while_second_session_waits() {
    // A kernel panic fires in shard 0 while session B is queued on the
    // same key A holds: A must abort, B must proceed, table must drain.
    let config = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(1).on_target(0));
    let mgr = manager(4_000, 2, config, ServingConfig::default());
    let key = 100u64; // lands in shard 0

    let mut a = mgr.begin().unwrap();
    a.insert(key).unwrap(); // X lock on (0, key) held

    let mgr2 = Arc::clone(&mgr);
    let waiter = thread::spawn(move || {
        let mut b = mgr2.begin().unwrap();
        let hit = b.delete(key).expect("b must outlive a's abort");
        (hit, b.commit())
    });
    // Let B reach the lock queue, then detonate the kernel fault in A's
    // read path.
    thread::sleep(Duration::from_millis(30));
    let err = a.read(QueryRange::new(0, 2_000)).unwrap_err();
    assert_eq!(err, scrack_txn::TxnError::ShardPanic);
    assert!(matches!(
        a.commit(),
        TxnOutcome::Aborted { retryable: true }
    ));

    let (hit, outcome) = waiter.join().unwrap();
    assert!(hit, "base key 100 is live; a's insert never committed");
    assert!(matches!(outcome, TxnOutcome::Committed { .. }));

    assert_eq!(mgr.lock_residue(), 0, "no leaked locks after the panic");
    let stats = mgr.resilience_stats();
    assert_eq!(stats.panics_isolated, 1);
    assert_eq!(stats.quarantines, 1);
    assert_eq!(stats.committed, 1);
    assert_eq!(stats.aborted, 1);
    mgr.check_integrity().unwrap();
}

#[test]
fn commit_panic_aborts_only_the_committer_and_frees_waiters() {
    let config = CrackConfig::default().with_fault(FaultPlan::panic_in_commit(1).on_target(0));
    let mgr = manager(4_000, 2, config, ServingConfig::default());
    let key = 50u64;

    let mut a = mgr.begin().unwrap();
    a.insert(key).unwrap();

    let mgr2 = Arc::clone(&mgr);
    let waiter = thread::spawn(move || {
        let mut b = mgr2.begin().unwrap();
        b.insert(key).unwrap();
        b.commit()
    });
    thread::sleep(Duration::from_millis(30));
    // The commit fault fires after validation, before any append: the
    // commit is not torn, the session aborts retryable, locks release.
    assert!(matches!(
        a.commit(),
        TxnOutcome::Aborted { retryable: true }
    ));
    assert!(matches!(
        waiter.join().unwrap(),
        TxnOutcome::Committed { .. }
    ));

    assert_eq!(mgr.lock_residue(), 0);
    let stats = mgr.resilience_stats();
    assert_eq!(stats.panics_isolated, 1);
    // A's insert never published: exactly one live copy of the base key
    // plus B's committed insert.
    let mut check = mgr.begin().unwrap();
    assert_eq!(check.read(QueryRange::new(key, key + 1)).unwrap().0, 2);
    check.commit();
}

#[test]
fn zero_budget_sessions_time_out_not_hang() {
    let serving = ServingConfig::default().with_deadline(Duration::ZERO);
    let mgr = manager(2_000, 2, CrackConfig::default(), serving);
    let mut s = mgr.begin().unwrap();
    assert_eq!(
        s.read(QueryRange::new(0, 10)).unwrap_err(),
        scrack_txn::TxnError::TimedOut
    );
    assert!(matches!(s.commit(), TxnOutcome::TimedOut));
    assert_eq!(mgr.resilience_stats().timed_out, 1);
    assert_eq!(mgr.lock_residue(), 0);
}

#[test]
fn lock_wait_past_the_deadline_is_timed_out_not_wounded() {
    let serving = ServingConfig::default().with_deadline(Duration::from_millis(40));
    let mgr = manager(2_000, 2, CrackConfig::default(), serving);
    let mut holder = mgr.begin().unwrap();
    holder.insert(5).unwrap();
    let mut late = mgr.begin().unwrap();
    assert_eq!(
        late.insert(5).unwrap_err(),
        scrack_txn::TxnError::TimedOut,
        "budget expired while queued: that is a deadline miss"
    );
    assert!(matches!(late.commit(), TxnOutcome::TimedOut));
    // The holder spent the whole budget too (late's 40ms wait ran on the
    // shared wall clock), so its own commit is also a deadline miss —
    // deadlines are session-wide, not per-operation.
    assert!(matches!(holder.commit(), TxnOutcome::TimedOut));
    assert_eq!(mgr.lock_residue(), 0);
}

#[test]
fn abort_on_drop_releases_locks_and_publishes_nothing() {
    let mgr = manager(2_000, 2, CrackConfig::default(), ServingConfig::default());
    {
        let mut s = mgr.begin().unwrap();
        s.insert(900).unwrap();
        s.delete(901).unwrap();
        // Dropped without commit/abort.
    }
    assert_eq!(mgr.lock_residue(), 0);
    assert_eq!(mgr.resilience_stats().aborted, 1);
    let mut check = mgr.begin().unwrap();
    assert_eq!(check.read(QueryRange::new(900, 902)).unwrap().0, 2);
    check.commit();
}

#[test]
fn explicit_abort_is_not_retryable_and_clean() {
    let mgr = manager(2_000, 2, CrackConfig::default(), ServingConfig::default());
    let mut s = mgr.begin().unwrap();
    s.insert(901).unwrap();
    assert!(matches!(
        s.abort(),
        TxnOutcome::Aborted { retryable: false }
    ));
    assert_eq!(mgr.lock_residue(), 0);
    assert_eq!(mgr.current_epoch(), 0, "nothing published");
}

#[test]
fn shed_at_capacity_then_admit_after_drain() {
    let serving = ServingConfig::bounded(1, AdmissionPolicy::Shed);
    let mgr = manager(2_000, 2, CrackConfig::default(), serving);
    let a = mgr.begin().unwrap();
    assert!(matches!(mgr.begin(), Err(TxnOutcome::Shed)));
    a.commit();
    assert!(mgr.begin().is_ok());
    assert_eq!(mgr.resilience_stats().shed, 1);
}

#[test]
fn quarantine_rebuild_preserves_pinned_snapshots() {
    let config = CrackConfig::default().with_fault(FaultPlan::panic_in_kernel(1).on_target(0));
    let mgr = manager(4_000, 2, config, ServingConfig::default());
    let probe = QueryRange::new(0, 1_500); // entirely inside shard 0

    // Commit an update first so the pinned snapshot has log content.
    let mut w = mgr.begin().unwrap();
    w.insert(10).unwrap();
    assert!(matches!(w.commit(), TxnOutcome::Committed { .. }));

    let mut pinned = mgr.begin().unwrap();

    // A victim session detonates the shard-0 kernel fault.
    let mut victim = mgr.begin().unwrap();
    victim.read(probe).unwrap_err();
    victim.commit();
    assert_eq!(mgr.quarantined_shards(), vec![0]);

    // The pinned reader's answer is served by scan while quarantined and
    // must equal the snapshot it pinned: base 1500 elements + 1 insert.
    let (count, _) = pinned.read(probe).unwrap();
    assert_eq!(count, 1_501);
    // Drive the quarantine ladder to rebuild, then re-read: identical.
    for _ in 0..8 {
        pinned.read(probe).unwrap();
    }
    assert_eq!(pinned.read(probe).unwrap().0, 1_501);
    pinned.commit();
    assert!(mgr.quarantined_shards().is_empty(), "rebuild completed");
    assert!(mgr.resilience_stats().rebuilds >= 1);
    mgr.check_integrity().unwrap();
}

#[test]
fn wound_timeout_breaks_session_deadlock() {
    let mgr = manager(4_000, 2, CrackConfig::default(), ServingConfig::default());
    let (k1, k2) = (10u64, 20u64);

    let mut a = mgr.begin().unwrap();
    a.insert(k1).unwrap();

    let mgr2 = Arc::clone(&mgr);
    let t = thread::spawn(move || {
        let mut b = mgr2.begin().unwrap();
        b.insert(k2).unwrap();
        thread::sleep(Duration::from_millis(30)); // let a block on k2
        let second = b.insert(k1); // cycle: b waits on a's k1
        (second.is_ok(), b.commit())
    });
    thread::sleep(Duration::from_millis(10));
    let a_second = a.insert(k2); // a waits on b's k2 -> deadlock
    let a_outcome = a.commit();
    let (b_got_lock, b_outcome) = t.join().unwrap();

    let committed = [a_outcome, b_outcome]
        .iter()
        .filter(|o| matches!(o, TxnOutcome::Committed { .. }))
        .count();
    assert!(committed <= 1, "a deadlocked pair can never both commit");
    assert!(
        matches!(a_outcome, TxnOutcome::Aborted { retryable: true })
            || matches!(b_outcome, TxnOutcome::Aborted { retryable: true }),
        "the wound must abort at least one member as retryable: {a_outcome:?} {b_outcome:?}"
    );
    let _ = (a_second, b_got_lock);
    assert_eq!(mgr.lock_residue(), 0);
    mgr.check_integrity().unwrap();
}

#[test]
fn watermark_merge_folds_committed_epochs_into_the_column() {
    let mgr = manager(1_000, 2, CrackConfig::default(), ServingConfig::default());
    for i in 0..5 {
        let mut s = mgr.begin().unwrap();
        s.insert(100 + i).unwrap();
        assert!(matches!(s.commit(), TxnOutcome::Committed { .. }));
    }
    // No session is live: the watermark reached the current epoch and
    // every op rippled into the physical columns.
    assert_eq!(mgr.check_integrity().unwrap(), 1_005);
    assert_eq!(mgr.current_epoch(), 5);
}

#[test]
fn watermark_preserves_pinned_snapshots_under_every_index_policy() {
    // The PR-9 merge-watermark contract, re-pinned per index
    // representation (the radix trie regression this exists for: the
    // watermark ripples committed epochs into the physical columns, and
    // a representation bug in crack-position bookkeeping would surface
    // as a pinned reader seeing the merge happen).
    for policy in scrack_core::IndexPolicy::ALL {
        let config = CrackConfig::default().with_index(policy);
        let mgr = manager(2_000, 2, config, ServingConfig::default());
        let probe = QueryRange::new(500, 600);
        let mut pinned = mgr.begin().unwrap();
        let before = pinned.read(probe).unwrap();
        // Commits land while the reader holds its snapshot, so the
        // watermark trails it and merges are deferred.
        for i in 0..4 {
            let mut w = mgr.begin().unwrap();
            w.insert(550 + i).unwrap();
            assert!(
                matches!(w.commit(), TxnOutcome::Committed { .. }),
                "{policy}"
            );
            assert_eq!(
                pinned.read(probe).unwrap(),
                before,
                "{policy}: pinned snapshot drifted at commit {i}"
            );
        }
        pinned.commit();
        // No live session: the watermark catches up and every committed
        // op folds into the columns.
        assert_eq!(mgr.check_integrity().unwrap(), 2_004, "{policy}");
        let mut fresh = mgr.begin().unwrap();
        assert_eq!(
            fresh.read(probe).unwrap().0,
            before.0 + 4,
            "{policy}: merged state wrong"
        );
        fresh.commit();
        assert_eq!(mgr.lock_residue(), 0, "{policy}");
    }
}

#[test]
fn replay_is_bit_identical_under_a_fixed_seed() {
    let run = || {
        let mgr = manager(6_000, 3, CrackConfig::default(), ServingConfig::default());
        let mut answers = Vec::new();
        for round in 0..10u64 {
            let mut w = mgr.begin().unwrap();
            w.insert(round * 37 % 6_000).unwrap();
            w.delete(round * 53 % 6_000).unwrap();
            let mut r = mgr.begin().unwrap();
            answers.push(r.read(QueryRange::new(round * 100, round * 100 + 500)).unwrap());
            w.commit();
            answers.push(r.read(QueryRange::new(0, 6_000)).unwrap());
            r.commit();
        }
        answers
    };
    assert_eq!(run(), run());
}
