//! The central correctness invariant: every engine returns exactly the
//! multiset of qualifying keys the scan oracle reports, on every query —
//! regardless of strategy, workload shape, or how far adaptation has
//! progressed.

use scrack_core::{build_engine, CrackConfig, EngineKind, Oracle};
use scrack_types::{QueryRange, Tuple};

/// A deterministic pseudo-random permutation of 0..n.
fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    // Fisher-Yates with a splitmix64 stream; no rand dependency needed.
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// Query sequences stressing different adaptation paths.
fn query_patterns(n: u64) -> Vec<(&'static str, Vec<QueryRange>)> {
    let s = 10u64.min(n / 10).max(1);
    let q = 64u64;
    let j = (n.saturating_sub(s)) / q.max(1);
    let mut patterns = Vec::new();

    let mut seq = Vec::new();
    let mut zoom_in = Vec::new();
    let mut zoom_alt = Vec::new();
    let mut random = Vec::new();
    let mut state = 0xC0FFEEu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..q {
        let a = i * j;
        seq.push(QueryRange::new(a, a + s));

        let w = n.saturating_sub(2 * i * j).max(s);
        let lo = i * j.min(n / 2);
        zoom_in.push(QueryRange::new(lo, lo + w));

        let x_pos = i % 2 == 0;
        let a = if x_pos {
            (n / 2).saturating_add(i * j / 2)
        } else {
            (n / 2).saturating_sub(i * j / 2)
        };
        let a = a.min(n.saturating_sub(s));
        zoom_alt.push(QueryRange::new(a, a + s));

        let a = next() % n.saturating_sub(s).max(1);
        random.push(QueryRange::new(a, a + s));
    }
    // Edge cases hammered on every engine.
    let edge = vec![
        QueryRange::new(0, n),       // whole domain
        QueryRange::new(0, 1),       // first key
        QueryRange::new(n - 1, n),   // last key
        QueryRange::new(n, n + 100), // beyond the domain
        QueryRange::new(5, 5),       // empty
        QueryRange::new(n / 2, n / 2 + 1),
        QueryRange::new(0, n / 2), // repeated boundary below
        QueryRange::new(0, n / 2), // exact repeat (boundary reuse)
        QueryRange::new(n / 2, n), // complement
    ];
    patterns.push(("sequential", seq));
    patterns.push(("zoom_in", zoom_in));
    patterns.push(("zoom_alt", zoom_alt));
    patterns.push(("random", random));
    patterns.push(("edges", edge));
    patterns
}

fn check_kind_on_data(kind: EngineKind, data: Vec<u64>, label: &str) {
    let n = data.len() as u64;
    let oracle = Oracle::new(&data);
    // Small caches so stochastic thresholds actually engage at test scale.
    let config = CrackConfig::default()
        .with_crack_size(64)
        .with_progressive_threshold(256);
    for (pattern, queries) in query_patterns(n.max(2)) {
        let mut engine = build_engine(kind, data.clone(), config, 7);
        for (i, q) in queries.iter().enumerate() {
            let out = engine.select(*q);
            assert_eq!(
                out.len(),
                oracle.count(*q),
                "{} [{label}/{pattern}] query {i} {q}: wrong count",
                engine.name(),
            );
            assert_eq!(
                out.keys_sorted(engine.data()),
                oracle.keys(*q),
                "{} [{label}/{pattern}] query {i} {q}: wrong keys",
                engine.name(),
            );
        }
    }
}

#[test]
fn all_engines_match_oracle_on_unique_permutation() {
    let data = permutation(2000, 0xDEADBEEF);
    for kind in EngineKind::extended_selection() {
        check_kind_on_data(kind, data.clone(), "unique");
    }
}

#[test]
fn all_engines_match_oracle_with_duplicates() {
    // Heavy duplication: only 50 distinct keys across 2000 tuples.
    let data: Vec<u64> = permutation(2000, 1).into_iter().map(|k| k % 50).collect();
    for kind in EngineKind::extended_selection() {
        check_kind_on_data(kind, data.clone(), "dups");
    }
}

#[test]
fn all_engines_match_oracle_on_tiny_columns() {
    for n in [1u64, 2, 3, 5] {
        let data: Vec<u64> = (0..n).rev().collect();
        for kind in EngineKind::extended_selection() {
            check_kind_on_data(kind, data.clone(), "tiny");
        }
    }
}

#[test]
fn tuples_preserve_rowid_pairing_under_cracking() {
    let keys = permutation(1000, 99);
    let data: Vec<Tuple> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(*k, i as u32))
        .collect();
    for kind in EngineKind::extended_selection() {
        let mut engine = build_engine(kind, data.clone(), CrackConfig::default(), 3);
        for i in 0..32u64 {
            let a = (i * 31) % 990;
            let out = engine.select(QueryRange::new(a, a + 10));
            for t in out.resolve(engine.data()) {
                assert_eq!(
                    keys[t.row as usize],
                    t.key,
                    "{}: rowid {} detached from its key",
                    engine.name(),
                    t.row
                );
            }
        }
        // The full buffer must still be a permutation of the input pairs.
        let mut got: Vec<(u64, u32)> = engine.data().iter().map(|t| (t.key, t.row)).collect();
        got.sort_unstable();
        let mut expect: Vec<(u64, u32)> = data.iter().map(|t| (t.key, t.row)).collect();
        expect.sort_unstable();
        assert_eq!(
            got,
            expect,
            "{}: buffer no longer a permutation",
            engine.name()
        );
    }
}

#[test]
fn deterministic_given_same_seed() {
    let data = permutation(3000, 5);
    for kind in [
        EngineKind::Ddr,
        EngineKind::Dd1r,
        EngineKind::Mdd1r,
        EngineKind::Progressive { swap_pct: 10 },
        EngineKind::FlipCoin,
        // The midpoint family ignores the seed entirely — same-seed (and
        // indeed any-seed) replay is bit-identical by construction.
        EngineKind::Ddm,
        EngineKind::Dd1m,
        EngineKind::Mdd1m,
    ] {
        let run = |seed: u64| -> Vec<u64> {
            let mut engine = build_engine(kind, data.clone(), CrackConfig::default(), seed);
            (0..50u64)
                .map(|i| {
                    let a = (i * 59) % 2900;
                    engine
                        .select(QueryRange::new(a, a + 25))
                        .key_checksum(engine.data())
                })
                .collect()
        };
        assert_eq!(run(11), run(11), "{:?} must be seed-deterministic", kind);
    }
}
