//! The quarantine ladder's correctness contract, as properties.
//!
//! When the serving layer quarantines a faulted shard it walks a ladder:
//! discard the cracker index (`quarantine_rebuild`), degrade to scans
//! over the preserved base data, then re-crack adaptively. Two things
//! make that safe, and both are pinned here across every factory engine
//! (including the data-driven midpoint family) and every index policy —
//! AVL, flat and radix:
//!
//! 1. **Answers never change.** A run that quarantines mid-stream
//!    returns bit-identical per-query answers (count + key checksum) to
//!    an unfaulted run of the same engine over the same stream — the
//!    multiset of keys is preserved, so every select stays
//!    oracle-correct no matter when the index was discarded.
//! 2. **The rebuilt column is indistinguishable from a fresh one.** After
//!    `quarantine_rebuild`, replaying any suffix of the stream produces
//!    bit-identical answers *and* bit-identical [`Stats`] to a column
//!    freshly built over the same physical data — quarantine leaves no
//!    hidden residue that could skew adaptive behavior afterwards.

use proptest::prelude::*;
use scrack_core::{
    build_engine, CrackConfig, CrackedColumn, EngineKind, IndexPolicy, Oracle,
};
use scrack_types::QueryRange;

/// A fixed pseudo-random column: keys `0..n` shuffled.
fn column(n: u64, salt: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x853C_49E6_748F_EA9Bu64 ^ salt;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

const N: u64 = 4_000;

fn query_strategy() -> impl Strategy<Value = QueryRange> {
    (0u64..N - 400, 1u64..400).prop_map(|(a, w)| QueryRange::new(a, a + w))
}

/// Runs `queries` through a factory engine, quarantining after
/// `quarantine_at` queries when `Some`; returns (len, checksum) pairs.
fn run_engine(
    kind: EngineKind,
    policy: IndexPolicy,
    queries: &[QueryRange],
    quarantine_at: Option<usize>,
) -> Vec<(usize, u64)> {
    let config = CrackConfig::default()
        .with_crack_size(64)
        .with_progressive_threshold(512)
        .with_index(policy);
    let mut engine = build_engine(kind, column(N, 17), config, 99);
    let mut answers = Vec::with_capacity(queries.len());
    for (qi, q) in queries.iter().enumerate() {
        if quarantine_at == Some(qi) {
            engine.quarantine_rebuild();
        }
        let out = engine.select(*q);
        answers.push((out.len(), out.key_checksum(engine.data())));
    }
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1 over the full factory: quarantining at an arbitrary
    /// point leaves every answer bit-identical to the unfaulted run,
    /// and both agree with the scan oracle.
    #[test]
    fn quarantine_mid_stream_never_changes_answers(
        queries in proptest::collection::vec(query_strategy(), 8..40),
        cut in 0usize..40,
        policy_idx in 0usize..IndexPolicy::ALL.len(),
    ) {
        let policy = IndexPolicy::ALL[policy_idx];
        let oracle = Oracle::new(&column(N, 17));
        let cut = cut % queries.len();
        for kind in EngineKind::extended_selection() {
            let clean = run_engine(kind, policy, &queries, None);
            let faulted = run_engine(kind, policy, &queries, Some(cut));
            prop_assert_eq!(
                &clean, &faulted,
                "{:?}/{}: answers diverged after quarantine at query {}",
                kind, policy, cut
            );
            for (qi, q) in queries.iter().enumerate() {
                prop_assert_eq!(
                    faulted[qi],
                    (oracle.count(*q), oracle.checksum(*q)),
                    "{:?}/{}: query {} ({}) wrong vs oracle",
                    kind, policy, qi, q
                );
            }
        }
    }

    /// Property 2 at the column layer: after a warm-up prefix and a
    /// quarantine, the column replays the suffix with bit-identical
    /// answers and bit-identical `Stats` to a twin built fresh over the
    /// same physical data — for every index policy.
    #[test]
    fn rebuilt_column_is_bit_identical_to_a_fresh_twin(
        prefix in proptest::collection::vec(query_strategy(), 1..30),
        suffix in proptest::collection::vec(query_strategy(), 1..30),
        policy_idx in 0usize..IndexPolicy::ALL.len(),
    ) {
        let policy = IndexPolicy::ALL[policy_idx];
        let config = CrackConfig::default()
            .with_crack_size(64)
            .with_index(policy);
        let mut col = CrackedColumn::new(column(N, 23), config);
        for q in &prefix {
            col.select_original(*q);
        }
        col.quarantine_rebuild();
        col.stats_mut().reset();
        let mut twin = CrackedColumn::new(col.data().to_vec(), config);
        for q in &suffix {
            let a = col.select_original(*q);
            let b = twin.select_original(*q);
            let ka = a.key_checksum(col.data());
            let kb = b.key_checksum(twin.data());
            prop_assert_eq!(
                (a.len(), ka), (b.len(), kb),
                "{}: suffix answers diverged", policy
            );
        }
        prop_assert_eq!(col.stats(), twin.stats(), "{}: Stats diverged", policy);
        prop_assert_eq!(col.data(), twin.data(), "{}: physical order diverged", policy);
        col.check_integrity().unwrap();
    }
}
