//! Determinism: the whole point of seeded stochastic cracking is that a
//! run is reproducible. The same `EngineKind` + seed over the same data
//! and query sequence must produce identical select results, identical
//! physical column orders, and identical crack-piece counts across runs.
//!
//! This guards the randomized engines' seeding paths (DDR and MDD1R draw
//! their pivots from the seeded RNG) as much as the deterministic ones.

use scrack_core::{build_engine, CrackConfig, EngineKind, KernelPolicy};
use scrack_types::QueryRange;

const N: u64 = 50_000;
const QUERIES: usize = 200;
const SEED: u64 = 0x2012DE7E;

/// A deterministic pseudo-random query sequence (xorshift, no rand dep).
fn query_sequence(n: u64, count: usize) -> Vec<QueryRange> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let width = 1 + state % (n / 10);
            let low = state.wrapping_mul(0x2545F4914F6CDD1D) % (n - width);
            QueryRange::new(low, low + width)
        })
        .collect()
}

/// A fixed random-order column (Fisher–Yates over 0..n, local xorshift).
fn column(n: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x853C49E6748FEA9Bu64;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

/// One full run: per-query (result length, key checksum), then the final
/// crack count and the final physical order's checksum.
fn run(kind: EngineKind, seed: u64) -> (Vec<(usize, u64)>, u64, u64) {
    run_with(kind, seed, CrackConfig::default())
}

/// [`run`] under an explicit config (kernel-policy sweeps).
fn run_with(kind: EngineKind, seed: u64, config: CrackConfig) -> (Vec<(usize, u64)>, u64, u64) {
    let data = column(N);
    let mut engine = build_engine(kind, data, config, seed);
    let mut per_query = Vec::with_capacity(QUERIES);
    for q in query_sequence(N, QUERIES) {
        let out = engine.select(q);
        per_query.push((out.len(), out.key_checksum(engine.data())));
    }
    let order_checksum = engine
        .data()
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, k)| {
            acc.wrapping_mul(31).wrapping_add(k ^ i as u64)
        });
    (per_query, engine.stats().cracks, order_checksum)
}

fn assert_deterministic(kind: EngineKind) {
    let (results_a, cracks_a, order_a) = run(kind, SEED);
    let (results_b, cracks_b, order_b) = run(kind, SEED);
    assert_eq!(
        results_a, results_b,
        "{kind:?}: same seed must give identical per-query results"
    );
    assert_eq!(
        cracks_a, cracks_b,
        "{kind:?}: same seed must give identical crack counts"
    );
    assert_eq!(
        order_a, order_b,
        "{kind:?}: same seed must give an identical physical order"
    );
}

#[test]
fn crack_is_deterministic() {
    assert_deterministic(EngineKind::Crack);
}

#[test]
fn ddc_is_deterministic() {
    assert_deterministic(EngineKind::Ddc);
}

#[test]
fn ddr_is_deterministic() {
    assert_deterministic(EngineKind::Ddr);
}

#[test]
fn dd1r_is_deterministic() {
    assert_deterministic(EngineKind::Dd1r);
}

#[test]
fn mdd1r_is_deterministic() {
    assert_deterministic(EngineKind::Mdd1r);
}

#[test]
fn progressive_is_deterministic() {
    assert_deterministic(EngineKind::Progressive { swap_pct: 10 });
}

/// The engines under test for the kernel-policy sweeps: every strategy
/// family that reaches the reorganization kernels.
fn kernel_sensitive_kinds() -> [EngineKind; 6] {
    [
        EngineKind::Crack,
        EngineKind::Ddc,
        EngineKind::Ddr,
        EngineKind::Dd1r,
        EngineKind::Mdd1r,
        EngineKind::Progressive { swap_pct: 10 },
    ]
}

/// Same `EngineKind` + seed + `KernelPolicy` must reproduce identical
/// per-query results and crack counts across runs — the branchless
/// kernels may not introduce any nondeterminism.
#[test]
fn branchless_policy_is_deterministic() {
    let cfg = CrackConfig::default().with_kernel(KernelPolicy::Branchless);
    for kind in kernel_sensitive_kinds() {
        let (results_a, cracks_a, order_a) = run_with(kind, SEED, cfg);
        let (results_b, cracks_b, order_b) = run_with(kind, SEED, cfg);
        assert_eq!(
            results_a, results_b,
            "{kind:?}: branchless run must give identical per-query results"
        );
        assert_eq!(cracks_a, cracks_b, "{kind:?}: branchless crack counts");
        assert_eq!(order_a, order_b, "{kind:?}: branchless physical order");
    }
}

/// Stronger still: the kernels are bit-identical, so the *same seed under
/// different kernel policies* must agree on every result, crack count and
/// the final physical order. This pins the equivalence contract at full
/// engine scale.
#[test]
fn kernel_policy_does_not_change_any_result() {
    for kind in kernel_sensitive_kinds() {
        let branchy = run_with(
            kind,
            SEED,
            CrackConfig::default().with_kernel(KernelPolicy::Branchy),
        );
        let branchless = run_with(
            kind,
            SEED,
            CrackConfig::default().with_kernel(KernelPolicy::Branchless),
        );
        let auto = run_with(
            kind,
            SEED,
            CrackConfig::default().with_kernel(KernelPolicy::Auto),
        );
        assert_eq!(
            branchy, branchless,
            "{kind:?}: branchy and branchless runs must be bit-identical"
        );
        assert_eq!(branchy, auto, "{kind:?}: auto must match the fixed policies");
    }
}

/// Different seeds must actually diverge for the randomized engines —
/// otherwise the determinism assertions above would pass vacuously.
#[test]
fn randomized_engines_depend_on_seed() {
    for kind in [EngineKind::Ddr, EngineKind::Mdd1r] {
        let (_, _, order_a) = run(kind, 1);
        let (_, _, order_b) = run(kind, 2);
        assert_ne!(
            order_a, order_b,
            "{kind:?}: different seeds should produce different physical orders"
        );
    }
}
