//! Determinism: the whole point of seeded stochastic cracking is that a
//! run is reproducible. The same `EngineKind` + seed over the same data
//! and query sequence must produce identical select results, identical
//! physical column orders, and identical crack-piece counts across runs.
//!
//! This guards the randomized engines' seeding paths (DDR and MDD1R draw
//! their pivots from the seeded RNG) as much as the deterministic ones.

use scrack_core::{build_engine, CrackConfig, EngineKind};
use scrack_types::QueryRange;

const N: u64 = 50_000;
const QUERIES: usize = 200;
const SEED: u64 = 0x2012DE7E;

/// A deterministic pseudo-random query sequence (xorshift, no rand dep).
fn query_sequence(n: u64, count: usize) -> Vec<QueryRange> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let width = 1 + state % (n / 10);
            let low = state.wrapping_mul(0x2545F4914F6CDD1D) % (n - width);
            QueryRange::new(low, low + width)
        })
        .collect()
}

/// A fixed random-order column (Fisher–Yates over 0..n, local xorshift).
fn column(n: u64) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).collect();
    let mut state = 0x853C49E6748FEA9Bu64;
    for i in (1..data.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.swap(i, (state % (i as u64 + 1)) as usize);
    }
    data
}

/// One full run: per-query (result length, key checksum), then the final
/// crack count and the final physical order's checksum.
fn run(kind: EngineKind, seed: u64) -> (Vec<(usize, u64)>, u64, u64) {
    let data = column(N);
    let mut engine = build_engine(kind, data, CrackConfig::default(), seed);
    let mut per_query = Vec::with_capacity(QUERIES);
    for q in query_sequence(N, QUERIES) {
        let out = engine.select(q);
        per_query.push((out.len(), out.key_checksum(engine.data())));
    }
    let order_checksum = engine
        .data()
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, k)| {
            acc.wrapping_mul(31).wrapping_add(k ^ i as u64)
        });
    (per_query, engine.stats().cracks, order_checksum)
}

fn assert_deterministic(kind: EngineKind) {
    let (results_a, cracks_a, order_a) = run(kind, SEED);
    let (results_b, cracks_b, order_b) = run(kind, SEED);
    assert_eq!(
        results_a, results_b,
        "{kind:?}: same seed must give identical per-query results"
    );
    assert_eq!(
        cracks_a, cracks_b,
        "{kind:?}: same seed must give identical crack counts"
    );
    assert_eq!(
        order_a, order_b,
        "{kind:?}: same seed must give an identical physical order"
    );
}

#[test]
fn crack_is_deterministic() {
    assert_deterministic(EngineKind::Crack);
}

#[test]
fn ddc_is_deterministic() {
    assert_deterministic(EngineKind::Ddc);
}

#[test]
fn ddr_is_deterministic() {
    assert_deterministic(EngineKind::Ddr);
}

#[test]
fn dd1r_is_deterministic() {
    assert_deterministic(EngineKind::Dd1r);
}

#[test]
fn mdd1r_is_deterministic() {
    assert_deterministic(EngineKind::Mdd1r);
}

#[test]
fn progressive_is_deterministic() {
    assert_deterministic(EngineKind::Progressive { swap_pct: 10 });
}

/// Different seeds must actually diverge for the randomized engines —
/// otherwise the determinism assertions above would pass vacuously.
#[test]
fn randomized_engines_depend_on_seed() {
    for kind in [EngineKind::Ddr, EngineKind::Mdd1r] {
        let (_, _, order_a) = run(kind, 1);
        let (_, _, order_b) = run(kind, 2);
        assert_ne!(
            order_a, order_b,
            "{kind:?}: different seeds should produce different physical orders"
        );
    }
}
